#!/usr/bin/env python3
"""Stereo depth extraction (the paper's flagship DEPTH application).

Builds the Figure-1 pipeline -- 7x7 convolve, 3x3 convolve, repeated
SAD with running best-disparity select -- on a synthetic stereo pair
with a known two-plane disparity field, simulates it on the
development-board model, prints the paper's Table-3-style summary,
and renders the recovered depth map as ASCII art.
"""

import numpy as np

from repro.apps.depth import disparity_accuracy
from repro.core import BoardConfig
from repro.engine import Session, build_app


def ascii_depth_map(depth_map: np.ndarray, cols: int = 64) -> str:
    shades = " .:-=+*#%@"
    height, width = depth_map.shape
    step_y = max(1, height // 16)
    step_x = max(1, width // cols)
    lines = []
    peak = max(depth_map.max(), 1.0)
    for y in range(0, height, step_y):
        row = depth_map[y, ::step_x]
        lines.append("".join(
            shades[int(v / peak * (len(shades) - 1))] for v in row))
    return "\n".join(lines)


def main():
    bundle = build_app("depth", height=64, width=320, disparities=8)
    print(f"DEPTH: {len(bundle.image)} stream instructions, "
          f"SDR reuse {bundle.image.sdr_reuse:.0f}x")

    # Catalog-built bundles run through the engine session, so the
    # host-sensitivity sweep below shards across processes and repeat
    # invocations of this script are answered from the result cache.
    with Session() as session:
        result = session.run_bundle(bundle,
                                    board=BoardConfig.hardware())
        print(result.summary())
        print(f"frame rate: {bundle.throughput(result.seconds):.1f} "
              f"frames/s for a 64x320 frame, 8 disparities")
        accuracy = disparity_accuracy(bundle)
        print(f"disparity recovery (interior, textured): "
              f"{accuracy * 100:.1f}%")

        print("\nRecovered depth map (darker = nearer plane):")
        print(ascii_depth_map(bundle.oracle["depth_map"]))

        print("\nHost-interface sensitivity (the paper's Figure 14):")
        for mips in (0.5, 2.0, 8.0):
            board = BoardConfig.hardware(host_mips=mips)
            run = session.run_bundle(bundle, board=board)
            print(f"  host {mips:4.1f} MIPS -> "
                  f"{run.seconds * 1e3:7.2f} ms/frame")


if __name__ == "__main__":
    main()
