#!/usr/bin/env python3
"""Quickstart: write a kernel, build a stream program, simulate it.

This walks the full Imagine tool flow in ~50 lines:

1. define a kernel in the KernelC-like IR (a saxpy),
2. compile it to a software-pipelined VLIW schedule,
3. write the StreamC-like stream program around it,
4. run it through the experiment engine and read the timing
   breakdown.
"""

import numpy as np

from repro import BoardConfig, KernelBuilder
from repro.apps import AppBundle
from repro.engine import Session
from repro.streamc import KernelSpec, StreamProgram


def make_saxpy():
    """y <- a*x + y, one element per cluster per iteration."""
    b = KernelBuilder("saxpy", description="a*x + y")
    x = b.stream_input("x")
    y = b.stream_input("y")
    a = b.param("a")
    b.stream_output("out", b.op("fadd", b.op("fmul", a, x), y))
    return KernelSpec("saxpy", b.build(),
                      lambda ins, p: [p["a"] * ins[0] + ins[1]],
                      unroll=4)


def main():
    saxpy = make_saxpy()
    compiled = saxpy.compiled()
    print(f"saxpy compiled: II={compiled.ii} cycles, "
          f"{compiled.stages} pipeline stages, "
          f"{compiled.microcode_words} microcode words")

    # Stream program: stripmine a 16K-element saxpy through the SRF.
    n, chunk = 16384, 2048
    program = StreamProgram("saxpy_app")
    xs = program.array("x", np.arange(n, dtype=float))
    ys = program.array("y", np.ones(n))
    out = program.alloc_array("out", n)
    for start in range(0, n, chunk):
        x = program.load(xs, start=start, words=chunk)
        y = program.load(ys, start=start, words=chunk)
        result = program.kernel1(saxpy, [x, y], params={"a": 2.0})
        program.store(result, out, start=start)
    image = program.build()
    print(f"stream program: {len(image)} stream instructions, "
          f"SDR reuse {image.sdr_reuse:.1f}x")

    # Simulate on the development-board model.  Hand-built bundles
    # run in-process; catalog apps (repro.engine.RunRequest) can also
    # shard across processes and hit the result cache.
    # backend="auto" uses the vectorized backend whenever the run
    # qualifies -- bit-identical to the event model, roughly 10x
    # faster (docs/engine.md).
    bundle = AppBundle(name="saxpy_app", image=image)
    with Session(backend="auto") as session:
        run = session.run_bundle(bundle,
                                 board=BoardConfig.hardware())
    print(run.summary())
    print("\nWhere the cycles went:")
    for category, fraction in run.metrics.cycle_fractions().items():
        if fraction > 0.005:
            print(f"  {category.value:30s} {fraction * 100:6.2f}%")

    expected = 2.0 * np.arange(n) + 1.0
    assert np.allclose(image.outputs["out"], expected)
    print("\nfunctional check: out == 2*x + y  OK")


if __name__ == "__main__":
    main()
