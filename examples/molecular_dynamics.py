#!/usr/bin/env python3
"""Molecular dynamics on the stream processor (the GROMACS kernel).

The paper's scientific outlier: water-water force computation, bound
by the single unpipelined divide/square-root unit.  This example
builds a small custom stream application around the GROMACS kernel --
a neighbour-list force sweep over a box of water molecules -- showing
how to write a new application against the public API rather than
using the packaged ones, and then verifies momentum conservation.
"""

import numpy as np

from repro.analysis import render_kernel_profile
from repro.core import BoardConfig, ImagineProcessor
from repro.kernels.gromacs import GROMACS
from repro.streamc import StreamProgram


def make_water_box(molecules: int, seed: int = 42) -> np.ndarray:
    """(N, 3 sites, 3 coords) rigid water positions in a 3D box."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 10, size=(molecules, 1, 3))
    geometry = np.array([[0.0, 0.0, 0.0],       # O
                         [0.1, 0.0, 0.0],       # H1
                         [-0.03, 0.09, 0.0]])   # H2
    return centers + geometry


def main():
    molecules = 64
    waters = make_water_box(molecules)
    # Half neighbour list: every unordered pair once.
    pairs = [(i, j) for i in range(molecules)
             for j in range(i + 1, molecules)]
    pair_words = np.concatenate([
        np.concatenate([waters[i].reshape(-1), waters[j].reshape(-1)])
        for i, j in pairs])
    print(f"{molecules} waters -> {len(pairs)} interacting pairs "
          f"({len(pair_words)} words of coordinates)")

    program = StreamProgram("waterbox")
    coords = program.array("pairs", pair_words)
    forces_out = program.alloc_array("forces", len(pairs) * 9)
    chunk_pairs = 512
    for start in range(0, len(pairs), chunk_pairs):
        count = min(chunk_pairs, len(pairs) - start)
        batch = program.load(coords, start=start * 18,
                             words=count * 18, record_words=18)
        forces = program.kernel1(GROMACS, [batch],
                                 params={"cutoff": 1.0})
        program.store(forces, forces_out, start=start * 9)
    image = program.build()

    processor = ImagineProcessor(board=BoardConfig.hardware(),
                                 kernels=image.kernels)
    result = processor.run(image)
    print(result.summary())
    print(render_kernel_profile(result))

    # Newton's third law: summing f_ij over all ordered pairs with
    # both orientations must cancel.
    forces = image.outputs["forces"].reshape(len(pairs), 3, 3)
    total = np.zeros(3)
    for (i, j), f in zip(pairs, forces):
        total += f.sum(axis=0)          # force on molecule i
    swapped_words = np.concatenate([
        np.concatenate([waters[j].reshape(-1), waters[i].reshape(-1)])
        for i, j in pairs])
    reaction = GROMACS.apply_fn([swapped_words], {})[0].reshape(
        len(pairs), 3, 3)
    total += sum(f.sum(axis=0) for f in reaction)
    print(f"net momentum flux |sum F| = {np.linalg.norm(total):.2e} "
          f"(Newton's third law)")


if __name__ == "__main__":
    main()
