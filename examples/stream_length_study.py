#!/usr/bin/env python3
"""Stream-length effects (the paper's Section 3.3 micro-study).

Sweeps kernel stream length against main-loop and prologue size
(Figures 7-8) and memory stream length against access pattern
(Figure 9), printing the curves the paper plots.  Shows the three
regimes: host-interface-bound short streams, overhead-bound medium
streams, and saturated long streams.
"""

from repro.analysis.report import render_table
from repro.workloads.streamlen import (
    MEMORY_PATTERNS,
    host_interface_bandwidth_limit,
    ideal_kernel_gops,
    kernel_length_sweep,
    memory_length_sweep,
)

LENGTHS = [16, 64, 256, 1024, 4096]


def kernel_study():
    print("Kernel GOPS vs stream length (prologue 64 cycles):")
    rows = []
    for main_loop in (8, 32, 128):
        points = kernel_length_sweep(main_loop, 64, LENGTHS,
                                     invocations=16)
        rows.append([f"main loop {main_loop}"]
                    + [p.gops for p in points])
    rows.append(["ideal"] + [ideal_kernel_gops()] * len(LENGTHS))
    print(render_table("", ["config"] + [str(n) for n in LENGTHS],
                       rows))


def memory_study():
    print("\nMemory bandwidth (GB/s) vs stream length, one AG:")
    points = memory_length_sweep(LENGTHS, 1, loads_per_point=8)
    table = {name: [] for name in MEMORY_PATTERNS}
    for point in points:
        table[point.pattern].append(point.gbytes_per_sec)
    rows = [[name] + values for name, values in table.items()]
    rows.append(["HI limit"]
                + [min(host_interface_bandwidth_limit(n), 1.6)
                   for n in LENGTHS])
    print(render_table("", ["pattern"] + [str(n) for n in LENGTHS],
                       rows))


if __name__ == "__main__":
    kernel_study()
    memory_study()
