#!/usr/bin/env python3
"""MPEG-2 encoding on the stream processor (the MPEG application).

Encodes three frames of synthetic video (I + 2 P) through the full
kernel chain -- color conversion, hierarchical motion search, motion
compensation, DCT, quantization, run-length and variable-length
coding, plus the reconstruction loop -- and verifies the recovered
motion vectors and reconstruction quality.
"""

import numpy as np

from repro.apps.mpeg import from_macroblock_order, motion_vector_accuracy
from repro.core import BoardConfig
from repro.engine import Session, build_app
from repro.kernels.pixelmath import unpack16


def main():
    bundle = build_app("mpeg", height=96, width=352, frames=3)
    print(f"MPEG: {len(bundle.image)} stream instructions, "
          f"3 frames of 96x352 video")

    with Session() as session:
        result = session.run_bundle(bundle,
                                    board=BoardConfig.hardware())
    print(result.summary())
    print(f"encode rate: {bundle.throughput(result.seconds):.1f} "
          f"frames/s (real time needs 24-30)")

    accuracy = motion_vector_accuracy(bundle)
    print(f"motion vectors exactly recovered: {accuracy * 100:.1f}% "
          f"of interior P-frame blocks")

    video = bundle.oracle["video"]
    height, width = video.shape[1:]
    for frame in range(3):
        flat = unpack16(bundle.image.outputs[f"luma{frame}"])
        recon = from_macroblock_order(flat, height, width)
        mse = ((recon - video[frame]) ** 2).mean()
        psnr = 10 * np.log10(255 ** 2 / max(mse, 1e-9))
        kind = "I" if frame == 0 else "P"
        print(f"frame {frame} ({kind}): reconstruction PSNR "
              f"{psnr:.1f} dB at qstep {bundle.oracle['qstep']:.0f}")

    coded = bundle.oracle["coded_words"]
    raw = video.size / 2
    print(f"coded stream: {coded:.0f} words for {raw:.0f} raw words "
          f"({raw / coded:.2f}x RLE-level reduction before VLC)")


if __name__ == "__main__":
    main()
