#!/usr/bin/env python3
"""Complex QR decomposition on the stream processor (the QRD app).

Factors the paper's 192x96 complex matrix with blocked Householder
reflections (``house`` + ``update2`` kernels), verifies the factors
against numpy at machine precision, and shows why the blocked
SRF-resident schedule -- not raw memory bandwidth -- is what lets
Imagine sustain multi-GFLOPS on dense linear algebra.
"""

import numpy as np

from repro.apps.qrd import factorization_error, reconstruct_q
from repro.core import BoardConfig
from repro.engine import Session, build_app


def main():
    bundle = build_app("qrd", rows=192, cols=96)
    print(f"QRD: {len(bundle.image)} stream instructions over a "
          f"192x96 complex matrix")

    residual, unitarity = factorization_error(bundle)
    print(f"||QR - A|| / ||A|| = {residual:.2e}")
    print(f"||Q^H Q - I||      = {unitarity:.2e}")

    q = reconstruct_q(bundle)
    r = bundle.oracle["R"]
    print(f"R upper-triangular: "
          f"{np.allclose(np.tril(r, -1), 0)}; "
          f"Q shape {q.shape}")

    with Session() as session:
        result = session.run_bundle(bundle,
                                    board=BoardConfig.hardware())
    print(result.summary())
    print(f"throughput: {bundle.throughput(result.seconds):.1f} QRD/s "
          f"(paper: 326 QRD/s)")

    metrics = result.metrics
    print(f"\nbandwidth hierarchy during QRD: "
          f"LRF {metrics.lrf_gbytes:.1f} GB/s, "
          f"SRF {metrics.srf_gbytes:.2f} GB/s, "
          f"DRAM {metrics.mem_gbytes:.2f} GB/s")
    flops_per_word = (metrics.flops
                      / max(metrics.mem_words, 1))
    print(f"arithmetic per DRAM word: {flops_per_word:.1f} FLOPs "
          f"(conventional machines sustain ~4:1; Section 5.1)")


if __name__ == "__main__":
    main()
