"""Dataset-size scaling: connecting our synthetic sizes to the paper's.

EXPERIMENTS.md reports absolute throughput at reduced dataset sizes;
this bench verifies the scaling is sane: DEPTH time grows linearly in
frame rows and disparity candidates, MPEG time linearly in frames,
and the per-frame efficiency (GOPS) stays flat -- so the reduced-size
numbers extrapolate to the paper's datasets by simple ratios.
"""

from benchlib import HARDWARE, save_report

from repro.analysis.report import render_table
from repro.apps import depth, mpeg


def _run_bundle(bundle, **kwargs):
    """In-process, uncached engine run (the old ``run_app`` surface)."""
    from repro.engine.session import get_default_session

    return get_default_session().run_bundle(bundle, **kwargs)



def regenerate() -> str:
    rows = []
    base = None
    for height in (48, 96, 144):
        bundle = depth.build(height=height)
        result = _run_bundle(bundle, board=HARDWARE)
        if base is None:
            base = result.cycles / (height - 15)   # per output row
        rows.append([
            f"DEPTH {height} rows",
            f"{result.cycles / 1e3:.0f} k",
            f"{result.metrics.gops:.2f} GOPS",
            f"{bundle.throughput(result.seconds):.0f} fps",
            f"{result.cycles / ((height - 15) * base):.2f}",
        ])
    for disparities in (8, 16):
        bundle = depth.build(disparities=disparities)
        result = _run_bundle(bundle, board=HARDWARE)
        rows.append([
            f"DEPTH {disparities} disparities",
            f"{result.cycles / 1e3:.0f} k",
            f"{result.metrics.gops:.2f} GOPS",
            f"{bundle.throughput(result.seconds):.0f} fps",
            "-",
        ])
    for frames in (2, 3, 5):
        bundle = mpeg.build(frames=frames)
        result = _run_bundle(bundle, board=HARDWARE)
        rows.append([
            f"MPEG {frames} frames",
            f"{result.cycles / 1e3:.0f} k",
            f"{result.metrics.gops:.2f} GOPS",
            f"{bundle.throughput(result.seconds):.0f} fps",
            "-",
        ])
    return render_table(
        "Scaling study: throughput efficiency vs dataset size "
        "(GOPS should stay flat; time should scale linearly)",
        ["configuration", "cycles", "efficiency", "rate",
         "cycles/row vs base"],
        rows)


def test_scaling(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("scaling", text)
    assert "DEPTH 96 rows" in text
