"""Ablation: scoreboard depth.

The 32-slot scoreboard is the run-ahead window that lets the host
"buffer up instructions for future use" (Section 5.4) and lets memory
operations execute under kernels.  Shrinking it should surface memory
and host stalls; growing it past the point where the host interface
is the limiter should change nothing.
"""

from dataclasses import replace

from benchlib import HARDWARE, save_report

from repro.analysis.report import render_table
from repro.apps import mpeg
from repro.core import ImagineProcessor, MachineConfig
from repro.core.metrics import CycleCategory

SLOTS = (64, 32, 8, 2)


def run_with_slots(slots: int):
    machine = replace(MachineConfig(), scoreboard_slots=slots)
    bundle = mpeg.build(machine=machine)
    processor = ImagineProcessor(machine=machine, board=HARDWARE,
                                 kernels=bundle.kernels)
    return processor.run(bundle.image)


def regenerate() -> str:
    rows = []
    baseline = None
    for slots in SLOTS:
        result = run_with_slots(slots)
        if baseline is None:
            baseline = result.cycles
        fractions = result.metrics.cycle_fractions()
        rows.append([
            f"{slots} slots",
            f"{result.cycles / 1e3:.0f} k",
            f"{result.cycles / baseline:.2f}x",
            f"{fractions[CycleCategory.MEMORY_STALL] * 100:.1f}%",
            f"{fractions[CycleCategory.HOST_BANDWIDTH_STALL] * 100:.1f}%",
        ])
    return render_table(
        "Ablation: scoreboard depth on MPEG (run-ahead window)",
        ["scoreboard", "cycles", "vs 64", "memory stalls",
         "host stalls"],
        rows)


def test_ablation_scoreboard(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("ablation_scoreboard", text)
    assert "scoreboard" in text
