"""Figure 8: kernel performance vs. stream length, main loop fixed at
32 cycles, prologue varied 8..256 cycles.

Paper shape: for streams up to ~64 elements performance is
host-interface-bound (short-prologue kernels finish sooner and idle
longer, so they fare *worse* there); beyond that the main/non-main
cycle split dominates and shorter prologues win.
"""

from benchlib import save_report

from repro.analysis.report import render_table
from repro.workloads.streamlen import ideal_kernel_gops, kernel_length_sweep

PROLOGUES = (8, 16, 32, 64, 128, 256)
LENGTHS = (8, 32, 128, 512, 2048, 8192)


def regenerate() -> str:
    rows = []
    for prologue in PROLOGUES:
        points = kernel_length_sweep(32, prologue, list(LENGTHS))
        rows.append([f"prologue {prologue} cycles"]
                    + [p.gops for p in points])
    rows.append(["ideal BW"] + [ideal_kernel_gops()] * len(LENGTHS))
    return render_table(
        "Figure 8: Kernel GOPS vs stream length (main loop = 32)",
        ["configuration"] + [f"len {n}" for n in LENGTHS],
        rows)


def test_fig8(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig8_streamlen_prologue", text)
    assert "prologue 256" in text
