"""Table 5: cluster characteristics of applications.

Paper values (avg kernel duration / kernel stream length / memory
stream length): DEPTH 729 cyc, 161.8 w, 234.8 w; MPEG 8244 cyc,
1191 w, 2543 w; QRD 2234 cyc, 2087 w, 1261 w; RTSL 1022 cyc, ~786 w.
Shape: DEPTH has by far the shortest kernels and streams; MPEG and
QRD run long streams.
"""

from benchlib import APP_NAMES, get_result, save_report

from repro.analysis.report import render_table

PAPER = {
    "DEPTH": (729, 161.8, 234.8),
    "MPEG": (8244, 1191, 2543),
    "QRD": (2234, 2087, 1261),
    "RTSL": (1022, 786, 786),
}


def regenerate() -> str:
    rows = []
    for name in APP_NAMES:
        metrics = get_result(name).metrics
        paper = PAPER[name]
        rows.append([
            name,
            f"{metrics.average_kernel_duration:.0f} cycles",
            f"{metrics.average_kernel_stream_length:.1f} words",
            f"{metrics.average_memory_stream_length:.1f} words",
            f"{paper[0]} / {paper[1]} / {paper[2]}",
        ])
    return render_table(
        "Table 5: Cluster characteristics of applications",
        ["App", "Avg kernel duration", "Avg kernel stream",
         "Avg memory stream", "paper (dur/kstream/mstream)"],
        rows)


def test_table5(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("table5_cluster_characteristics", text)
    assert "Avg kernel duration" in text
