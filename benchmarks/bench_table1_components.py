"""Table 1: performance and power of Imagine components.

Paper values (measured on the prototype at 200 MHz, 1.8 V):

    Cluster (OPS)        25.4 / 25.7  GOPS       5.79 W
    Cluster (FLOPS)      7.96 / 8.13  GFLOPS     6.88 W
    Inter-cluster comm.  7.84 / 8.00  ops/cycle  8.53 W
    SRF                  12.7 / 12.8  GB/s       5.79 W
    MEM                  1.58 / 1.60  GB/s       5.42 W
    Host interface       2.03 / 20.0  MIPS       4.72 W
"""

from benchlib import HARDWARE, MACHINE, save_report

from repro.analysis.report import render_table
from repro.workloads.microbench import run_all_microbenchmarks

PAPER = {
    "Cluster (OPS)": (25.4, 25.7, 5.79),
    "Cluster (FLOPS)": (7.96, 8.13, 6.88),
    "Inter-cluster comm.": (7.84, 8.00, 8.53),
    "SRF": (12.7, 12.8, 5.79),
    "MEM": (1.58, 1.60, 5.42),
    "Host interface": (2.03, 20.0, 4.72),
}


def regenerate() -> str:
    rows = []
    for result in run_all_microbenchmarks(MACHINE, HARDWARE):
        paper = PAPER[result.component]
        rows.append([
            result.component,
            f"{result.achieved:.2f} / {result.theoretical:.2f}",
            result.unit,
            result.power_watts,
            f"{paper[0]} / {paper[1]}",
            paper[2],
        ])
    return render_table(
        "Table 1: Performance of Imagine components "
        "(achieved / theoretical)",
        ["Component", "measured", "unit", "Power (W)",
         "paper measured", "paper W"],
        rows)


def test_table1(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("table1_components", text)
    assert "Cluster (OPS)" in text
