"""Table 2: performance of representative kernels.

Paper values (ALU rate / IPC): 2D DCT 6.92 GOPS, blocksearch
9.62 GOPS, RLE 1.21 GOPS, conv7x7 ~10.5 GOPS, blocksad 4.05 GOPS,
house 3.67 GFLOPS, update2 ~4.8 GFLOPS (garbled in the source text),
GROMACS 2.24 GFLOPS; >95% of accesses from LRFs; SRF demand well
below the 12.8 GB/s peak.
"""

from benchlib import save_report

from repro.analysis import measure_kernel
from repro.analysis.report import render_table
from repro.kernels import KERNEL_LIBRARY
from repro.kernels.library import TABLE2_KERNELS

PAPER_RATES = {
    "dct8x8": "6.92 GOPS", "blocksearch": "9.62 GOPS",
    "rle": "1.21 GOPS", "conv7x7": "~10.5 GOPS",
    "blocksad": "4.05 GOPS", "house": "3.67 GFLOPS",
    "update2": "~4.80 GFLOPS", "gromacs": "2.24 GFLOPS",
}


def regenerate() -> str:
    rows = []
    for name in TABLE2_KERNELS:
        row = measure_kernel(KERNEL_LIBRARY[name])
        rows.append([
            name,
            f"{row.rate:.2f} {row.rate_unit}",
            row.lrf_gbytes,
            row.srf_gbytes,
            f"{row.ipc:.1f}",
            row.power_watts,
            PAPER_RATES[name],
        ])
    return render_table(
        "Table 2: Performance of representative kernels",
        ["Kernel", "ALU", "LRF GB/s", "SRF GB/s", "IPC", "Power (W)",
         "paper ALU"],
        rows)


def test_table2(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("table2_kernels", text)
    assert "conv7x7" in text
