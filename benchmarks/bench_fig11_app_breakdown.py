"""Figure 11: execution-time breakdown of applications.

Paper shape: kernel run time (first four categories) covers ~90% of
execution for DEPTH, MPEG and QRD; RTSL loses over 30% to non-kernel
overheads, chiefly memory stalls and host-dependency stalls.

Rendered from each run's ``repro.profile-report/1`` ``figure11``
block (the profiler emits the eight categories verbatim, in
declaration order), so the ``.txt`` output is byte-identical to the
pre-profiler rendering while sharing one source of truth with
``repro profile`` and the perf-history store.
"""

from benchlib import APP_NAMES, get_profile, save_report

from repro.analysis.report import render_breakdown


def regenerate() -> str:
    breakdowns = {}
    average = {}
    for name in APP_NAMES:
        breakdown = get_profile(name, "isim")["figure11"]
        breakdowns[name] = breakdown
        for key, value in breakdown.items():
            average[key] = average.get(key, 0.0) + value / len(
                APP_NAMES)
    breakdowns["Average"] = average
    return render_breakdown(
        "Figure 11: Execution time breakdown of applications (ISIM)",
        breakdowns)


def test_fig11(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig11_app_breakdown", text)
    assert "RTSL" in text
