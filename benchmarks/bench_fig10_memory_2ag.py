"""Figure 10: memory system bandwidth with both address generators.

Paper shape: patterns that left DRAM bandwidth idle with one AG
(stride 2, large indexed ranges) gain from the second AG when bank
conflicts allow; patterns already at the shared on-chip or DRAM limit
do not; indexed small-range loads approach the 1.6 GB/s peak.
"""

from bench_fig9_memory_1ag import regenerate
from benchlib import save_report


def test_fig10(benchmark):
    text = benchmark.pedantic(
        lambda: regenerate(address_generators=2), rounds=1,
        iterations=1)
    save_report("fig10_memory_2ag", text)
    assert "2 AG(s)" in text
