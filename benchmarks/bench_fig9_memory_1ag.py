"""Figure 9: memory system bandwidth from a single address generator.

Paper shape: all patterns are host-interface-limited below ~64 words;
unit stride approaches the DRAM limit (cut ~20% by the hardware
precharge bug); stride 2 engages half the channels; the idx-range-16
pattern is captured by the controller cache and climbs to the on-chip
AG/controller limit; idx 2K thrashes rows; idx 4M misses on every
access.
"""

from benchlib import save_report

from repro.analysis.report import render_table
from repro.workloads.streamlen import (
    MEMORY_PATTERNS,
    host_interface_bandwidth_limit,
    memory_length_sweep,
)

LENGTHS = (16, 64, 256, 1024, 4096, 16384)


def regenerate(address_generators: int = 1) -> str:
    points = memory_length_sweep(list(LENGTHS), address_generators)
    by_pattern = {name: [] for name in MEMORY_PATTERNS}
    for point in points:
        by_pattern[point.pattern].append(point.gbytes_per_sec)
    rows = [[name] + values for name, values in by_pattern.items()]
    rows.append(["HI limit"]
                + [min(host_interface_bandwidth_limit(n), 1.6)
                   for n in LENGTHS])
    rows.append(["ideal BW"] + [1.6] * len(LENGTHS))
    return render_table(
        f"Figure {9 if address_generators == 1 else 10}: Memory "
        f"bandwidth (GB/s), {address_generators} AG(s)",
        ["pattern"] + [f"len {n}" for n in LENGTHS],
        rows)


def test_fig9(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig9_memory_1ag", text)
    assert "idx range 16" in text
