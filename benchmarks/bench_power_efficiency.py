"""Section 5.5: power-efficiency comparison.

Paper values: Imagine 862 pJ/FLOP measured (1.16 GFLOPS/W at 0.18 um
1.8 V), 277 pJ/FLOP normalized to 0.13 um 1.2 V -- 3.2x better than
the TI C67x DSP (889 pJ/FLOP) and 13x better than the Pentium M
(3.6 nJ/FLOP).
"""

from benchlib import save_report

from repro.analysis import power_efficiency_comparison
from repro.analysis.report import render_table


def regenerate() -> str:
    rows = [[row.processor, row.pj_per_flop, row.technology]
            for row in power_efficiency_comparison()]
    normalized = rows[1][1]
    rows.append(["advantage vs C67x",
                 f"{889.0 / normalized:.1f}x", "-"])
    rows.append(["advantage vs Pentium M",
                 f"{3600.0 / normalized:.1f}x", "-"])
    return render_table(
        "Section 5.5: Power efficiency (pJ per FLOP)",
        ["Processor", "pJ/FLOP", "technology"],
        rows, floatfmt="{:.1f}")


def test_power_efficiency(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("power_efficiency", text)
    assert "pJ/FLOP" in text
