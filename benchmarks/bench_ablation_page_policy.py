"""Ablation: DRAM row-buffer (page) policy.

Imagine's memory controller keeps rows open between accesses, which
stream traffic rewards: unit-stride loads hit the open row ~98% of
the time.  A closed-page controller (auto-precharge after every
access) pays activate+CAS on every word -- this ablation quantifies
why the open-page policy is the right one for a stream processor.
"""

from dataclasses import replace

from benchlib import save_report

from repro.analysis.report import render_table
from repro.core.config import DramConfig, MachineConfig
from repro.memsys import MemorySystem, indexed, strided, unit_stride

PATTERNS = {
    "unit stride": lambda: unit_stride(8192),
    "stride 12, record 4": lambda: strided(8192, 12, 4),
    "idx range 2K": lambda: indexed(8192, 2048),
    "idx range 4M": lambda: indexed(8192, 4 * 1024 * 1024),
}


def rate(policy: str, pattern) -> float:
    dram = replace(DramConfig(), page_policy=policy)
    machine = replace(MachineConfig(), dram=dram)
    system = MemorySystem(machine)
    return (system.measure(pattern).rate_words_per_cycle
            * machine.word_bytes * machine.clock_hz / 1e9)


def regenerate() -> str:
    rows = []
    for name, factory in PATTERNS.items():
        open_rate = rate("open", factory())
        closed_rate = rate("closed", factory())
        rows.append([name, open_rate, closed_rate,
                     f"{open_rate / closed_rate:.2f}x"])
    return render_table(
        "Ablation: DRAM page policy (GB/s, no precharge bug)",
        ["pattern", "open-page", "closed-page", "open advantage"],
        rows)


def test_ablation_page_policy(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("ablation_page_policy", text)
    assert "open-page" in text
