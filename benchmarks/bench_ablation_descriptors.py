"""Ablation: stream descriptor registers (Section 5.3).

The paper argues SDRs exist to compress host instruction bandwidth:
DEPTH reuses each SDR 717x, and "if only the minimum amount of SDR
reuse was achieved ... the total number of stream instructions would
increase by 1.9x", pushing DEPTH past the host interface.  We rebuild
DEPTH with shrinking SDR files and measure instruction count,
descriptor reuse, and execution time.
"""

from dataclasses import replace

from benchlib import HARDWARE, save_report

from repro.analysis.report import render_table
from repro.apps import depth
from repro.core import ImagineProcessor, MachineConfig

SDR_SIZES = (32, 8, 2, 1)


def run_with_sdrs(num_sdrs: int):
    machine = replace(MachineConfig(), num_sdrs=num_sdrs)
    bundle = depth.build(machine=machine)
    processor = ImagineProcessor(machine=machine, board=HARDWARE,
                                 kernels=bundle.kernels)
    return bundle, processor.run(bundle.image)


def regenerate() -> str:
    rows = []
    baseline_instructions = baseline_cycles = None
    for num_sdrs in SDR_SIZES:
        bundle, result = run_with_sdrs(num_sdrs)
        total = len(bundle.image.instructions)
        if baseline_instructions is None:
            baseline_instructions = total
            baseline_cycles = result.cycles
        rows.append([
            f"{num_sdrs} SDRs",
            total,
            f"{total / baseline_instructions:.2f}x",
            f"{bundle.image.sdr_reuse:.1f}x",
            f"{result.metrics.host_mips:.2f} MIPS",
            f"{result.cycles / baseline_cycles:.2f}x",
        ])
    return render_table(
        "Ablation: SDR file size on DEPTH; paper: minimum reuse "
        "would grow the instruction stream 1.9x and exceed host BW",
        ["SDR file", "instructions", "instr vs 32", "SDR reuse",
         "host BW used", "exec slowdown"],
        rows)


def test_ablation_descriptors(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("ablation_descriptors", text)
    assert "SDR file" in text
