"""Shared fixtures and caches for the table/figure benchmarks.

Application bundles and simulation results are cached per session so
the many benchmarks that slice the same four application runs (Tables
3-6, Figures 11-13) only pay for each simulation once.

Each benchmark writes its regenerated table to
``benchmarks/results/<name>.txt`` (and the pytest-benchmark timing
covers the regeneration itself).
"""

from __future__ import annotations

import functools
import pathlib

from repro.apps import depth, mpeg, qrd, rtsl, run_app
from repro.core import BoardConfig, MachineConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MACHINE = MachineConfig()
HARDWARE = BoardConfig.hardware()
ISIM = BoardConfig.isim()

_BUILDERS = {
    "DEPTH": depth.build,
    "MPEG": mpeg.build,
    "QRD": qrd.build,
    "RTSL": rtsl.build,
}
APP_NAMES = tuple(_BUILDERS)


@functools.lru_cache(maxsize=None)
def get_bundle(name: str):
    """Build an application at its default (paper-scaled) size."""
    return _BUILDERS[name]()


@functools.lru_cache(maxsize=None)
def get_result(name: str, mode: str = "hardware"):
    """Simulate an application on the chosen platform model."""
    board = HARDWARE if mode == "hardware" else ISIM
    return run_app(get_bundle(name), board=board)


def save_report(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
