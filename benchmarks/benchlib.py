"""Shared fixtures and caches for the table/figure benchmarks.

Application bundles and simulation results are cached per session so
the many benchmarks that slice the same four application runs (Tables
3-6, Figures 11-13) only pay for each simulation once.  All runs flow
through one :mod:`repro.engine` session, so repeat benchmark
invocations are also served from the content-addressed on-disk cache;
set ``REPRO_JOBS=N`` to shard cold runs across worker processes and
``REPRO_NO_CACHE=1`` to force fresh simulations.

Each benchmark writes its regenerated table to
``benchmarks/results/<name>.txt`` (and the pytest-benchmark timing
covers the regeneration itself).
"""

from __future__ import annotations

import atexit
import functools
import os
import pathlib

from repro.core import BoardConfig, MachineConfig
from repro.engine import Session, SessionConfig, build_app
from repro.engine.catalog import APP_NAMES as _CATALOG_NAMES

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MACHINE = MachineConfig()
HARDWARE = BoardConfig.hardware()
ISIM = BoardConfig.isim()

APP_NAMES = tuple(name.upper() for name in _CATALOG_NAMES)


#: The append-only perf-history store every benchmark run feeds
#: (``repro.perf-history/1``; disable with REPRO_NO_HISTORY=1).
HISTORY_PATH = RESULTS_DIR / "history.jsonl"


@functools.lru_cache(maxsize=None)
def get_session() -> Session:
    """The one engine session every benchmark shares."""
    session = Session(config=SessionConfig(
        backend=os.environ.get("REPRO_BACKEND", "event"),
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache=not os.environ.get("REPRO_NO_CACHE"),
        history=(None if os.environ.get("REPRO_NO_HISTORY")
                 else HISTORY_PATH)))
    atexit.register(session.close)
    return session


@functools.lru_cache(maxsize=None)
def get_bundle(name: str):
    """Build an application at its default (paper-scaled) size."""
    return build_app(name.lower())


@functools.lru_cache(maxsize=None)
def get_result(name: str, mode: str = "hardware"):
    """Simulate an application on the chosen platform model."""
    board = HARDWARE if mode == "hardware" else ISIM
    return get_session().run_bundle(get_bundle(name), board=board,
                                    machine=MACHINE)


@functools.lru_cache(maxsize=None)
def get_profile(name: str, mode: str = "hardware") -> dict:
    """Cycle-accounting profile (``repro.profile-report/1``) of one
    cached application run; the single source the figure benchmarks
    render their breakdowns from."""
    from repro.obs.profile import build_profile

    return build_profile(get_result(name, mode))


def save_report(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
