"""Figure 12: average sustained performance of Imagine components on
applications, as a percentage of each component's peak.

Paper shape: different applications stress different components --
QRD leads in arithmetic utilization, DEPTH in host-interface
bandwidth, all applications sit far below peak memory bandwidth while
LRF utilization tracks arithmetic.
"""

from benchlib import APP_NAMES, HARDWARE, MACHINE, get_result, save_report

from repro.analysis.report import render_table


def regenerate() -> str:
    rows = []
    for name in APP_NAMES:
        metrics = get_result(name).metrics
        peak_alu = (MACHINE.peak_gflops if name == "QRD"
                    else MACHINE.peak_gops)
        alu = (metrics.gflops if name == "QRD" else metrics.gops)
        rows.append([
            name,
            f"{alu / peak_alu * 100:.1f}%",
            f"{metrics.host_mips / HARDWARE.host_peak_mips * 100:.2f}%",
            f"{metrics.mem_gbytes / MACHINE.mem_peak_gbytes * 100:.1f}%",
            f"{metrics.srf_gbytes / MACHINE.srf_peak_gbytes * 100:.1f}%",
            f"{metrics.lrf_gbytes / MACHINE.lrf_peak_gbytes * 100:.1f}%",
        ])
    return render_table(
        "Figure 12: Sustained component utilization (% of peak)",
        ["App", "ALU", "HI BW", "MEM BW", "SRF BW", "LRF BW"],
        rows)


def test_fig12(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig12_component_utilization", text)
    assert "MEM BW" in text
