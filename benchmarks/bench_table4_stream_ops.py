"""Table 4: histogram of stream operations per application.

Paper shape: DEPTH issues by far the most stream instructions (short
row streams) and needs the highest host bandwidth (1.6 of the 2 MIPS
available), surviving only because each SDR is reused ~717x; the
other applications stay under half the host-interface budget.
"""

from benchlib import APP_NAMES, get_bundle, get_result, save_report

from repro.analysis.report import render_table


def regenerate() -> str:
    rows = []
    for name in APP_NAMES:
        image = get_bundle(name).image
        result = get_result(name)
        histogram = image.histogram()
        rows.append([
            name,
            histogram["kernel"],
            histogram["memory"],
            histogram["sdr_write"],
            histogram["mar_write"],
            histogram["ucr_write"],
            histogram["move"],
            histogram["misc"],
            histogram["total"],
            f"{image.sdr_reuse:.1f}x",
            f"{result.metrics.host_mips:.2f}",
        ])
    return render_table(
        "Table 4: Histogram of stream operations",
        ["App", "Kernel+Restart", "Memory", "SDR wr", "MAR wr",
         "UCR wr", "Move", "Misc", "Total", "SDR reuse", "BW (MIPS)"],
        rows)


def test_table4(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("table4_stream_ops", text)
    assert "SDR reuse" in text
