"""Ablation: microcode store pressure (Section 2.3).

The paper: "If all the kernel microcode for an application does not
fit in the microcode store, the host ensures that kernels are loaded
dynamically ... a performance degradation of less than 6% occurs"
(loads overlap kernel execution).  We shrink the 2K-word store until
MPEG's seven kernels thrash and measure the degradation.
"""

from dataclasses import replace

from benchlib import HARDWARE, save_report

from repro.analysis.report import render_table
from repro.apps import mpeg
from repro.core import ImagineProcessor, MachineConfig
from repro.core.metrics import CycleCategory

STORE_SIZES = (2048, 512, 256)


def run_with_store(words: int):
    machine = replace(MachineConfig(), microcode_store_words=words)
    bundle = mpeg.build(machine=machine)
    processor = ImagineProcessor(machine=machine, board=HARDWARE,
                                 kernels=bundle.kernels)
    return bundle, processor.run(bundle.image)


def regenerate() -> str:
    rows = []
    baseline = None
    for words in STORE_SIZES:
        bundle, result = run_with_store(words)
        loads = sum(1 for i in bundle.image.instructions
                    if i.op.value == "microcode_load")
        if baseline is None:
            baseline = result.cycles
        stall = result.metrics.cycle_fractions()[
            CycleCategory.MICROCODE_LOAD_STALL]
        rows.append([
            f"{words} words",
            loads,
            f"{stall * 100:.2f}%",
            f"{(result.cycles / baseline - 1) * 100:+.2f}%",
        ])
    return render_table(
        "Ablation: microcode store size on MPEG; paper: dynamic "
        "kernel loading costs < 6%",
        ["store size", "microcode loads", "load-stall share",
         "slowdown vs 2K"],
        rows)


def test_ablation_microcode(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("ablation_microcode", text)
    assert "microcode loads" in text
