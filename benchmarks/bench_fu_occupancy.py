"""Appendix: functional-unit occupancy of kernel main loops.

Quantifies Figure 6's "load imbalance between the types of arithmetic
units" claim: every Table-2 kernel's bottleneck unit class runs at
(or near) 100% while the others idle to the degree the imbalance
column shows.  The paper's worked example -- update2 gated by the two
multipliers -- appears exactly.
"""

from benchlib import save_report

from repro.analysis.occupancy import render_occupancy
from repro.kernels import KERNEL_LIBRARY
from repro.kernels.library import TABLE2_KERNELS


def regenerate() -> str:
    return render_occupancy(
        [KERNEL_LIBRARY[name].compiled() for name in TABLE2_KERNELS])


def test_fu_occupancy(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fu_occupancy", text)
    assert "bottleneck" in text
