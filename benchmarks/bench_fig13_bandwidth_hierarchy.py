"""Figure 13: the bandwidth hierarchy on applications.

Paper shape: sustained LRF bandwidth sits an order of magnitude above
SRF bandwidth, which sits an order of magnitude above DRAM bandwidth;
the LRF:DRAM ratio exceeds 350:1 across the four applications --
the register hierarchy captures the locality, which is why a stream
processor is not memory-bound (Section 5.2).
"""

from benchlib import APP_NAMES, MACHINE, get_result, save_report

from repro.analysis.report import render_table


def regenerate() -> str:
    rows = [["Peak", MACHINE.lrf_peak_gbytes, MACHINE.srf_peak_gbytes,
             MACHINE.mem_peak_gbytes, "-"]]
    ratios = []
    for name in APP_NAMES:
        metrics = get_result(name).metrics
        dram = max(metrics.mem_gbytes, 1e-9)
        ratio = metrics.lrf_gbytes / dram
        ratios.append(ratio)
        rows.append([name, metrics.lrf_gbytes, metrics.srf_gbytes,
                     metrics.mem_gbytes, f"{ratio:.0f}:1"])
    rows.append(["Average", "-", "-", "-",
                 f"{sum(ratios) / len(ratios):.0f}:1"])
    return render_table(
        "Figure 13: Bandwidth hierarchy (GB/s)",
        ["App", "LRF", "SRF", "DRAM", "LRF:DRAM"],
        rows)


def test_fig13(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig13_bandwidth_hierarchy", text)
    assert "LRF:DRAM" in text
