"""Figure 7: kernel performance vs. stream length, prologue fixed at
64 cycles, main-loop length varied 8..256 cycles.

Paper shape: every curve rises toward the 4.8 GOPS ideal as streams
lengthen; shorter main loops are hurt more by short streams (larger
non-main-loop share); below ~64 elements all curves collapse onto the
host-interface limit.
"""

from benchlib import save_report

from repro.analysis.report import render_table
from repro.workloads.streamlen import ideal_kernel_gops, kernel_length_sweep

MAIN_LOOPS = (8, 16, 32, 64, 128, 256)
LENGTHS = (8, 32, 128, 512, 2048, 8192)


def regenerate() -> str:
    rows = []
    for main in MAIN_LOOPS:
        points = kernel_length_sweep(main, 64, list(LENGTHS))
        rows.append([f"main loop {main} cycles"]
                    + [p.gops for p in points])
    rows.append(["ideal BW"] + [ideal_kernel_gops()] * len(LENGTHS))
    return render_table(
        "Figure 7: Kernel GOPS vs stream length (prologue = 64)",
        ["configuration"] + [f"len {n}" for n in LENGTHS],
        rows)


def test_fig7(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig7_streamlen_mainloop", text)
    assert "ideal BW" in text
