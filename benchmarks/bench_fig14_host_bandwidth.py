"""Figure 14: DEPTH execution time vs. host interface bandwidth.

Paper shape: above ~2 MIPS Imagine never idles on the host; below
that, execution time grows as the inverse of host bandwidth, the
growth dominated by host-bandwidth stalls with a secondary rise in
memory stalls (loads can no longer be overlapped).
"""

from benchlib import get_bundle, save_report

from repro.analysis.breakdown import application_breakdown
from repro.analysis.report import render_table
from repro.core import BoardConfig


def _run_bundle(bundle, **kwargs):
    """In-process, uncached engine run (the old ``run_app`` surface)."""
    from repro.engine.session import get_default_session

    return get_default_session().run_bundle(bundle, **kwargs)


MIPS_POINTS = (0.5, 1.0, 2.0, 4.0, 10.0, 50.0)


def regenerate() -> str:
    bundle = get_bundle("DEPTH")
    rows = []
    for mips in MIPS_POINTS:
        board = BoardConfig.hardware(host_mips=mips)
        result = _run_bundle(bundle, board=board)
        breakdown = application_breakdown(result)
        rows.append([
            f"{mips:.1f} MIPS",
            f"{result.seconds * 1e3:.2f} ms",
            f"{breakdown['host bandwidth stalls'] * 100:.1f}%",
            f"{breakdown['memory stalls'] * 100:.1f}%",
            f"{breakdown['stream controller overhead'] * 100:.1f}%",
            f"{(breakdown['operations'] + breakdown['kernel main loop overhead'] + breakdown['kernel non main loop'] + breakdown['cluster stalls']) * 100:.1f}%",
        ])
    return render_table(
        "Figure 14: DEPTH execution time vs host interface bandwidth",
        ["Host BW", "exec time", "host stalls", "memory stalls",
         "controller", "cluster busy"],
        rows)


def test_fig14(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig14_host_bandwidth", text)
    assert "50.0 MIPS" in text
