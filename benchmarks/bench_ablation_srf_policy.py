"""Ablation: SRF buffer-rotation policy (double buffering).

The stream compiler rotates freed SRF regions several pipeline stages
deep before reuse, so the write-after-read dependency on a reused
region points far enough back for loads to run under kernel
execution.  Rotation depth 1 (reuse a buffer the moment it frees) is
the no-double-buffering strawman; the paper's stream scheduler
("allocating and managing the SRF", Section 2.3) exists to avoid it.
"""

from benchlib import HARDWARE, save_report

from repro.analysis.report import render_table
from repro.apps import mpeg
from repro.core import ImagineProcessor
from repro.core.metrics import CycleCategory

import repro.streamc.program as streamc_program

DEPTHS = (1, 2, 4, 8)


def run_with_rotation(depth: int):
    build = mpeg.build

    # The app builders construct their own StreamProgram; parametrize
    # the rotation policy through a thin wrapper class.
    class RotatedProgram(streamc_program.StreamProgram):
        def __init__(self, name, machine=None, **kw):
            kw["srf_rotation_depth"] = depth
            super().__init__(name, machine, **kw)

    original = streamc_program.StreamProgram
    mpeg.StreamProgram = RotatedProgram
    try:
        bundle = build()
    finally:
        mpeg.StreamProgram = original
    processor = ImagineProcessor(board=HARDWARE,
                                 kernels=bundle.kernels)
    return processor.run(bundle.image)


def regenerate() -> str:
    rows = []
    baseline = None
    for depth in DEPTHS:
        result = run_with_rotation(depth)
        if baseline is None:
            baseline = result.cycles
        fractions = result.metrics.cycle_fractions()
        rows.append([
            f"depth {depth}",
            f"{result.cycles / 1e3:.0f} k",
            f"{result.cycles / baseline:.2f}x",
            f"{fractions[CycleCategory.MEMORY_STALL] * 100:.1f}%",
        ])
    return render_table(
        "Ablation: SRF buffer rotation depth on MPEG "
        "(1 = no double buffering)",
        ["rotation", "cycles", "vs depth 1", "memory stalls"],
        rows)


def test_ablation_srf_policy(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("ablation_srf_policy", text)
    assert "rotation" in text
