"""Figure 6: breakdown of kernel run time.

Paper shape: operations + main-loop overhead dominate everywhere;
RLE and GROMACS have the worst main-loop occupancy (scratchpad- and
DSQ-bound); short-stream kernels (conv7x7/blocksad at DEPTH row
lengths) show visible non-main-loop shares; cluster stalls stay under
~5% except at kernel startup.

Rendered from the profiler's kernel-catalog report
(:func:`repro.obs.profile.kernel_catalog_profile`), the same single
source of truth the ``repro profile`` CLI uses; the ``.txt`` output
is byte-identical to the pre-profiler rendering.
"""

from benchlib import save_report

from repro.analysis.report import render_breakdown
from repro.obs.profile import kernel_catalog_profile


def regenerate() -> str:
    breakdowns = dict(kernel_catalog_profile()["kernels"])
    average = {}
    for fractions in breakdowns.values():
        for key, value in fractions.items():
            average[key] = average.get(key, 0.0) + value / len(
                breakdowns)
    breakdowns["Average"] = average
    return render_breakdown(
        "Figure 6: Breakdown of kernel performance", breakdowns)


def test_fig6(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig6_kernel_breakdown", text)
    assert "Average" in text
