"""Figure 6: breakdown of kernel run time.

Paper shape: operations + main-loop overhead dominate everywhere;
RLE and GROMACS have the worst main-loop occupancy (scratchpad- and
DSQ-bound); short-stream kernels (conv7x7/blocksad at DEPTH row
lengths) show visible non-main-loop shares; cluster stalls stay under
~5% except at kernel startup.
"""

from benchlib import save_report

from repro.analysis import kernel_breakdown
from repro.analysis.report import render_breakdown
from repro.kernels import KERNEL_LIBRARY
from repro.kernels.library import TABLE2_KERNELS


def regenerate() -> str:
    breakdowns = {name: kernel_breakdown(KERNEL_LIBRARY[name])
                  for name in TABLE2_KERNELS}
    average = {}
    for fractions in breakdowns.values():
        for key, value in fractions.items():
            average[key] = average.get(key, 0.0) + value / len(
                breakdowns)
    breakdowns["Average"] = average
    return render_breakdown(
        "Figure 6: Breakdown of kernel performance", breakdowns)


def test_fig6(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("fig6_kernel_breakdown", text)
    assert "Average" in text
