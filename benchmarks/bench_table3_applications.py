"""Table 3: application performance.

Paper values:

    DEPTH  4.91 GOPS  IPC 17.6   41 frames/s   7.49 W
    MPEG   7.36 GOPS  IPC ~25   138 frames/s   6.80 W
    QRD    4.81 GFLOPS IPC >40  326 QRD/s      7.42 W
    RTSL   1.30 GOPS  IPC ~10   11.2 frames/s  5.91 W

Reproduction targets the *shape*: MPEG/DEPTH lead in GOPS, QRD leads
in GFLOPS and IPC, RTSL trails everything, and all three video
applications beat real-time.  Our synthetic datasets are smaller than
the paper's, so absolute frame rates are proportionally higher (see
EXPERIMENTS.md for the scaling).
"""

from benchlib import APP_NAMES, get_bundle, get_result, save_report

from repro.analysis.report import render_table

PAPER = {
    "DEPTH": ("4.91 GOPS", "41 frames/s", 7.49),
    "MPEG": ("7.36 GOPS", "138 frames/s", 6.80),
    "QRD": ("4.81 GFLOPS", "326 QRD/s", 7.42),
    "RTSL": ("1.30 GOPS", "11.2 frames/s", 5.91),
}


def regenerate() -> str:
    rows = []
    for name in APP_NAMES:
        bundle = get_bundle(name)
        result = get_result(name)
        metrics = result.metrics
        alu = (f"{metrics.gflops:.2f} GFLOPS" if name == "QRD"
               else f"{metrics.gops:.2f} GOPS")
        rows.append([
            name, alu, f"{metrics.ipc:.1f}",
            f"{bundle.throughput(result.seconds):.1f} "
            f"{bundle.work_name}/s",
            result.power.watts,
            PAPER[name][0], PAPER[name][1], PAPER[name][2],
        ])
    return render_table(
        "Table 3: Application performance",
        ["App", "ALU", "IPC", "Summary", "Power (W)",
         "paper ALU", "paper rate", "paper W"],
        rows)


def test_table3(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("table3_applications", text)
    assert "QRD" in text
