"""Make the benchmarks directory importable as a test root."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
