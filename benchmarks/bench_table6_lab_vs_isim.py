"""Table 6: lab (hardware) vs. ISIM running cycles.

Paper values: DEPTH 2.22M vs 2.11M, MPEG 4.33M vs 4.24M, QRD 10.40M
vs 10.14M, RTSL 4.47M vs 4.24M -- hardware consistently a few percent
slower than the cycle-accurate simulator because of unmodeled issue
latencies, the memory-controller precharge bug, and an optimistic
host model.  The reproduction's two board modes differ in exactly
those three mechanisms.
"""

from benchlib import APP_NAMES, get_result, save_report

from repro.analysis.report import render_table

PAPER_RATIOS = {"DEPTH": 2.22 / 2.11, "MPEG": 4.33 / 4.24,
                "QRD": 10.40 / 10.14, "RTSL": 4.47 / 4.24}


def regenerate() -> str:
    rows = []
    for name in APP_NAMES:
        lab = get_result(name, "hardware").cycles
        isim = get_result(name, "isim").cycles
        rows.append([
            name,
            f"{lab / 1e6:.3f} M",
            f"{isim / 1e6:.3f} M",
            f"{lab / isim:.3f}",
            f"{PAPER_RATIOS[name]:.3f}",
        ])
    return render_table(
        "Table 6: Lab vs ISIM running cycles",
        ["App", "Lab cycles", "ISIM cycles", "ratio", "paper ratio"],
        rows)


def test_table6(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("table6_lab_vs_isim", text)
    assert "ISIM" in text
