"""Ablation: voltage/frequency scaling (Section 4.1's DVFS aside).

Paper: "voltage and frequency scaling allow the same Imagine chip to
execute the MPEG and QRD applications at about half the performance
but only one-fourth the power (< 2 W)."  We rerun both applications
at 100 MHz / 1.32 V and compare against the 200 MHz / 1.8 V nominal
point.
"""

from benchlib import get_bundle, save_report

from repro.analysis.report import render_table
from repro.core import BoardConfig, EnergyModel, ImagineProcessor, MachineConfig
from repro.core.power import EnergyConstants

OPERATING_POINTS = (
    ("nominal", 200e6, 1.8),
    ("half-speed", 100e6, 1.32),
)


def run_at(name: str, clock_hz: float, volts: float):
    machine = MachineConfig().at_frequency(clock_hz)
    constants = EnergyConstants().at_voltage(
        volts, clock_ratio=clock_hz / 200e6)
    bundle = get_bundle(name)
    processor = ImagineProcessor(
        machine=machine, board=BoardConfig.hardware(),
        kernels=bundle.kernels,
        energy=EnergyModel(machine, constants))
    return processor.run(bundle.image)


def regenerate() -> str:
    rows = []
    for app in ("MPEG", "QRD"):
        nominal = run_at(app, *OPERATING_POINTS[0][1:])
        scaled = run_at(app, *OPERATING_POINTS[1][1:])
        rows.append([
            app,
            f"{nominal.metrics.gops:.2f} GOPS @ {nominal.power.watts:.2f} W",
            f"{scaled.metrics.gops:.2f} GOPS @ {scaled.power.watts:.2f} W",
            f"{scaled.metrics.gops / nominal.metrics.gops:.2f}",
            f"{scaled.power.watts / nominal.power.watts:.2f}",
        ])
    return render_table(
        "Ablation: DVFS (200 MHz/1.8 V vs 100 MHz/1.32 V); paper: "
        "~0.5x performance at ~0.25x power (< 2 W)",
        ["App", "nominal", "scaled", "perf ratio", "power ratio"],
        rows)


def test_ablation_dvfs(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_report("ablation_dvfs", text)
    assert "power ratio" in text
