"""GROMACS water-water force kernel.

Table 2's scientific outlier: "force computation between water
molecules (float)".  Each iteration handles one molecule pair's
interaction partials: squared distances and Lennard-Jones/Coulomb
terms are plain multiply/add work, but the three reciprocal
square-roots per pair serialize on the single unpipelined
divide/square-root unit -- the paper calls GROMACS out as
DSQ-limited, and the graph below has exactly that bottleneck
(II = 3 x 16 DSQ issue slots).

Functional model: TIP3P-style site-site forces (O-O Lennard-Jones
plus all-site Coulomb) between molecule pairs; each stream element is
one pair of rigid 3-site molecules (18 coordinate words), and the
output is the force on the first molecule's sites (9 words + pad).
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.streamc.program import KernelSpec

#: TIP3P-ish parameters (reduced units).
_CHARGES = np.array([-0.834, 0.417, 0.417])
_LJ_C6 = 2.0
_LJ_C12 = 1.0
_COULOMB = 138.935


def build_gromacs_graph() -> KernelGraph:
    builder = KernelBuilder(
        "gromacs", elements_per_iteration=1,
        description="force computation between water molecules (float)")
    coords = [builder.stream_input(f"x{i}") for i in range(6)]
    cutoff = builder.param("cutoff")
    # Distance partials for three site pairs -> three rsqrt's.
    inverses = []
    for pair in range(3):
        dx = builder.op("fsub", coords[2 * pair], coords[2 * pair + 1])
        dx2 = builder.op("fmul", dx, dx)
        r2 = builder.op("fadd", dx2, builder.prev(dx2, 1),
                        name=f"r2_{pair}")
        inverses.append(builder.op("frsq", r2, name=f"rinv_{pair}"))
    # LJ + Coulomb force terms: mul/add heavy but DSQ-bound overall.
    force_terms = []
    for pair, rinv in enumerate(inverses):
        r2i = builder.op("fmul", rinv, rinv)
        r6i = builder.op("fmul", r2i, builder.op("fmul", r2i, r2i))
        lj = builder.op("fsub", builder.op("fmul", r6i, r6i), r6i)
        qq = builder.op("fmul", rinv, cutoff)
        term = builder.op("fadd", lj, qq)
        for axis in range(3):
            dx = builder.op("fmul", term, coords[(pair + axis) % 6],
                            name=f"f{pair}_{axis}")
            force_terms.append(dx)
    # Per-axis force accumulation plus virial and shift-force terms.
    axis_sums = [builder.op("fadd", force_terms[i], force_terms[i + 1])
                 for i in range(0, len(force_terms) - 1, 2)]
    virials = [builder.op("fmul", term, cutoff) for term in axis_sums[:6]]
    shifts = [builder.op("fmul", term, cutoff) for term in axis_sums[:4]]
    corrected = [builder.op("fadd", axis_sums[i], virials[i])
                 for i in range(len(virials))]
    corrected += [builder.op("fsub", corrected[i], shifts[i])
                  for i in range(len(shifts))]
    total = builder.reduce("fadd", corrected + axis_sums[6:])
    accumulated = builder.op("fadd", total, builder.prev(total, 1),
                             name="virial_acc")
    builder.stream_output("force", accumulated)
    builder.stream_output("virial", builder.op("fmul", total, cutoff))
    return builder.build()


def _gromacs_apply(inputs: list[np.ndarray],
                   params: dict) -> list[np.ndarray]:
    words = inputs[0]
    if len(words) % 18:
        raise ValueError("gromacs input must be 18-word molecule pairs")
    pairs = words.reshape(-1, 18)
    mol_a = pairs[:, :9].reshape(-1, 3, 3)
    mol_b = pairs[:, 9:].reshape(-1, 3, 3)
    forces = np.zeros_like(mol_a)
    for i in range(3):
        for j in range(3):
            delta = mol_a[:, i, :] - mol_b[:, j, :]
            r2 = np.maximum((delta * delta).sum(axis=1), 1e-12)
            rinv = 1.0 / np.sqrt(r2)
            r2i = rinv * rinv
            coulomb = _COULOMB * _CHARGES[i] * _CHARGES[j] * rinv
            scalar = coulomb * r2i
            if i == 0 and j == 0:
                r6i = r2i ** 3
                scalar += (12 * _LJ_C12 * r6i * r6i
                           - 6 * _LJ_C6 * r6i) * r2i
            forces[:, i, :] += scalar[:, None] * delta
    return [forces.reshape(-1)]


GROMACS = KernelSpec(
    name="gromacs",
    graph=build_gromacs_graph(),
    apply_fn=_gromacs_apply,
    output_record_words=(9, 1),
    description="force computation between water molecules (float)",
)


def reference_forces(pairs_words: np.ndarray) -> np.ndarray:
    """Oracle wrapper used by tests."""
    return _gromacs_apply([pairs_words], {})[0]
