"""SAD kernels: blocksad plus the DEPTH pipeline helpers.

``blocksad`` is the Table-2 kernel (packed 16-bit absolute
differences with accumulation; scratchpad-assisted block bookkeeping
holds it near 4 GOPS).  ``vsum7`` and ``sadmin`` are the stereo-depth
pipeline stages: vertical 7-row sums of absolute differences, then a
horizontal 7-sum with a running best-disparity select -- together they
implement the paper's "SAD kernel is called repeatedly to find the
disparity that minimizes the SAD of a 7x7 area" (Section 2.1).
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.kernels.pixelmath import clamp_u16, pack16, unpack16
from repro.streamc.program import KernelSpec


def build_blocksad_graph() -> KernelGraph:
    builder = KernelBuilder(
        "blocksad", description="compute SAD of two images (16 bit)")
    a = builder.stream_input("a")
    b = builder.stream_input("b")
    diff = builder.op("psub16", a, b)
    magnitude = builder.op("pabs16", diff)
    acc = builder.op("padd16", magnitude,
                     builder.prev(magnitude, 1), name="acc")
    # Block-boundary bookkeeping through the scratchpad; the second
    # indexed read (the block-offset table) makes the kernel
    # scratchpad-bound, matching its measured rate.
    builder.op("spwrite", acc)
    recalled = builder.op("spread", acc, name="block_base")
    merged = builder.op("padd16", acc, recalled)
    offset = builder.op("spread", merged, name="offset_table")
    builder.op("comm", offset, name="exchange")
    builder.stream_output("out", merged)
    return builder.build()


def _blocksad_apply(inputs: list[np.ndarray],
                    params: dict) -> list[np.ndarray]:
    """Packed pixel difference.

    ``shift_words`` rolls the second stream left by whole words
    (2-pixel steps), the disparity-candidate alignment DEPTH uses.
    ``mode="residual"`` emits the signed difference offset-coded by
    +32768 (MPEG's motion-compensated residual) instead of |a - b|.
    """
    shift = int(params.get("shift_words", 0))
    b_words = np.roll(inputs[1], -shift) if shift else inputs[1]
    a = unpack16(inputs[0])
    b = unpack16(b_words)
    if params.get("mode") == "residual":
        return [pack16(clamp_u16(a - b + 32768.0))]
    if params.get("mode") == "add":
        return [pack16(clamp_u16(a + b - 32768.0))]
    return [pack16(clamp_u16(np.abs(a - b)))]


BLOCKSAD = KernelSpec(
    name="blocksad",
    graph=build_blocksad_graph(),
    apply_fn=_blocksad_apply,
    description="compute SAD of two images (16 bit)",
)


def build_vsum_graph(rows: int = 7) -> KernelGraph:
    builder = KernelBuilder(
        f"vsum{rows}",
        description=f"vertical {rows}-row sum of packed differences")
    words = [builder.stream_input(f"row{i}") for i in range(rows)]
    builder.stream_output("out", builder.reduce("padd16", words))
    return builder.build()


def _vsum_apply(inputs: list[np.ndarray],
                params: dict) -> list[np.ndarray]:
    total = np.zeros(2 * len(inputs[0]))
    for words in inputs:
        total += unpack16(words)
    return [pack16(clamp_u16(total))]


VSUM7 = KernelSpec(
    name="vsum7",
    graph=build_vsum_graph(7),
    apply_fn=_vsum_apply,
    description="7-row vertical sum for the stereo SAD window",
)


def build_sadmin_graph(taps: int = 7) -> KernelGraph:
    builder = KernelBuilder(
        "sadmin",
        description="horizontal 7-sum and running best-disparity select")
    vsum = builder.stream_input("vsum")
    best_score = builder.stream_input("best_score")
    best_disp = builder.stream_input("best_disp")
    disparity = builder.param("disparity")
    aligned = [vsum]
    for tap in range(taps - 1):
        source = builder.prev(vsum, 1 + tap % 2)
        aligned.append(builder.op("ishr", vsum, source,
                                  name=f"align{tap}"))
    total = builder.reduce("padd16", aligned)
    better = builder.op("icmp", total, best_score)
    new_score = builder.op("pmin16", total, best_score)
    picked = builder.op("isel", better, disparity)
    new_disp = builder.op("ior", picked, best_disp)
    builder.stream_output("score", new_score)
    builder.stream_output("disp", new_disp)
    return builder.build()


def _sadmin_apply(inputs: list[np.ndarray],
                  params: dict) -> list[np.ndarray]:
    taps = 7
    vsum = unpack16(inputs[0])
    best_score = unpack16(inputs[1])
    best_disp = unpack16(inputs[2])
    disparity = float(params["disparity"])
    half = taps // 2
    padded = np.pad(vsum, (half, half), mode="edge")
    total = np.zeros_like(vsum)
    for tap in range(taps):
        total += padded[tap:tap + len(vsum)]
    total = clamp_u16(total)
    better = total < best_score
    new_score = np.where(better, total, best_score)
    new_disp = np.where(better, disparity, best_disp)
    return [pack16(new_score), pack16(new_disp)]


SADMIN = KernelSpec(
    name="sadmin",
    graph=build_sadmin_graph(),
    apply_fn=_sadmin_apply,
    output_record_words=(1, 1),
    description="horizontal SAD window + best-disparity update",
)


def build_sad7x7_graph(taps: int = 7) -> KernelGraph:
    """The DEPTH SAD kernel proper (Figure 1's third stage).

    One call handles one disparity candidate for one image row:
    packed absolute differences, a rolling 7-row vertical column sum
    kept in the scratchpad across calls, the 7-pixel horizontal sum,
    and the running best-score/disparity select.
    """
    builder = KernelBuilder(
        "sad7x7",
        description="7x7 SAD with rolling window and disparity select")
    left = builder.stream_input("left")
    right = builder.stream_input("right")
    best_score = builder.stream_input("best_score")
    best_disp = builder.stream_input("best_disp")
    disparity = builder.param("disparity")
    diff = builder.op("psub16", left, right)
    magnitude = builder.op("pabs16", diff)
    # Rolling vertical sum through the scratchpad: read the column
    # sum and the row leaving the window, update, write back.
    column = builder.op("spread", magnitude, name="column_sum")
    leaving = builder.op("spread", column, name="leaving_row")
    vsum = builder.op("psub16", builder.op("padd16", column, magnitude),
                      leaving)
    builder.op("spwrite", vsum)
    aligned = [vsum]
    for tap in range(taps - 1):
        source = builder.prev(vsum, 1 + tap % 2)
        aligned.append(builder.op("ishr", vsum, source,
                                  name=f"align{tap}"))
    total = builder.reduce("padd16", aligned)
    better = builder.op("icmp", total, best_score)
    new_score = builder.op("pmin16", total, best_score)
    picked = builder.op("isel", better, disparity)
    new_disp = builder.op("ior", picked, best_disp)
    builder.stream_output("score", new_score)
    builder.stream_output("disp", new_disp)
    return builder.build()


def make_sad7x7() -> KernelSpec:
    """Fresh SAD7x7 spec whose functional model carries the rolling
    vertical window (the scratchpad state) across calls.

    Inputs per call: filtered left row, filtered right row, running
    best score, running best disparity.  Params: ``disparity`` (pixels,
    even) selecting the candidate shift.  The window warms up over the
    first 7 rows per disparity.
    """
    taps = 7
    windows: dict[float, list[np.ndarray]] = {}

    def apply(inputs: list[np.ndarray],
              params: dict) -> list[np.ndarray]:
        disparity = float(params["disparity"])
        shift_words = int(disparity) // 2
        left = unpack16(inputs[0])
        right = unpack16(np.roll(inputs[1], -shift_words)
                         if shift_words else inputs[1])
        best_score = unpack16(inputs[2])
        best_disp = unpack16(inputs[3])
        magnitude = np.abs(left - right)
        window = windows.setdefault(disparity, [])
        window.append(magnitude)
        if len(window) > taps:
            window.pop(0)
        vsum = clamp_u16(np.sum(window, axis=0))
        half = taps // 2
        padded = np.pad(vsum, (half, half), mode="edge")
        total = np.zeros_like(vsum)
        for tap in range(taps):
            total += padded[tap:tap + len(vsum)]
        total = clamp_u16(total)
        better = total < best_score
        new_score = np.where(better, total, best_score)
        new_disp = np.where(better, disparity, best_disp)
        return [pack16(new_score), pack16(new_disp)]

    return KernelSpec(
        name="sad7x7",
        graph=build_sad7x7_graph(taps),
        apply_fn=apply,
        output_record_words=(1, 1),
        description="7x7 SAD with rolling window (DEPTH)",
    )
