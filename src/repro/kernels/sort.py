"""Bitonic 32-sort kernel: the inter-cluster communication stress.

Table 1's inter-cluster micro-benchmark "sorts 32 elements of a
stream ... per loop iteration, which requires a large number of
inter-cluster data exchanges".  With 32 elements spread 4-per-cluster,
every merge stage of the bitonic network exchanges partners across
clusters, so the COMM unit issues every cycle -- the measured 7.84 of
8.00 peak comm ops/cycle.

Functional model: sorts each consecutive 32-element chunk ascending.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.streamc.program import KernelSpec


def build_sort_graph() -> KernelGraph:
    builder = KernelBuilder(
        "sort32", elements_per_iteration=4,
        description="bitonic sort of 32 stream elements per iteration")
    lanes = [builder.stream_input(f"lane{i}") for i in range(4)]
    values = list(lanes)
    # log2(32) = 5 merge stages; each stage: cross-cluster exchange of
    # both lane pairs, then compare-exchange.
    for stage in range(5):
        exchanged = [builder.op("comm", v, name=f"xchg{stage}_{i}")
                     for i, v in enumerate(values)]
        next_values = []
        for i in range(0, 4, 2):
            low = builder.op("imin", exchanged[i], exchanged[i + 1])
            high = builder.op("imax", exchanged[i], exchanged[i + 1])
            next_values += [low, high]
        values = next_values
    for i, v in enumerate(values):
        builder.stream_output(f"out{i}", v)
    return builder.build()


def _sort_apply(inputs: list[np.ndarray],
                params: dict) -> list[np.ndarray]:
    values = inputs[0]
    if len(values) % 32:
        raise ValueError("sort32 input must be whole 32-element chunks")
    return [np.sort(values.reshape(-1, 32), axis=1).reshape(-1)]


SORT32 = KernelSpec(
    name="sort32",
    graph=build_sort_graph(),
    apply_fn=_sort_apply,
    description="bitonic 32-sort (inter-cluster comm stress)",
)
