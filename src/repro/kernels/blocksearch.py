"""Block-matching motion estimation (MPEG blocksearch).

The highest-rate kernel of Table 2: packed 8-bit SAD instructions
(four absolute differences per issue) keep the adders saturated while
a scratchpad-resident candidate table and a running minimum track the
best motion vector.

Functional model: for each 16x16 macroblock of the current strip,
evaluate the SAD at each candidate horizontal offset into the
reference strip and emit the best offset plus the predicted block.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.kernels.pixelmath import pack16, unpack16
from repro.streamc.program import KernelSpec


def build_blocksearch_graph() -> KernelGraph:
    builder = KernelBuilder(
        "blocksearch",
        description="search similar macroblocks for motion estimation")
    current = builder.stream_input("current")
    reference = builder.stream_input("reference")
    # Sixteen candidate alignments of the reference window against
    # the current block (a 2-D search window walked a word at a
    # time); row alignment of the current block costs shifts too.
    shifted = [reference]
    for i in range(15):
        source = builder.prev(reference, 1 + i % 3)
        shifted.append(builder.op("ishr", reference, source,
                                  name=f"cand{i}"))
    rows = [builder.op("ishr", current,
                       builder.prev(current, 1 + i % 2),
                       name=f"row{i}") for i in range(15)]
    sads = [builder.op("psad8", rows[i % 15], cand)
            for i, cand in enumerate(shifted)]
    partial = builder.reduce("padd16", sads)
    running = builder.op("padd16", partial, builder.prev(partial, 1),
                         name="block_acc")
    table = builder.op("spread", running, name="candidate_table")
    best = builder.op("pmin16", running, builder.prev(running, 2),
                      name="best")
    merged = builder.op("pmin16", best, table)
    builder.op("spwrite", merged)
    builder.stream_output("best", merged)
    return builder.build()


def _blocksearch_apply(inputs: list[np.ndarray],
                       params: dict) -> list[np.ndarray]:
    block = int(params.get("block", 16))
    offsets = params.get("offsets", tuple(range(-8, 9, 2)))
    current = unpack16(inputs[0])
    reference = unpack16(inputs[1])
    blocks = current.reshape(-1, block)
    vectors = np.zeros(len(blocks))
    predicted = np.zeros_like(current)
    for i, cur in enumerate(blocks):
        base = i * block
        best_sad = np.inf
        best_offset = 0
        for offset in offsets:
            start = base + offset
            if start < 0 or start + block > len(reference):
                continue
            sad = np.abs(cur - reference[start:start + block]).sum()
            if sad < best_sad:
                best_sad = sad
                best_offset = offset
        vectors[i] = best_offset + 32768  # offset-coded for packing
        start = base + best_offset
        predicted[base:base + block] = reference[start:start + block]
    if len(vectors) % 2:
        vectors = np.append(vectors, 32768.0)
    return [pack16(vectors), pack16(predicted)]


BLOCKSEARCH = KernelSpec(
    name="blocksearch",
    graph=build_blocksearch_graph(),
    apply_fn=_blocksearch_apply,
    output_record_words=(1, 1),
    description="search similar macroblocks for motion estimation",
)
