"""Trailing-matrix update kernel (QRD's update2).

Table 2's matrix-matrix multiply kernel.  The paper uses it as the
canonical load-imbalance example: "the inner loop executes inner
products requiring one multiplication and one addition per element.
Since the Imagine clusters have 3 adders and 2 multipliers,
performance in this case is limited by the multiplication units."
The graph below is multiplier-bound in exactly that way (five
multiplies vs. four adder-class ops per iteration).

Functional model: the rank-1 Householder update
``C <- C - v (beta v^H C)`` applied to a block of complex columns.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.kernels.house import deinterleave, interleave
from repro.streamc.program import KernelSpec


def build_update2_graph() -> KernelGraph:
    builder = KernelBuilder(
        "update2", description="matrix-matrix multiplication (float)")
    v_re = builder.stream_input("v_re")
    v_im = builder.stream_input("v_im")
    c_re = builder.stream_input("c_re")
    c_im = builder.stream_input("c_im")
    beta = builder.param("beta")
    # Full complex rank-1 update per element: the conjugated dot
    # contribution (4 muls, 2 adds), scaling by beta (2 muls), and
    # the axpy back into the column (4 muls, 4 adds).  Ten multiplies
    # against two multiplier units bound the II -- the paper's canonical
    # load-imbalance example.
    rr = builder.op("fmul", v_re, c_re)
    ii = builder.op("fmul", v_im, c_im)
    ri = builder.op("fmul", v_re, c_im)
    ir = builder.op("fmul", v_im, c_re)
    dot_re = builder.op("fadd", rr, ii)
    dot_im = builder.op("fsub", ri, ir)
    w_re = builder.op("fmul", dot_re, beta)
    w_im = builder.op("fmul", dot_im, beta)
    m1 = builder.op("fmul", v_re, w_re)
    m2 = builder.op("fmul", v_im, w_im)
    m3 = builder.op("fmul", v_re, w_im)
    m4 = builder.op("fmul", v_im, w_re)
    t_re = builder.op("fsub", m1, m2)
    t_im = builder.op("fadd", m3, m4)
    out_re = builder.op("fsub", c_re, t_re)
    out_im = builder.op("fsub", c_im, t_im)
    builder.stream_output("out_re", out_re)
    builder.stream_output("out_im", out_im)
    return builder.build()


def _update2_apply(inputs: list[np.ndarray],
                   params: dict) -> list[np.ndarray]:
    v = deinterleave(inputs[0])
    block = deinterleave(inputs[1])
    beta = float(params["beta"])
    columns = int(params["columns"])
    if columns <= 0 or len(block) % columns:
        raise ValueError("update2: block does not divide into columns")
    matrix = block.reshape(columns, -1).T  # (n, columns)
    matrix = matrix - np.outer(v, beta * (v.conj() @ matrix))
    return [interleave(matrix.T.reshape(-1))]


UPDATE2 = KernelSpec(
    name="update2",
    graph=build_update2_graph(),
    apply_fn=_update2_apply,
    output_record_words=(2,),
    description="matrix-matrix multiplication (float)",
)
