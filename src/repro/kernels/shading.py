"""RTSL rendering kernels: transform, shade, rasterize, fragment shade.

The RTSL application renders with the Stanford Real-Time Shading
Language pipeline: vertex transform (dense 4x4 matrix work), vertex
shading (normalization needs the DSQ unit), triangle setup/rasterize
(a reciprocal per triangle), and fragment shading.  Rates are
moderate; RTSL's low application-level GOPS in Table 3 comes from
host dependencies and memory stalls, not kernel quality.

Functional models implement a minimal but real pipeline: model-view
projection of vertices, Lambertian vertex lighting, half-space
rasterization into fragments, and flat fragment shading, so the
application produces an actual framebuffer.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.streamc.program import KernelSpec

#: Words per vertex record: x y z w nx ny nz pad.
VERTEX_WORDS = 8
#: Words per fragment record: x y depth color.
FRAGMENT_WORDS = 4


def build_xform_graph() -> KernelGraph:
    builder = KernelBuilder(
        "xform", elements_per_iteration=1,
        description="4x4 matrix transform of vertex positions")
    coords = [builder.stream_input(f"v{i}") for i in range(4)]
    rows = [builder.param(f"m{i}") for i in range(4)]
    outs = []
    for r in range(4):
        products = [builder.op("fmul", coords[c], rows[r])
                    for c in range(4)]
        outs.append(builder.reduce("fadd", products))
    for i, out in enumerate(outs):
        builder.stream_output(f"p{i}", out)
    return builder.build()


def _xform_apply(inputs, params):
    verts = inputs[0].reshape(-1, VERTEX_WORDS)
    matrix = np.asarray(params["matrix"], dtype=np.float64)
    positions = verts[:, :4] @ matrix.T
    out = verts.copy()
    out[:, :4] = positions
    return [out.reshape(-1)]


XFORM = KernelSpec(
    name="xform",
    graph=build_xform_graph(),
    apply_fn=_xform_apply,
    output_record_words=(VERTEX_WORDS,),
    description="vertex transform (RTSL)",
)


def build_shade_graph() -> KernelGraph:
    builder = KernelBuilder(
        "shade", description="per-vertex lighting with normalization")
    n = [builder.stream_input(f"n{i}") for i in range(3)]
    light = builder.param("light")
    squares = [builder.op("fmul", c, c) for c in n]
    norm2 = builder.reduce("fadd", squares)
    inv = builder.op("frsq", norm2)
    unit = [builder.op("fmul", c, inv) for c in n]
    lambert = builder.reduce(
        "fadd", [builder.op("fmul", c, light) for c in unit])
    intensity = builder.op("fmax", lambert, light)
    builder.stream_output("color", intensity)
    return builder.build()


def _shade_apply(inputs, params):
    verts = inputs[0].reshape(-1, VERTEX_WORDS)
    light = np.asarray(params["light_dir"], dtype=np.float64)
    light = light / np.linalg.norm(light)
    normals = verts[:, 4:7]
    lengths = np.maximum(np.linalg.norm(normals, axis=1), 1e-12)
    lambert = np.clip((normals / lengths[:, None]) @ light, 0.0, 1.0)
    out = verts.copy()
    out[:, 7] = lambert
    return [out.reshape(-1)]


SHADE = KernelSpec(
    name="shade",
    graph=build_shade_graph(),
    apply_fn=_shade_apply,
    output_record_words=(VERTEX_WORDS,),
    description="vertex lighting (RTSL)",
)


def build_rasterize_graph() -> KernelGraph:
    builder = KernelBuilder(
        "rasterize", elements_per_iteration=1,
        description="triangle setup and half-space rasterization")
    v = [builder.stream_input(f"t{i}") for i in range(6)]
    # Edge equations: differences and cross products.
    e01 = builder.op("fsub", v[2], v[0])
    e02 = builder.op("fsub", v[4], v[0])
    e11 = builder.op("fsub", v[3], v[1])
    e12 = builder.op("fsub", v[5], v[1])
    cross = builder.op("fsub", builder.op("fmul", e01, e12),
                       builder.op("fmul", e02, e11))
    area_inv = builder.op("fdiv", cross, cross, name="inv_area")
    bary = [builder.op("fmul", e, area_inv) for e in (e01, e02, e11)]
    steps = [builder.op("fadd", b, builder.prev(b, 1)) for b in bary]
    builder.op("spwrite", steps[0])
    table = builder.op("spread", steps[1], name="span_table")
    builder.stream_output("frag", builder.op("fadd", steps[2], table))
    return builder.build()


def rasterize_triangles(verts: np.ndarray, colors: np.ndarray,
                        width: int, height: int) -> np.ndarray:
    """Half-space rasterizer oracle: (n, FRAGMENT_WORDS) fragments."""
    fragments = []
    for tri, color in zip(verts, colors):
        xs = tri[:, 0]
        ys = tri[:, 1]
        x0 = max(int(np.floor(xs.min())), 0)
        x1 = min(int(np.ceil(xs.max())), width - 1)
        y0 = max(int(np.floor(ys.min())), 0)
        y1 = min(int(np.ceil(ys.max())), height - 1)
        if x1 < x0 or y1 < y0:
            continue
        area = ((xs[1] - xs[0]) * (ys[2] - ys[0])
                - (xs[2] - xs[0]) * (ys[1] - ys[0]))
        if abs(area) < 1e-12:
            continue
        gx, gy = np.meshgrid(np.arange(x0, x1 + 1),
                             np.arange(y0, y1 + 1))
        w0 = ((xs[1] - gx) * (ys[2] - gy) - (xs[2] - gx) * (ys[1] - gy))
        w1 = ((xs[2] - gx) * (ys[0] - gy) - (xs[0] - gx) * (ys[2] - gy))
        w2 = ((xs[0] - gx) * (ys[1] - gy) - (xs[1] - gx) * (ys[0] - gy))
        inside = ((w0 >= 0) & (w1 >= 0) & (w2 >= 0)) | (
            (w0 <= 0) & (w1 <= 0) & (w2 <= 0))
        depth = tri[:, 2].mean()
        for x, y in zip(gx[inside].ravel(), gy[inside].ravel()):
            fragments.append((x, y, depth, color))
    if not fragments:
        return np.zeros((0, FRAGMENT_WORDS))
    return np.asarray(fragments, dtype=np.float64)


def _rasterize_apply(inputs, params):
    verts = inputs[0].reshape(-1, VERTEX_WORDS)
    width = int(params["width"])
    height = int(params["height"])
    triangles = verts[:len(verts) // 3 * 3].reshape(-1, 3, VERTEX_WORDS)
    fragments = rasterize_triangles(
        triangles[:, :, :3], triangles[:, :, 7].mean(axis=1),
        width, height)
    return [fragments.reshape(-1)]


RASTERIZE = KernelSpec(
    name="rasterize",
    graph=build_rasterize_graph(),
    apply_fn=_rasterize_apply,
    output_record_words=(FRAGMENT_WORDS,),
    description="triangle rasterization (RTSL)",
)


def build_fragshade_graph() -> KernelGraph:
    builder = KernelBuilder(
        "fragshade", elements_per_iteration=1,
        description="fragment shading and framebuffer address compute")
    frag = [builder.stream_input(f"f{i}") for i in range(4)]
    width = builder.param("width")
    fog = builder.op("fmul", frag[2], width, name="fog")
    color = builder.op("fmax", builder.op("fadd", frag[3], fog),
                       frag[3])
    address = builder.op("iadd", builder.op("imul", frag[1], width),
                         frag[0], name="fb_address")
    builder.stream_output("addr", address)
    builder.stream_output("color", color)
    return builder.build()


def _fragshade_apply(inputs, params):
    fragments = inputs[0].reshape(-1, FRAGMENT_WORDS)
    width = int(params["width"])
    addresses = fragments[:, 1] * width + fragments[:, 0]
    colors = np.clip(fragments[:, 3] * (1.0 - 0.1 * fragments[:, 2]),
                     0.0, 1.0)
    return [addresses, colors]


FRAGSHADE = KernelSpec(
    name="fragshade",
    graph=build_fragshade_graph(),
    apply_fn=_fragshade_apply,
    output_record_words=(1, 1),
    description="fragment shading (RTSL)",
)
