"""Householder reflector kernel (QRD).

"compute the Householder matrix (float)" from Table 2.  Each
iteration consumes one complex element (two words) of the active
column and accumulates the squared norm with a loop-carried
floating-point add -- the 4-cycle adder latency on that recurrence is
what holds the kernel near half of peak GFLOPS, exactly the
ILP-limited behaviour Figure 6 attributes to it.  A cross-cluster
``comm`` reduction finishes the norm.

Functional model: given a complex column x (interleaved re/im), emit
the Householder vector v (normalized so v[0] = 1 is *not* assumed;
beta accompanies it) and an auxiliary stream [beta_re, beta_im, r_re,
r_im] where r is the resulting diagonal of R.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.streamc.program import KernelSpec


def build_house_graph() -> KernelGraph:
    builder = KernelBuilder(
        "house", description="compute the Householder matrix (float)")
    re = builder.stream_input("re")
    im = builder.stream_input("im")
    re2 = builder.op("fmul", re, re)
    im2 = builder.op("fmul", im, im)
    mag = builder.op("fadd", re2, im2)
    # Loop-carried norm accumulation: the 4-cycle adder latency on
    # this recurrence pins II at 4.
    acc = builder.accumulate("fadd", mag, name="norm_acc")
    scale = builder.param("scale")
    out_re = builder.op("fmul", re, scale)
    out_im = builder.op("fmul", im, scale)
    correction = builder.op("fmul", re2, scale, name="pivot_term")
    builder.op("comm", acc, name="norm_exchange")
    builder.stream_output("v_re", builder.op("fadd", out_re, correction))
    builder.stream_output("v_im", builder.op("fadd", out_im, acc))
    return builder.build()


def interleave(z: np.ndarray) -> np.ndarray:
    """Complex vector -> interleaved re/im word stream."""
    out = np.empty(2 * len(z))
    out[0::2] = z.real
    out[1::2] = z.imag
    return out


def deinterleave(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`interleave`."""
    return words[0::2] + 1j * words[1::2]


def _house_apply(inputs: list[np.ndarray],
                 params: dict) -> list[np.ndarray]:
    """Householder reflector of the input column.

    ``skip`` (elements) restricts the reflector to the column's tail:
    the returned vector is zero-padded back to full length, so
    applying it with ``update2`` leaves the leading rows untouched --
    this is how the blocked QRD keeps whole panel columns resident in
    the SRF while reflectors act on shrinking subcolumns.
    """
    skip = int(params.get("skip", 0))
    full = deinterleave(inputs[0])
    x = full[skip:]
    norm = np.linalg.norm(x)
    if norm == 0:
        v = x.copy()
        if len(v):
            v[0] = 1.0
        beta = 0.0
        r = 0.0
    else:
        phase = (x[0] / abs(x[0])) if abs(x[0]) > 0 else 1.0
        r = -phase * norm
        v = x.copy()
        v[0] -= r
        vnorm2 = np.vdot(v, v).real
        beta = 2.0 / vnorm2 if vnorm2 > 0 else 0.0
    v_full = np.zeros_like(full)
    v_full[skip:] = v
    aux = np.array([beta, 0.0, np.real(r), np.imag(r)])
    return [interleave(v_full), aux]


HOUSE = KernelSpec(
    name="house",
    graph=build_house_graph(),
    apply_fn=_house_apply,
    output_record_words=(2, 1),
    description="compute the Householder matrix (float)",
)
