"""Image convolution kernels (conv7x7, conv3x3).

The DEPTH application's pre-processing stage: each kernel consumes N
input row streams of packed 16-bit pixel pairs and produces the
convolved centre row.  Horizontal context comes from loop-carried
previous words (the sliding window the real KernelC code keeps in
LRFs); vertical context comes from the N input row streams.

Cost structure matches the paper's conv7x7: ~49 multiplies per pixel
pair keep both multipliers saturated, packed adds ride the three
adders, and the kernel sustains well over half of peak 16-bit GOPS.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.kernels.pixelmath import clamp_u16, pack16, unpack16
from repro.streamc.program import KernelSpec


def binomial_taps(n: int) -> np.ndarray:
    """Integer binomial filter taps of length ``n``."""
    taps = np.array([1.0])
    for _ in range(n - 1):
        taps = np.convolve(taps, [1.0, 1.0])
    return taps


def build_conv_graph(taps: int) -> KernelGraph:
    """N-row x N-tap separable-ish convolution over packed pairs."""
    builder = KernelBuilder(
        f"conv{taps}x{taps}", elements_per_iteration=1,
        description=f"{taps}x{taps} convolution of 16-bit pixel pairs")
    coeffs = [builder.param(f"c{i}") for i in range(taps)]
    norm = builder.param("norm_shift")
    row_sums = []
    for row in range(taps):
        word = builder.stream_input(f"row{row}")
        # Sliding window: align pixel groups out of the current and
        # previous words of this row.
        aligned = [word]
        history = [builder.prev(word, 1), builder.prev(word, 2)]
        for tap in range(taps - 1):
            source = history[tap % len(history)]
            aligned.append(builder.op("ishr", word, source,
                                      name=f"align{row}_{tap}"))
        products = [builder.op("pmul16", aligned[tap], coeffs[tap])
                    for tap in range(taps)]
        row_sums.append(builder.reduce("padd16", products))
    total = builder.reduce("padd16", row_sums)
    scaled = builder.op("ishr", total, norm, name="normalize")
    builder.stream_output("out", scaled)
    return builder.build()


def _make_apply(taps: int):
    kernel2d = np.outer(binomial_taps(taps), binomial_taps(taps))
    shift = kernel2d.sum()

    def apply(inputs: list[np.ndarray], params: dict) -> list[np.ndarray]:
        if len(inputs) != taps:
            raise ValueError(
                f"conv{taps}x{taps} needs {taps} row streams")
        rows = np.stack([unpack16(words) for words in inputs])
        width = rows.shape[1]
        half = taps // 2
        padded = np.pad(rows, ((0, 0), (half, half)), mode="edge")
        out = np.zeros(width)
        for dy in range(taps):
            for dx in range(taps):
                out += kernel2d[dy, dx] * padded[dy, dx:dx + width]
        return [pack16(clamp_u16(out / shift))]

    return apply


CONV7X7 = KernelSpec(
    name="conv7x7",
    graph=build_conv_graph(7),
    apply_fn=_make_apply(7),
    description="convolve images with a 7x7 filter (16 bit)",
)

CONV3X3 = KernelSpec(
    name="conv3x3",
    graph=build_conv_graph(3),
    apply_fn=_make_apply(3),
    description="convolve images with a 3x3 filter (16 bit)",
)
