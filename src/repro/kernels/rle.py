"""Run-length encoding kernel.

The slowest kernel of Table 2 (1.21 GOPS): almost no arithmetic, and
the run bookkeeping is all scratchpad traffic -- the paper singles RLE
out as scratchpad-bandwidth-bound.  The graph below carries a run
counter through the scratchpad (two reads and two writes per element),
so its II is pinned by the single scratchpad port.

Functional model: classic (value, run-length) pair encoding with an
exact decoder, used by the MPEG application on zig-zagged quantized
coefficients and validated round-trip in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.streamc.program import KernelSpec


def build_rle_graph() -> KernelGraph:
    builder = KernelBuilder(
        "rle", description="apply run length encoding (16 bit)")
    value = builder.stream_input("value")
    same = builder.op("icmp", value, builder.prev(value, 1))
    count = builder.op("spread", same, name="run_count")
    bumped = builder.op("isel", count, same)
    builder.op("spwrite", bumped)
    builder.op("spwrite", same)
    flushed = builder.op("spread", bumped, name="flush_slot")
    builder.stream_output("out", builder.op("ior", bumped, flushed))
    return builder.build()


def rle_encode(values: np.ndarray) -> np.ndarray:
    """Encode ``values`` as interleaved (value, run) word pairs."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.zeros(0)
    boundaries = np.flatnonzero(np.diff(values) != 0)
    starts = np.concatenate(([0], boundaries + 1))
    ends = np.concatenate((boundaries + 1, [len(values)]))
    out = np.empty(2 * len(starts))
    out[0::2] = values[starts]
    out[1::2] = ends - starts
    return out


def rle_decode(pairs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    pairs = np.asarray(pairs, dtype=np.float64)
    values = pairs[0::2]
    runs = pairs[1::2].astype(np.int64)
    return np.repeat(values, runs)


def _rle_apply(inputs: list[np.ndarray],
               params: dict) -> list[np.ndarray]:
    return [rle_encode(inputs[0])]


RLE = KernelSpec(
    name="rle",
    graph=build_rle_graph(),
    apply_fn=_rle_apply,
    description="apply run length encoding to macroblocks (16 bit)",
)


def build_vlc_graph() -> KernelGraph:
    """Variable-length (Huffman-style) coding: table lookups in the
    scratchpad dominate, like RLE."""
    builder = KernelBuilder(
        "vlc", description="variable-length code the RLE pairs")
    pair = builder.stream_input("pair")
    code = builder.op("spread", pair, name="code_table")
    length = builder.op("spread", code, name="length_table")
    bits = builder.op("iadd", code, length)
    builder.op("spwrite", bits)
    builder.stream_output("bits", builder.op("ior", bits, length))
    return builder.build()


def vlc_code_lengths(pairs: np.ndarray) -> np.ndarray:
    """Bits per (value, run) pair: a plausible static Huffman table."""
    pairs = np.asarray(pairs, dtype=np.float64)
    values = np.abs(pairs[0::2])
    runs = pairs[1::2]
    value_bits = np.where(values == 0, 2.0,
                          2.0 + np.ceil(np.log2(values + 1)))
    run_bits = 1.0 + np.ceil(np.log2(runs + 1))
    return value_bits + run_bits


def _vlc_apply(inputs: list[np.ndarray],
               params: dict) -> list[np.ndarray]:
    return [vlc_code_lengths(inputs[0])]


VLC = KernelSpec(
    name="vlc",
    graph=build_vlc_graph(),
    apply_fn=_vlc_apply,
    description="variable-length coding of RLE pairs (MPEG)",
)
