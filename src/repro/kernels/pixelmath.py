"""Packed 16-bit pixel arithmetic helpers for functional models.

Imagine's media kernels operate on 16-bit pixel pairs packed two to a
32-bit word.  Functional models here represent a packed word as the
exact float64 value ``lo + hi * 65536``, so packing survives the
float-typed stream arrays without loss (both halves are integers in
[0, 65535]).
"""

from __future__ import annotations

import numpy as np

_RADIX = 65536.0
U16_MAX = 65535


def pack16(pixels: np.ndarray) -> np.ndarray:
    """Pack an even-length array of u16 values into pair words."""
    pixels = np.asarray(pixels, dtype=np.float64)
    if len(pixels) % 2:
        raise ValueError("pack16 needs an even number of pixels")
    if ((pixels < 0) | (pixels > U16_MAX)).any():
        raise ValueError("pack16 values must be in [0, 65535]")
    if not np.allclose(pixels, np.round(pixels)):
        raise ValueError("pack16 values must be integers")
    lo = pixels[0::2]
    hi = pixels[1::2]
    return lo + hi * _RADIX


def unpack16(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack16`."""
    words = np.asarray(words, dtype=np.float64)
    hi = np.floor(words / _RADIX)
    lo = words - hi * _RADIX
    out = np.empty(2 * len(words))
    out[0::2] = lo
    out[1::2] = hi
    return out


def clamp_u16(values: np.ndarray) -> np.ndarray:
    """Round and clamp to the u16 range (hardware saturation)."""
    return np.clip(np.round(np.asarray(values, dtype=np.float64)),
                   0, U16_MAX)
