"""Stream copy kernels: SRF bandwidth stress and color conversion.

``srfcopy`` is Table 1's SRF micro-benchmark: "reads multiple input
stream elements per loop iteration and writes the data directly back
to the SRF" -- both SRF ports busy every cycle, no arithmetic worth
mentioning.

``colorconv`` is the MPEG front-end RGB->Y conversion (packed
16-bit): three packed multiplies and two adds per pixel pair.
"""

from __future__ import annotations

import numpy as np

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.kernels.pixelmath import clamp_u16, pack16, unpack16
from repro.streamc.program import KernelSpec


def build_srfcopy_graph() -> KernelGraph:
    builder = KernelBuilder(
        "srfcopy", elements_per_iteration=1,
        description="SRF bandwidth stress: read and write back")
    a = builder.stream_input("a")
    b = builder.stream_input("b")
    builder.stream_output("out_a", builder.op("ior", a, a))
    builder.stream_output("out_b", builder.op("ior", b, b))
    return builder.build()


def _identity_apply(inputs: list[np.ndarray],
                    params: dict) -> list[np.ndarray]:
    return [inputs[0].copy(), inputs[1].copy()]


SRFCOPY = KernelSpec(
    name="srfcopy",
    graph=build_srfcopy_graph(),
    apply_fn=_identity_apply,
    output_record_words=(1, 1),
    description="SRF bandwidth stress kernel",
)


def build_split_graph() -> KernelGraph:
    builder = KernelBuilder(
        "split", description="split a stream's head record off")
    x = builder.stream_input("x")
    builder.stream_output("head", builder.op("ior", x, x))
    builder.stream_output("tail", builder.op("iand", x, x))
    return builder.build()


def _split_apply(inputs: list[np.ndarray],
                 params: dict) -> list[np.ndarray]:
    head_words = int(params["head_words"])
    data = inputs[0]
    return [data[:head_words].copy(), data[head_words:].copy()]


SPLIT = KernelSpec(
    name="split",
    graph=build_split_graph(),
    apply_fn=_split_apply,
    output_record_words=(1, 1),
    description="stream split (head record / remainder)",
)


def build_colorconv_graph() -> KernelGraph:
    builder = KernelBuilder(
        "colorconv", description="RGB to luma conversion (16 bit)")
    r = builder.stream_input("r")
    g = builder.stream_input("g")
    b = builder.stream_input("b")
    wr = builder.param("wr")
    wg = builder.param("wg")
    wb = builder.param("wb")
    yr = builder.op("pmul16", r, wr)
    yg = builder.op("pmul16", g, wg)
    yb = builder.op("pmul16", b, wb)
    luma = builder.op("padd16", builder.op("padd16", yr, yg), yb)
    builder.stream_output("y", builder.op("ishr", luma, wr))
    return builder.build()


def _colorconv_apply(inputs: list[np.ndarray],
                     params: dict) -> list[np.ndarray]:
    r = unpack16(inputs[0])
    g = unpack16(inputs[1])
    b = unpack16(inputs[2])
    luma = (params.get("wr", 0.299) * r + params.get("wg", 0.587) * g
            + params.get("wb", 0.114) * b)
    return [pack16(clamp_u16(luma))]


COLORCONV = KernelSpec(
    name="colorconv",
    graph=build_colorconv_graph(),
    apply_fn=_colorconv_apply,
    description="RGB to luma conversion",
)
