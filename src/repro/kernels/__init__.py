"""Media and scientific kernel library.

Each module defines one kernel (or family) as a
:class:`~repro.streamc.program.KernelSpec`: a KernelC-style dataflow
graph (compiled by :mod:`repro.kernelc` into a software-pipelined VLIW
schedule) plus a numpy reference model used for functional execution.
These are the kernels of Table 2: 2D DCT, blocksearch, RLE, conv7x7,
blocksad, house, update2 and GROMACS, plus helpers (conv3x3, bitonic
sort for the inter-cluster micro-benchmark, stream copy for the SRF
micro-benchmark).
"""

from repro.kernels.library import KERNEL_LIBRARY, get_kernel

__all__ = ["KERNEL_LIBRARY", "get_kernel"]
