"""2D DCT kernel: 8x8 16-bit macroblocks.

The Table-2 kernel ("two-dimensional direct cosine transform of
16-bit 8-by-8 pixel macroblocks").  Each main-loop iteration processes
one 8-pixel block row (four packed words) with a fixed-point
Loeffler-style butterfly network -- 29 adds and 13 multiplies plus
normalizing shifts -- transposing through the scratchpad between the
row and column passes.

Functionally the kernel computes an orthonormal type-II 2-D DCT per
8x8 block, rounded to integers (signed 16-bit, offset-coded +32768 in
the packed representation).
"""

from __future__ import annotations

import numpy as np
import scipy.fft

from repro.isa.kernel_ir import KernelBuilder, KernelGraph
from repro.kernels.pixelmath import pack16, unpack16
from repro.streamc.program import KernelSpec

_OFFSET = 32768.0


def build_dct_graph(name: str = "dct8x8") -> KernelGraph:
    builder = KernelBuilder(
        name, elements_per_iteration=4,
        description="2D DCT of 16-bit 8x8 macroblocks")
    words = [builder.stream_input(f"w{i}") for i in range(4)]
    scale = builder.param("scale")
    # Butterfly stage 1: 8 adds/subs over the row.
    stage1 = []
    for i in range(4):
        stage1.append(builder.op("iadd", words[i], words[3 - i]))
        stage1.append(builder.op("isub", words[i], words[3 - i]))
    # Rotation stage: 13 multiplies by cosine constants.
    rotated = [builder.op("imul", stage1[i % len(stage1)], scale,
                          name=f"rot{i}") for i in range(13)]
    # Butterfly stages 2-3: combine rotations (21 more adds).
    stage2 = []
    for i in range(10):
        stage2.append(builder.op("iadd", rotated[i],
                                 rotated[(i + 3) % 13]))
    stage3 = []
    for i in range(8):
        stage3.append(builder.op("isub", stage2[i],
                                 stage2[(i + 5) % 10]))
    for i in range(3):
        stage3.append(builder.op("iadd", stage3[i], stage2[i]))
    # Transpose staging through the scratchpad (row pass -> col pass).
    builder.op("spwrite", stage3[0])
    recalled = builder.op("spread", stage3[1], name="transpose")
    outputs = [
        builder.op("ishr", builder.op("iadd", stage3[2 * i], recalled),
                   scale, name=f"norm{i}")
        for i in range(4)
    ]
    for i, out in enumerate(outputs):
        builder.stream_output(f"o{i}", out)
    return builder.build()


def _dct_apply(inputs: list[np.ndarray],
               params: dict) -> list[np.ndarray]:
    pixels = unpack16(inputs[0]) - _OFFSET
    if len(pixels) % 64:
        raise ValueError("dct8x8 input must be whole 8x8 blocks")
    blocks = pixels.reshape(-1, 8, 8)
    coefficients = scipy.fft.dctn(blocks, axes=(1, 2), norm="ortho")
    clipped = np.clip(np.round(coefficients), -_OFFSET, _OFFSET - 1)
    return [pack16(clipped.reshape(-1) + _OFFSET)]


def dct_blocks(words: np.ndarray) -> np.ndarray:
    """Decode a packed DCT output stream to (n, 8, 8) coefficients."""
    return (unpack16(words) - _OFFSET).reshape(-1, 8, 8)


DCT8X8 = KernelSpec(
    name="dct8x8",
    graph=build_dct_graph(),
    apply_fn=_dct_apply,
    description="2D DCT of 16-bit 8x8 pixel macroblocks",
)


def _idct_apply(inputs: list[np.ndarray],
                params: dict) -> list[np.ndarray]:
    """Dequantize (optional) + inverse 2-D DCT."""
    step = float(params.get("qstep", 1.0))
    coefficients = (unpack16(inputs[0]) - _OFFSET) * step
    if params.get("zigzagged"):
        zig = coefficients.reshape(-1, 64)
        coefficients = zig[:, np.argsort(_zigzag_order())].reshape(-1)
    blocks = coefficients.reshape(-1, 8, 8)
    pixels = scipy.fft.idctn(blocks, axes=(1, 2), norm="ortho")
    clipped = np.clip(np.round(pixels), -_OFFSET, _OFFSET - 1)
    return [pack16(clipped.reshape(-1) + _OFFSET)]


IDCT8X8 = KernelSpec(
    name="idct8x8",
    graph=build_dct_graph("idct8x8"),
    apply_fn=_idct_apply,
    description="inverse 2D DCT (MPEG reconstruction)",
)


def build_quantzig_graph() -> KernelGraph:
    """Quantize + zig-zag reorder of DCT coefficients.

    Reciprocal-multiply quantization on the multipliers; the zig-zag
    permutation runs through the scratchpad.
    """
    builder = KernelBuilder(
        "quantzig", description="quantize and zig-zag DCT coefficients")
    coef = builder.stream_input("coef")
    recip = builder.param("recip")
    scaled = builder.op("pmul16", coef, recip)
    rounded = builder.op("ishr", scaled, recip)
    builder.op("spwrite", rounded)
    permuted = builder.op("spread", rounded, name="zigzag")
    builder.stream_output("q", builder.op("ior", permuted, rounded))
    return builder.build()


def _quantzig_apply(inputs: list[np.ndarray],
                    params: dict) -> list[np.ndarray]:
    step = float(params.get("qstep", 16.0))
    coefficients = unpack16(inputs[0]) - _OFFSET
    quantized = np.round(coefficients / step)
    blocks = quantized.reshape(-1, 64)
    zigzagged = blocks[:, _zigzag_order()].reshape(-1)
    return [pack16(np.clip(zigzagged, -_OFFSET, _OFFSET - 1) + _OFFSET)]


def _zigzag_order() -> np.ndarray:
    order = sorted(
        ((r, c) for r in range(8) for c in range(8)),
        key=lambda rc: (rc[0] + rc[1],
                        rc[1] if (rc[0] + rc[1]) % 2 else rc[0]))
    return np.array([r * 8 + c for r, c in order])


def dequantize_zigzag(words: np.ndarray, qstep: float) -> np.ndarray:
    """Invert :data:`QUANTZIG` for round-trip tests: (n, 8, 8) blocks."""
    zig = (unpack16(words) - _OFFSET).reshape(-1, 64)
    inverse = np.argsort(_zigzag_order())
    return (zig[:, inverse] * qstep).reshape(-1, 8, 8)


QUANTZIG = KernelSpec(
    name="quantzig",
    graph=build_quantzig_graph(),
    apply_fn=_quantzig_apply,
    description="quantization + zig-zag scan (MPEG)",
)
