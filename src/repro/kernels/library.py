"""Registry of all kernels in the reproduction."""

from __future__ import annotations

from repro.kernels.blocksearch import BLOCKSEARCH
from repro.kernels.conv import CONV3X3, CONV7X7
from repro.kernels.copy import COLORCONV, SPLIT, SRFCOPY
from repro.kernels.dct import DCT8X8, IDCT8X8, QUANTZIG
from repro.kernels.gromacs import GROMACS
from repro.kernels.house import HOUSE
from repro.kernels.rle import RLE, VLC
from repro.kernels.sad import BLOCKSAD, SADMIN, VSUM7
from repro.kernels.shading import FRAGSHADE, RASTERIZE, SHADE, XFORM
from repro.kernels.sort import SORT32
from repro.kernels.update2 import UPDATE2
from repro.streamc.program import KernelSpec

#: All kernels, keyed by name.
KERNEL_LIBRARY: dict[str, KernelSpec] = {
    spec.name: spec
    for spec in (
        DCT8X8, BLOCKSEARCH, RLE, CONV7X7, CONV3X3, BLOCKSAD, VSUM7,
        SADMIN, HOUSE, UPDATE2, GROMACS, SORT32, SRFCOPY, COLORCONV,
        XFORM, SHADE, RASTERIZE, FRAGSHADE, QUANTZIG, VLC, IDCT8X8, SPLIT,
    )
}

#: The eight kernels of Table 2, in the paper's row order.
TABLE2_KERNELS = ("dct8x8", "blocksearch", "rle", "conv7x7",
                  "blocksad", "house", "update2", "gromacs")


def get_kernel(name: str) -> KernelSpec:
    if name not in KERNEL_LIBRARY:
        raise KeyError(
            f"unknown kernel {name!r}; available: "
            f"{sorted(KERNEL_LIBRARY)}")
    return KERNEL_LIBRARY[name]
