"""The simulator-bracketing gate (``repro bounds``).

The static bound analysis (:mod:`repro.analysis.bounds`) claims that
for every fault-free run ``lower <= simulated cycles <= upper``.  This
module makes the claim enforceable, extending the differential
consistency gate of :mod:`repro.engine.verify` with a third,
simulation-free oracle:

* :func:`verify_bounds` sweeps the 4x2 application matrix and a
  seeded fuzzed ``streamc`` corpus, computes the static bounds per
  cell, runs **both** backends, and asserts the bracketing invariant
  against each.  It also compares the static predicted bottleneck
  against the dynamic critical-path binding resource (PR 6); cells
  where the two disagree are reported as *discrepancy seeds* for
  ROADMAP item 3, not failures -- a sound bound that attributes
  differently from the simulator is exactly where a mechanistic
  explanation is missing.
* :func:`bounds_bench_entries` turns one report into
  ``repro.bounds-bench/1`` perf-history lines (tightness is a
  simulated quantity, so unlike the backend bench lines these are
  deterministic apart from the timestamp).

The report document (``repro.bounds-verify/1``) contains only
simulated cycle counts and static bounds -- no wall-clock -- so two
sweeps with the same inputs are byte-identical regardless of the
session's job count.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.analysis.bounds import (
    compute_bounds,
    normalize_resource,
    resources_match,
)
from repro.core.config import BoardConfig, MachineConfig
from repro.engine.verify import BOARD_MODES, fuzz_corpus

#: Schema for the bracketing-gate report document.
BOUNDS_VERIFY_SCHEMA = "repro.bounds-verify/1"

#: Schema for per-cell tightness lines in the perf-history store.
BOUNDS_BENCH_SCHEMA = "repro.bounds-bench/1"

#: Acceptance thresholds the CI gate asserts on the paper matrix.
MAX_MEAN_TIGHTNESS = 1.5
MIN_BOTTLENECK_MATCHES = 6

_BACKENDS = ("event", "vector")


def _board_of(mode: str) -> BoardConfig:
    return (BoardConfig.hardware() if mode == "hardware"
            else BoardConfig.isim())


def verify_bounds(apps: Iterable[str] | None = None,
                  boards: Iterable[str] = BOARD_MODES,
                  fuzz: int = 100, fuzz_seed: int = 0,
                  session=None,
                  progress=None) -> dict[str, Any]:
    """Assert ``lower <= simulated <= upper`` everywhere.

    Returns a ``repro.bounds-verify/1`` document.  ``ok`` is true when
    every matrix cell and every fuzz program brackets on both
    backends; tightness/bottleneck thresholds are left to the caller
    (the CLI gate), since they are calibrated for the full paper
    matrix only.
    """
    from repro.apps.common import AppBundle
    from repro.engine.catalog import APP_NAMES, build_app
    from repro.obs.critpath import critpath_summary

    apps = [name.lower() for name in (apps or APP_NAMES)]
    boards = list(boards)
    say = progress if progress is not None else (lambda message: None)

    own_session = session is None
    if own_session:
        from repro.engine.session import Session, SessionConfig

        session = Session(config=SessionConfig(jobs=1, cache=False))

    machine = MachineConfig()
    try:
        matrix = []
        bracket_failures = 0
        matches = 0
        disagreements = []
        tightnesses = []
        for app in apps:
            bundle = build_app(app)
            for mode in boards:
                board = _board_of(mode)
                analysis = compute_bounds(bundle.image,
                                          machine=machine, board=board)
                cycles = {}
                bracketed = {}
                dynamic_binding = None
                for backend in _BACKENDS:
                    result = session.run_bundle(
                        bundle, board=board, backend=backend)
                    cycles[backend] = result.metrics.total_cycles
                    bracketed[backend] = analysis.brackets(
                        cycles[backend])
                    if backend == "event":
                        dynamic_binding = critpath_summary(
                            result)["binding_resource"]
                cell_ok = all(bracketed.values())
                bracket_failures += 0 if cell_ok else 1
                tightness = analysis.tightness(cycles["event"])
                tightnesses.append(tightness)
                match = resources_match(analysis.bottleneck,
                                        dynamic_binding)
                matches += 1 if match else 0
                cell = {
                    "app": app,
                    "board_mode": mode,
                    "lower": analysis.lower_bound_cycles,
                    "upper": analysis.upper_bound_cycles,
                    "event_cycles": cycles["event"],
                    "vector_cycles": cycles["vector"],
                    "bracketed": cell_ok,
                    "tightness": tightness,
                    "upper_ratio": (analysis.upper_bound_cycles
                                    / cycles["event"]
                                    if cycles["event"] else 0.0),
                    "static_bottleneck": analysis.bottleneck,
                    "bottleneck_source": analysis.bottleneck_source,
                    "dynamic_binding": normalize_resource(
                        dynamic_binding or ""),
                    "bottleneck_match": match,
                }
                matrix.append(cell)
                if not match:
                    disagreements.append({
                        "app": app, "board_mode": mode,
                        "static": analysis.bottleneck,
                        "dynamic": cell["dynamic_binding"],
                    })
                say(f"{app}/{mode}: lower={cell['lower']:.0f} "
                    f"sim={cell['event_cycles']:.0f} "
                    f"upper={cell['upper']:.0f} "
                    f"tightness={tightness:.3f} "
                    f"bottleneck {cell['static_bottleneck']}/"
                    f"{cell['dynamic_binding']} "
                    f"{'OK' if cell_ok else 'BRACKET FAILURE'}")

        fuzz_failures = []
        images = fuzz_corpus(fuzz, seed=fuzz_seed) if fuzz else []
        fuzz_max_tightness = 0.0
        for index, image in enumerate(images):
            for mode in boards:
                board = _board_of(mode)
                analysis = compute_bounds(image, machine=machine,
                                          board=board)
                for backend in _BACKENDS:
                    handle = session.submit_bundle(
                        AppBundle(name=image.name, image=image),
                        board=board, backend=backend)
                    cycles = handle.result().metrics.total_cycles
                    if not analysis.brackets(cycles):
                        fuzz_failures.append({
                            "index": index, "board_mode": mode,
                            "backend": backend,
                            "lower": analysis.lower_bound_cycles,
                            "cycles": cycles,
                            "upper": analysis.upper_bound_cycles,
                        })
                    fuzz_max_tightness = max(
                        fuzz_max_tightness,
                        analysis.tightness(cycles))
        if images:
            say(f"fuzz corpus: {len(images)} seeded programs x "
                f"{len(boards)} boards x {len(_BACKENDS)} backends, "
                f"{len(fuzz_failures)} bracket failure(s)")

        ok = bracket_failures == 0 and not fuzz_failures
        mean_tightness = (sum(tightnesses) / len(tightnesses)
                          if tightnesses else 0.0)
        return {
            "schema": BOUNDS_VERIFY_SCHEMA,
            "ok": ok,
            "matrix": matrix,
            "matrix_bracket_failures": bracket_failures,
            "bottleneck_matches": matches,
            "bottleneck_cells": len(matrix),
            "discrepancy_seeds": disagreements,
            "fuzz": {"count": len(images), "seed": fuzz_seed,
                     "boards": boards,
                     "failures": fuzz_failures,
                     "max_tightness": fuzz_max_tightness},
            "aggregate": {
                "mean_tightness": mean_tightness,
                "max_tightness": (max(tightnesses)
                                  if tightnesses else 0.0),
                "max_mean_tightness": MAX_MEAN_TIGHTNESS,
                "min_bottleneck_matches": MIN_BOTTLENECK_MATCHES,
            },
        }
    finally:
        if own_session:
            session.close()


def validate_bounds_verify(report: dict[str, Any]) -> None:
    """Structural check for a ``repro.bounds-verify/1`` document.

    Raises ``ValueError`` on a malformed report; returns ``None`` on a
    well-formed one.  CI calls this on the uploaded artifact so schema
    drift fails loudly instead of silently passing a gate that checked
    nothing.
    """
    if report.get("schema") != BOUNDS_VERIFY_SCHEMA:
        raise ValueError(f"not a {BOUNDS_VERIFY_SCHEMA} document: "
                         f"{report.get('schema')!r}")
    for key in ("ok", "matrix", "matrix_bracket_failures",
                "bottleneck_matches", "bottleneck_cells",
                "discrepancy_seeds", "fuzz", "aggregate"):
        if key not in report:
            raise ValueError(f"missing report key {key!r}")
    cell_keys = {"app", "board_mode", "lower", "upper",
                 "event_cycles", "vector_cycles", "bracketed",
                 "tightness", "upper_ratio", "static_bottleneck",
                 "bottleneck_source", "dynamic_binding",
                 "bottleneck_match"}
    for cell in report["matrix"]:
        missing = cell_keys - set(cell)
        if missing:
            raise ValueError(f"matrix cell missing {sorted(missing)}")
        if not (cell["lower"] <= cell["upper"]):
            raise ValueError(
                f"{cell['app']}/{cell['board_mode']}: lower "
                f"{cell['lower']} exceeds upper {cell['upper']}")
        if cell["bracketed"] != (
                cell["lower"] <= cell["event_cycles"] <= cell["upper"]
                and cell["lower"] <= cell["vector_cycles"]
                <= cell["upper"]):
            raise ValueError(
                f"{cell['app']}/{cell['board_mode']}: bracketed flag "
                f"inconsistent with recorded cycles")
    fuzz = report["fuzz"]
    for key in ("count", "seed", "boards", "failures",
                "max_tightness"):
        if key not in fuzz:
            raise ValueError(f"missing fuzz key {key!r}")
    if report["ok"] != (report["matrix_bracket_failures"] == 0
                       and not fuzz["failures"]):
        raise ValueError("ok flag inconsistent with recorded failures")


def bounds_bench_entries(report: dict[str, Any]
                         ) -> list[dict[str, Any]]:
    """``repro.bounds-bench/1`` perf-history lines for one report."""
    recorded_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    entries = []
    for cell in report["matrix"]:
        entries.append({
            "schema": BOUNDS_BENCH_SCHEMA,
            "app": cell["app"],
            "board_mode": cell["board_mode"],
            "bracketed": cell["bracketed"],
            "lower": cell["lower"],
            "event_cycles": cell["event_cycles"],
            "upper": cell["upper"],
            "tightness": cell["tightness"],
            "upper_ratio": cell["upper_ratio"],
            "bottleneck_match": cell["bottleneck_match"],
            "recorded_at": recorded_at,
        })
    aggregate = report["aggregate"]
    entries.append({
        "schema": BOUNDS_BENCH_SCHEMA,
        "app": "MATRIX",
        "board_mode": "all",
        "bracketed": report["ok"],
        "lower": 0.0,
        "event_cycles": 0.0,
        "upper": 0.0,
        "tightness": aggregate["mean_tightness"],
        "upper_ratio": 0.0,
        "bottleneck_match": (report["bottleneck_matches"]
                             >= MIN_BOTTLENECK_MATCHES),
        "recorded_at": recorded_at,
    })
    return entries


__all__ = [
    "BOUNDS_BENCH_SCHEMA",
    "BOUNDS_VERIFY_SCHEMA",
    "MAX_MEAN_TIGHTNESS",
    "MIN_BOTTLENECK_MATCHES",
    "bounds_bench_entries",
    "validate_bounds_verify",
    "verify_bounds",
]
