"""Differential backend verification (``repro verify-backend``).

The vector backend's contract is *bit-identity*: for every run it
accepts, it must produce the same :class:`~repro.core.metrics.Metrics`
(floats accumulated in the same order), the same trace, the same
event DAG -- and therefore byte-equal profile, critpath and
evaluation artifacts -- as the event-driven reference model.  This
module is the gate that makes the contract enforceable:

* :func:`result_fingerprint` folds everything a run produces (except
  wall-clock manifest provenance, which legitimately differs) into
  one canonical JSON blob;
* :func:`verify_backends` byte-compares both backends over the 4x2
  app matrix plus a seeded fuzzed ``streamc`` corpus, timing each
  cell best-of-N along the way, and emits a deterministic-shape
  ``repro.backend-verify/1`` report;
* :func:`backend_bench_entries` turns the timings into
  ``repro.backend-bench/1`` lines for the perf-history store
  (wall-clock lines, like ``repro.serve-load/1``: appended per sweep,
  never deduplicated).

Processors are constructed directly here -- this *is* the sanctioned
engine-side construction site -- because routing both runs through a
warm cache would compare a result with itself.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Iterable

import numpy as np

from repro.core.config import BoardConfig, MachineConfig

#: Schema for the verification report document.
VERIFY_SCHEMA = "repro.backend-verify/1"

#: Schema for per-cell wall-clock lines in the perf-history store.
BENCH_SCHEMA = "repro.backend-bench/1"

#: Board models the matrix sweeps.
BOARD_MODES = ("hardware", "isim")

#: The vector backend's recorded speedup target over the event
#: backend (aspirational, recorded in every bench line; CI only hard
#: asserts "faster" -- wall-clock on shared runners is noisy).
TARGET_SPEEDUP = 10.0


# ----------------------------------------------------------------------
# Fingerprinting.
# ----------------------------------------------------------------------
def result_fingerprint(result) -> str:
    """Canonical JSON of every simulated fact one run produced.

    Includes the metrics (cycle ledger, counters, per-kernel records),
    power report, instruction histogram, full trace, the recorded
    event DAG, and the derived profile and critpath documents.
    Excludes the manifest: wall time, timestamps and the executing
    backend differ between backends by construction.
    """
    from repro.obs.critpath import build_critpath
    from repro.obs.profile import build_profile, validate_profile

    metrics = result.metrics
    graph = result.event_graph
    profile = build_profile(result)
    validate_profile(profile)
    document = {
        "metrics": {
            "cycles": {c.value: v for c, v in metrics.cycles.items()},
            "total_cycles": metrics.total_cycles,
            "arith_ops": metrics.arith_ops,
            "flops": metrics.flops,
            "instructions": metrics.instructions,
            "comm_ops": metrics.comm_ops,
            "sp_accesses": metrics.sp_accesses,
            "dsq_ops": metrics.dsq_ops,
            "lrf_words": metrics.lrf_words,
            "srf_words": metrics.srf_words,
            "mem_words": metrics.mem_words,
            "sdr_writes": metrics.sdr_writes,
            "sdr_references": metrics.sdr_references,
            "host_instructions": metrics.host_instructions,
            "host_busy_cycles": metrics.host_busy_cycles,
            "host_round_trips": metrics.host_round_trips,
            "microcode_loader_busy_cycles":
                metrics.microcode_loader_busy_cycles,
            "memory_stream_words": list(metrics.memory_stream_words),
            "idle_blame": dict(metrics.idle_blame),
            "ag_busy_cycles": dict(metrics.ag_busy_cycles),
            "dram_channel_busy": dict(metrics.dram_channel_busy),
            "invocations": [vars(r)
                            for r in metrics.kernel_invocations],
        },
        "power": vars(result.power),
        "histogram": dict(result.instruction_histogram),
        "trace": [vars(t) for t in result.trace],
        "graph_nodes": [vars(node) for node in graph.nodes],
        "graph_edges": [(e.src, e.dst, e.type, e.weight, e.detail)
                        for e in graph.edges],
        "graph_meta": dict(graph.meta),
        "profile": profile,
        "critpath": build_critpath(result),
    }
    return json.dumps(document, sort_keys=True, default=str)


def _processor(backend: str, kernels, board: BoardConfig,
               machine: MachineConfig | None = None,
               strict: bool = False):
    if backend == "vector":
        from repro.core.vector import VectorProcessor

        cls = VectorProcessor
    else:
        from repro.core.processor import ImagineProcessor

        cls = ImagineProcessor
    return cls(machine=machine, board=board, kernels=kernels,
               strict=strict)


def _run_timed(backend: str, image, kernels, board: BoardConfig,
               best_of: int) -> tuple[str, float]:
    """Fingerprint of one run plus the best-of-N wall time.

    Every repetition builds a fresh processor (no per-instance state
    reuse); the fingerprint comes from the first repetition, the
    timing is the minimum over all of them -- the standard defence
    against scheduler noise on shared CI runners.
    """
    fingerprint = None
    best = float("inf")
    for _ in range(max(1, best_of)):
        processor = _processor(backend, kernels, board)
        started = time.perf_counter()
        result = processor.run(image)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        if fingerprint is None:
            fingerprint = result_fingerprint(result)
    return fingerprint, best


# ----------------------------------------------------------------------
# Fuzzed streamc corpus (seeded, deterministic -- no hypothesis).
# ----------------------------------------------------------------------
def _fuzz_specs():
    from repro.isa.kernel_ir import KernelBuilder
    from repro.streamc.program import KernelSpec

    def make(name: str, inputs: int) -> KernelSpec:
        builder = KernelBuilder(name)
        streams = [builder.stream_input(f"x{i}")
                   for i in range(inputs)]
        total = builder.reduce("fadd", streams)
        builder.stream_output("o", builder.op("fmul", total, total))
        return KernelSpec(
            name, builder.build(),
            lambda ins, p: [np.sum(ins, axis=0) ** 2])

    return {n: make(f"vfuzz{n}", n) for n in (1, 2, 3)}


def fuzz_corpus(count: int, seed: int = 0) -> list:
    """``count`` seeded random-but-well-formed stream program images.

    Mirrors the shape distribution of the hypothesis strategy in
    ``tests/test_fuzz_streamc.py`` (load/kernel/store/host-read mixes
    over live streams) but draws from ``random.Random(seed)``, so the
    corpus -- and therefore the verification verdict -- is
    reproducible from the seed alone.
    """
    from repro.streamc import StreamProgram

    specs = _fuzz_specs()
    images = []
    rng = random.Random(seed)
    for index in range(count):
        program = StreamProgram(f"fuzz{index}",
                                max_batch_elements=512)
        source = program.array(
            "src", np.arange(4096, dtype=float) % 7)
        sink = program.alloc_array("sink", 8192)
        live = []
        budget = 20000
        sink_cursor = 0
        kernels = 0
        for step in range(rng.randint(3, 25)):
            action = rng.choice(["load", "kernel", "store",
                                 "kernel", "load"])
            if action == "load" or not live:
                words = rng.randint(8, 1024)
                if words > budget:
                    continue
                start = rng.randint(0, 4096 - words)
                live.append(program.load(
                    source, start=start, words=words,
                    name=f"l{step}"))
                budget -= words
            elif action == "kernel":
                arity = min(rng.randint(1, 3), len(live))
                picks = [live[rng.randint(0, len(live) - 1)]
                         for _ in range(arity)]
                if len({s.words for s in picks}) > 1:
                    shortest = min(picks, key=lambda s: s.words)
                    picks = [shortest] * arity
                out = program.kernel1(specs[arity], picks,
                                      name=f"k{step}")
                live.append(out)
                budget -= out.words
                kernels += 1
            else:
                stream = live[rng.randint(0, len(live) - 1)]
                if sink_cursor + stream.words <= 8192:
                    program.store(stream, sink, start=sink_cursor)
                    sink_cursor += stream.words
                if rng.random() < 0.5:
                    program.host_read(tag=f"hr{step}")
            if len(live) > 6:
                live = live[-6:]
        if not kernels:
            out = program.kernel1(specs[1], [live[0]],
                                  name="kfinal")
            program.store(out, sink, start=0)
        image = program.build()
        image.validate()
        images.append(image)
    return images


# ----------------------------------------------------------------------
# The gate.
# ----------------------------------------------------------------------
def verify_backends(apps: Iterable[str] | None = None,
                    boards: Iterable[str] = BOARD_MODES,
                    best_of: int = 3,
                    fuzz: int = 8, fuzz_seed: int = 0,
                    progress=None) -> dict[str, Any]:
    """Byte-compare event vs vector over the app matrix + fuzz corpus.

    Returns a ``repro.backend-verify/1`` document whose
    deterministic fields (verdicts, cell identity) depend only on the
    inputs; wall-clock timings ride along for the bench lines.
    ``progress`` is an optional ``callable(str)`` for live per-cell
    reporting.
    """
    from repro.engine.catalog import APP_NAMES, build_app

    apps = [name.lower() for name in (apps or APP_NAMES)]
    boards = list(boards)
    board_of = {"hardware": BoardConfig.hardware(),
                "isim": BoardConfig.isim()}
    say = progress if progress is not None else (lambda message: None)

    matrix = []
    event_total = vector_total = 0.0
    mismatches = 0
    for app in apps:
        bundle = build_app(app)
        for mode in boards:
            board = board_of[mode]
            event_fp, event_s = _run_timed(
                "event", bundle.image, bundle.kernels, board, best_of)
            # One untimed vector run first: compiling the schedule
            # tables is a one-off cost warm runs never pay.
            _run_timed("vector", bundle.image, bundle.kernels,
                       board, 1)
            vector_fp, vector_s = _run_timed(
                "vector", bundle.image, bundle.kernels, board,
                best_of)
            identical = event_fp == vector_fp
            mismatches += 0 if identical else 1
            event_total += event_s
            vector_total += vector_s
            cell = {"app": app, "board_mode": mode,
                    "identical": identical,
                    "event_s": event_s, "vector_s": vector_s,
                    "speedup": (event_s / vector_s
                                if vector_s > 0 else 0.0),
                    "best_of": best_of}
            matrix.append(cell)
            say(f"{app}/{mode}: event={event_s:.3f}s "
                f"vector={vector_s:.3f}s "
                f"speedup={cell['speedup']:.1f}x "
                f"{'OK' if identical else 'MISMATCH'}")

    fuzz_failures = []
    images = fuzz_corpus(fuzz, seed=fuzz_seed) if fuzz else []
    for index, image in enumerate(images):
        board = board_of[boards[0]] if boards else \
            BoardConfig.hardware()
        event_fp, _ = _run_timed("event", image, image.kernels,
                                 board, 1)
        vector_fp, _ = _run_timed("vector", image, image.kernels,
                                  board, 1)
        if event_fp != vector_fp:
            fuzz_failures.append(index)
    if images:
        say(f"fuzz corpus: {len(images)} seeded programs, "
            f"{len(fuzz_failures)} mismatch(es)")

    ok = mismatches == 0 and not fuzz_failures
    return {
        "schema": VERIFY_SCHEMA,
        "ok": ok,
        "matrix": matrix,
        "matrix_mismatches": mismatches,
        "fuzz": {"count": len(images), "seed": fuzz_seed,
                 "failures": fuzz_failures},
        "aggregate": {
            "event_s": event_total,
            "vector_s": vector_total,
            "speedup": (event_total / vector_total
                        if vector_total > 0 else 0.0),
            "target_speedup": TARGET_SPEEDUP,
        },
    }


def backend_bench_entries(report: dict[str, Any]
                          ) -> list[dict[str, Any]]:
    """``repro.backend-bench/1`` perf-history lines for one report."""
    recorded_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    entries = []
    for cell in report["matrix"]:
        entries.append({
            "schema": BENCH_SCHEMA,
            "app": cell["app"],
            "board_mode": cell["board_mode"],
            "identical": cell["identical"],
            "event_s": cell["event_s"],
            "vector_s": cell["vector_s"],
            "speedup": cell["speedup"],
            "target_speedup": TARGET_SPEEDUP,
            "best_of": cell["best_of"],
            "recorded_at": recorded_at,
        })
    aggregate = report["aggregate"]
    entries.append({
        "schema": BENCH_SCHEMA,
        "app": "MATRIX",
        "board_mode": "all",
        "identical": report["ok"],
        "event_s": aggregate["event_s"],
        "vector_s": aggregate["vector_s"],
        "speedup": aggregate["speedup"],
        "target_speedup": TARGET_SPEEDUP,
        "best_of": (report["matrix"][0]["best_of"]
                    if report["matrix"] else 0),
        "recorded_at": recorded_at,
    })
    return entries


__all__ = [
    "BENCH_SCHEMA",
    "BOARD_MODES",
    "TARGET_SPEEDUP",
    "VERIFY_SCHEMA",
    "backend_bench_entries",
    "fuzz_corpus",
    "result_fingerprint",
    "verify_backends",
]
