"""The experiment catalog: one registry for every runnable workload.

Before the engine existed, the application table (name -> builder) was
duplicated in ``repro/cli.py``, ``repro/evaluation.py``,
``benchmarks/benchlib.py`` and the fault-campaign CLI path.  This
module is now the single source of truth: the CLI, the evaluation
driver, the benchmarks and the engine's worker processes all resolve
application names here, which is also what lets a worker process
rebuild a bundle from a declarative
:class:`~repro.engine.request.RunRequest` instead of unpickling one.

Bundles built through :func:`build_app` are stamped with their
catalog ``source`` (name + build sizes), which marks them as
*declarative*: the engine can reproduce them in another process and
cache their results content-addressed.  Bundles built by calling an
app module's ``build()`` directly carry no source and always run
in-process, uncached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.common import AppBundle


class CatalogError(KeyError):
    """Unknown application/workload name."""


#: Canonical (lowercase) application names, in the paper's order.
APP_NAMES: tuple[str, ...] = ("depth", "mpeg", "qrd", "rtsl")


def app_builders() -> dict[str, Callable[..., "AppBundle"]]:
    """Name -> builder for the paper's four applications.

    Imported lazily so that importing :mod:`repro.engine` does not pull
    in the whole application/compiler stack.
    """
    from repro.apps import depth, mpeg, qrd, rtsl

    return {"depth": depth.build, "mpeg": mpeg.build,
            "qrd": qrd.build, "rtsl": rtsl.build}


def canonical_name(name: str) -> str:
    """Normalize ``name`` to its catalog key; raises CatalogError."""
    key = name.lower()
    if key not in APP_NAMES:
        raise CatalogError(
            f"unknown application {name!r}; choose from "
            f"{sorted(APP_NAMES)}")
    return key


def build_app(name: str, **sizes: Any) -> "AppBundle":
    """Build an application bundle and stamp its catalog source.

    ``sizes`` are forwarded to the app module's ``build()`` (e.g.
    ``image_height=64``); they become part of the bundle's declarative
    identity and therefore of its cache digest.
    """
    key = canonical_name(name)
    bundle = app_builders()[key](**sizes)
    bundle.source = (key, tuple(sorted(sizes.items())))
    return bundle


__all__ = [
    "APP_NAMES",
    "CatalogError",
    "app_builders",
    "build_app",
    "canonical_name",
]
