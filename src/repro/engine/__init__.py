"""The parallel experiment engine (``docs/engine.md``).

One front door for every simulation the repo runs:

* :mod:`repro.engine.catalog` -- the single app/workload registry
  (previously duplicated across the CLI, evaluation driver and
  benchmarks);
* :mod:`repro.engine.request` -- :class:`RunRequest`, the declarative,
  hashable description of one run, and its content-digest rules;
* :mod:`repro.engine.cache` -- the content-addressed on-disk result
  cache (``~/.cache/repro`` by default);
* :mod:`repro.engine.session` -- :class:`Session` /
  :class:`RunHandle`, process-parallel execution with deterministic
  results, per-run timeout/retry and cache hit/miss counters.

Quickstart::

    from repro.engine import RunRequest, Session, SessionConfig

    with Session(config=SessionConfig(jobs=4)) as session:
        results = session.run_batch(
            [RunRequest(app=name) for name in ("depth", "mpeg")])
"""

from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.catalog import APP_NAMES, CatalogError, build_app
from repro.engine.request import BACKENDS, RunRequest, code_salt
from repro.engine.session import (
    EngineError,
    RunFailure,
    RunHandle,
    RunOutcome,
    Session,
    SessionConfig,
    SessionStats,
    get_default_session,
)

__all__ = [
    "APP_NAMES",
    "BACKENDS",
    "CatalogError",
    "EngineError",
    "ResultCache",
    "RunFailure",
    "RunHandle",
    "RunOutcome",
    "RunRequest",
    "Session",
    "SessionConfig",
    "SessionStats",
    "build_app",
    "code_salt",
    "default_cache_dir",
    "get_default_session",
]
