"""Content-addressed on-disk result cache.

Layout (under ``~/.cache/repro`` by default, or ``REPRO_CACHE_DIR``,
or the ``SessionConfig(cache_dir=...)`` override)::

    <root>/objects/<d0d1>/<digest>.pkl    # pickled RunOutcome
    <root>/objects/<d0d1>/<digest>.json   # human-readable manifest

The digest is the :meth:`RunRequest.digest` content hash, so the
cache needs no eviction logic to stay *correct*: a changed request,
config, fault plan, seed or code salt simply addresses a different
object.  Eviction exists only to bound disk usage: set
``REPRO_CACHE_MAX_BYTES`` (or ``ResultCache(max_bytes=...)``) and the
cache evicts least-recently-*used* entries -- loads refresh an
entry's mtime, which is the LRU clock -- until it fits.  Writes are
atomic (temp file + ``os.replace``), as is the ``index.json``
summary the eviction pass maintains; unreadable or corrupt entries
are treated as misses and removed.  ``repro cache --stats/--prune``
exposes the same machinery from the command line.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import tempfile
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.request import RunRequest
    from repro.engine.session import RunOutcome

#: Version tag stored with every cache object; bump on layout changes.
CACHE_FORMAT = 1

#: Environment override for the size budget (bytes; unset/0 = unbounded).
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"


def configured_max_bytes() -> int | None:
    """The ``REPRO_CACHE_MAX_BYTES`` budget, or ``None`` when unset,
    zero or unparseable (an unbounded cache, the historical default)."""
    raw = os.environ.get(MAX_BYTES_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Digest -> RunOutcome store with atomic writes and optional
    size-capped LRU eviction."""

    def __init__(self, root: pathlib.Path | str | None = None,
                 max_bytes: int | None = None,
                 on_evict: "Callable[[int], None] | None" = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.max_bytes = (max_bytes if max_bytes is not None
                          else configured_max_bytes())
        if self.max_bytes is not None and self.max_bytes <= 0:
            self.max_bytes = None
        #: Called with the eviction count after each pruning pass that
        #: removed entries; lets the owning session count evictions
        #: without polling ``index.json``.
        self.on_evict = on_evict

    def _object_path(self, digest: str) -> pathlib.Path:
        return self.root / "objects" / digest[:2] / f"{digest}.pkl"

    @property
    def index_path(self) -> pathlib.Path:
        return self.root / "index.json"

    # ------------------------------------------------------------------
    def load(self, digest: str) -> "RunOutcome | None":
        """The stored outcome for ``digest``, or None on miss/corruption."""
        path = self._object_path(digest)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Corrupt or written by an incompatible version: drop it.
            self._discard(digest)
            return None
        if not isinstance(entry, dict) or entry.get("format") != CACHE_FORMAT:
            self._discard(digest)
            return None
        self._touch(path)
        return entry.get("outcome")

    @staticmethod
    def _touch(path: pathlib.Path) -> None:
        """Refresh the LRU clock (entry mtime) on a hit."""
        try:
            os.utime(path)
        except OSError:
            pass

    def store(self, digest: str, outcome: "RunOutcome",
              request: "RunRequest") -> None:
        """Persist ``outcome`` under ``digest`` (best-effort, atomic)."""
        path = self._object_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(
                path, pickle.dumps({"format": CACHE_FORMAT,
                                    "outcome": outcome}))
            summary = {
                "digest": digest,
                "format": CACHE_FORMAT,
                "status": outcome.status,
                "cycles": (outcome.result.metrics.total_cycles
                           if outcome.result is not None else None),
                "error": outcome.error_type,
                "request": request.payload(),
            }
            self._atomic_write(
                path.with_suffix(".json"),
                (json.dumps(summary, sort_keys=True, indent=2)
                 + "\n").encode())
            if self.max_bytes is not None:
                self.prune(self.max_bytes)
        except OSError:
            # A read-only or full cache dir must never fail the run.
            pass

    # ------------------------------------------------------------------
    # Size accounting, LRU eviction and the on-disk index.
    # ------------------------------------------------------------------
    def entries(self) -> list[dict[str, Any]]:
        """Every cached object, oldest-use first: digest, byte size
        (pickle + manifest) and last-use timestamp."""
        base = self.root / "objects"
        if not base.exists():
            return []
        rows = []
        for path in base.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            size = stat.st_size
            try:
                size += path.with_suffix(".json").stat().st_size
            except OSError:
                pass
            rows.append({"digest": path.stem, "bytes": size,
                         "last_used": stat.st_mtime})
        rows.sort(key=lambda row: (row["last_used"], row["digest"]))
        return rows

    def stats(self) -> dict[str, Any]:
        """Occupancy summary (also persisted as ``index.json``)."""
        rows = self.entries()
        total = sum(row["bytes"] for row in rows)
        return {
            "root": str(self.root),
            "entries": len(rows),
            "bytes": total,
            "max_bytes": self.max_bytes,
            "over_budget": (self.max_bytes is not None
                            and total > self.max_bytes),
        }

    def prune(self, max_bytes: int | None = None) -> dict[str, Any]:
        """Evict least-recently-used entries until the cache fits in
        ``max_bytes`` (defaults to the configured budget; 0 empties
        the cache).  Returns ``{"evicted": n, "freed": bytes, ...}``
        and atomically rewrites ``index.json``."""
        budget = self.max_bytes if max_bytes is None else max_bytes
        rows = self.entries()
        total = sum(row["bytes"] for row in rows)
        evicted = 0
        freed = 0
        if budget is not None:
            for row in rows:
                if total <= budget:
                    break
                self._discard(row["digest"])
                total -= row["bytes"]
                freed += row["bytes"]
                evicted += 1
        self._write_index(entries=len(rows) - evicted, total=total)
        if evicted and self.on_evict is not None:
            self.on_evict(evicted)
        return {"evicted": evicted, "freed": freed,
                "entries": len(rows) - evicted, "bytes": total,
                "max_bytes": budget}

    def _write_index(self, entries: int, total: int) -> None:
        """Atomic ``index.json`` refresh (temp file + rename), so a
        concurrent reader never sees a torn summary."""
        index = {"format": CACHE_FORMAT, "entries": entries,
                 "bytes": total, "max_bytes": self.max_bytes}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._atomic_write(
                self.index_path,
                (json.dumps(index, sort_keys=True, indent=2)
                 + "\n").encode())
        except OSError:
            pass

    def _discard(self, digest: str) -> None:
        for path in (self._object_path(digest),
                     self._object_path(digest).with_suffix(".json")):
            try:
                path.unlink()
            except OSError:
                pass

    @staticmethod
    def _atomic_write(path: pathlib.Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


__all__ = ["CACHE_FORMAT", "MAX_BYTES_ENV", "ResultCache",
           "configured_max_bytes", "default_cache_dir"]
