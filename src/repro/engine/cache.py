"""Content-addressed on-disk result cache.

Layout (under ``~/.cache/repro`` by default, or ``REPRO_CACHE_DIR``,
or the ``Session(cache_dir=...)`` override)::

    <root>/objects/<d0d1>/<digest>.pkl    # pickled RunOutcome
    <root>/objects/<d0d1>/<digest>.json   # human-readable manifest

The digest is the :meth:`RunRequest.digest` content hash, so the
cache needs no eviction logic to stay correct: a changed request,
config, fault plan, seed or code salt simply addresses a different
object.  Writes are atomic (temp file + ``os.replace``); unreadable
or corrupt entries are treated as misses and removed.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import tempfile
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.request import RunRequest
    from repro.engine.session import RunOutcome

#: Version tag stored with every cache object; bump on layout changes.
CACHE_FORMAT = 1


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Digest -> RunOutcome store with atomic writes."""

    def __init__(self, root: pathlib.Path | str | None = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()

    def _object_path(self, digest: str) -> pathlib.Path:
        return self.root / "objects" / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    def load(self, digest: str) -> "RunOutcome | None":
        """The stored outcome for ``digest``, or None on miss/corruption."""
        path = self._object_path(digest)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Corrupt or written by an incompatible version: drop it.
            self._discard(digest)
            return None
        if not isinstance(entry, dict) or entry.get("format") != CACHE_FORMAT:
            self._discard(digest)
            return None
        return entry.get("outcome")

    def store(self, digest: str, outcome: "RunOutcome",
              request: "RunRequest") -> None:
        """Persist ``outcome`` under ``digest`` (best-effort, atomic)."""
        path = self._object_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(
                path, pickle.dumps({"format": CACHE_FORMAT,
                                    "outcome": outcome}))
            summary = {
                "digest": digest,
                "format": CACHE_FORMAT,
                "status": outcome.status,
                "cycles": (outcome.result.metrics.total_cycles
                           if outcome.result is not None else None),
                "error": outcome.error_type,
                "request": request.payload(),
            }
            self._atomic_write(
                path.with_suffix(".json"),
                (json.dumps(summary, sort_keys=True, indent=2)
                 + "\n").encode())
        except OSError:
            # A read-only or full cache dir must never fail the run.
            pass

    def _discard(self, digest: str) -> None:
        for path in (self._object_path(digest),
                     self._object_path(digest).with_suffix(".json")):
            try:
                path.unlink()
            except OSError:
                pass

    @staticmethod
    def _atomic_write(path: pathlib.Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


__all__ = ["CACHE_FORMAT", "ResultCache", "default_cache_dir"]
