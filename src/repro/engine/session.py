"""The parallel experiment engine: ``Session`` / ``RunHandle``.

A :class:`Session` is the one front door for running simulations
(``docs/engine.md``).  It takes declarative
:class:`~repro.engine.request.RunRequest` objects (or already-built
:class:`~repro.apps.common.AppBundle` instances), executes them

* in-process for ``jobs=1``, traced runs and non-catalog bundles,
* across a ``ProcessPoolExecutor`` for ``jobs>1`` batches of
  declarative requests (workers rebuild bundles from the catalog, so
  nothing unpicklable ever crosses the process boundary),

and backs completed outcomes with the content-addressed
:class:`~repro.engine.cache.ResultCache`, so a request that has run
before -- in any process, on any earlier day -- is a near-instant
cache hit.  Results are byte-identical regardless of ``jobs`` and of
cache temperature: the engine only ever reorders *scheduling*, never
simulated behaviour.

Failure handling reuses PR 2's machinery: a livelocked or deadlocked
run raises ``SimulationError`` inside the worker with the progress
watchdog's :class:`~repro.core.watchdog.DiagnosticBundle`; the engine
captures it as a typed, cacheable :class:`RunOutcome` rather than
tearing down the batch.  A wall-clock ``timeout`` bounds each
parallel run as a backstop, and ``retries`` re-dispatches runs lost
to worker crashes.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core import SimulationError
from repro.core.config import BoardConfig, MachineConfig
from repro.engine import catalog
from repro.engine.cache import ResultCache
from repro.engine.request import BACKENDS, RunRequest, code_salt
from repro.host.processor import HostError

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.common import AppBundle
    from repro.core.processor import RunResult
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.registry import ProbeRegistry
    from repro.obs.tracer import Tracer

#: Cache statuses a delivered result can carry in its manifest.
CACHE_STATUSES = ("hit", "miss", "uncached")

#: Deterministic simulation failures that are themselves cacheable
#: results; infrastructure failures (timeouts, crashes) never are.
#: ``BackendUnsupported`` is deliberately absent: a vector-backend
#: refusal is a property of the *selection*, not of the request, and
#: the digest is backend-agnostic -- caching the refusal would serve
#: a failure to an event-backend run of the same request.
_CACHEABLE_ERRORS = ("SimulationError", "InvariantViolation", "HostError")


@dataclass(frozen=True)
class SessionConfig:
    """Engine knobs, consolidated (``docs/api.md``).

    Pass one of these as ``Session(config=...)``; the scattered
    keyword arguments (``jobs=``, ``cache=``, ...) survive as
    deprecated compatibility shims.

    Parameters
    ----------
    backend:
        Simulation backend: ``"event"`` (the per-event reference
        model), ``"vector"`` (the compiled backend,
        :mod:`repro.core.vector`) or ``"auto"`` (vector for fault-free
        untraced runs, event otherwise).  Bit-identical by contract;
        requests may override per call.
    jobs:
        Worker processes for declarative batches (1 = in-process).
    cache / cache_dir:
        Enable the content-addressed result cache, optionally rooted
        somewhere other than ``~/.cache/repro``.
    timeout:
        Wall-clock seconds per parallel run; a run past it is
        reported as a failed ``RunTimeout`` outcome.
    retries:
        Re-dispatch attempts for runs lost to worker crashes.
    preflight:
        Statically verify artifacts (``repro.analysis``) before
        simulating them (applies to ``strict=True`` requests).
    history:
        Append-only ``repro.perf-history/1`` JSONL store path;
        ``None`` disables recording.
    """

    backend: str = "event"
    jobs: int = 1
    cache: bool = True
    cache_dir: Any = None
    timeout: float | None = None
    retries: int = 1
    preflight: bool = False
    history: Any = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, "
                f"got {self.backend!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(
                f"retries must be >= 0, got {self.retries}")


class EngineError(RuntimeError):
    """Engine-level failure (bad request, worker loss, timeout)."""


class RunFailure(EngineError):
    """Raised by :meth:`RunHandle.result` for a failed outcome."""

    def __init__(self, outcome: "RunOutcome") -> None:
        super().__init__(
            f"{outcome.error_type}: {outcome.error_message}")
        self.outcome = outcome


@dataclass
class RunOutcome:
    """What one run produced: a result, or a typed failure."""

    status: str                                # "completed" | "failed"
    result: "RunResult | None" = None
    error_type: str | None = None
    error_message: str | None = None
    #: Watchdog diagnostics (``DiagnosticBundle.as_dict()``) when the
    #: failure carried them.
    diagnostics: dict | None = None
    #: Original exception object for in-process failures; never
    #: pickled or cached, so cross-process failures re-raise as
    #: :class:`RunFailure` instead.
    exception: BaseException | None = field(
        default=None, repr=False, compare=False)

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    def unwrap(self) -> "RunResult":
        if self.completed:
            return self.result
        if self.exception is not None:
            raise self.exception
        raise RunFailure(self)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["exception"] = None      # exceptions don't cross processes
        return state

    @property
    def cacheable(self) -> bool:
        return (self.completed
                or self.error_type in _CACHEABLE_ERRORS)


@dataclass
class SessionStats:
    """Engine counters (exported via :meth:`Session.probes`)."""

    hits: int = 0
    misses: int = 0
    uncached: int = 0
    executed: int = 0
    failed: int = 0
    timeouts: int = 0
    retried: int = 0

    @property
    def runs(self) -> int:
        return self.hits + self.misses + self.uncached

    @property
    def hit_rate(self) -> float:
        keyed = self.hits + self.misses
        return self.hits / keyed if keyed else 0.0

    def as_dict(self) -> dict:
        return {"runs": self.runs, "hits": self.hits,
                "misses": self.misses, "uncached": self.uncached,
                "executed": self.executed, "failed": self.failed,
                "timeouts": self.timeouts, "retried": self.retried,
                "hit_rate": self.hit_rate}

    def describe(self, jobs: int) -> str:
        return (f"[engine] jobs={jobs} runs={self.runs} "
                f"hits={self.hits} misses={self.misses} "
                f"uncached={self.uncached} "
                f"hit_rate={self.hit_rate * 100:.1f}%")


# ----------------------------------------------------------------------
# Execution primitives (module-level: picklable for worker processes).
# ----------------------------------------------------------------------
def _resolve_backend(backend: str, request: RunRequest,
                     traced: bool) -> str:
    """Collapse an ``auto`` selection to the backend that will run.

    ``auto`` picks the vector backend exactly when the run is eligible
    for it -- no fault plan and no tracer attached -- and falls back
    to the event reference model otherwise.  An *explicit*
    ``"vector"`` is never rewritten: an ineligible run then fails with
    a typed :class:`~repro.core.vector.BackendUnsupported` outcome.
    """
    if backend == "vector":
        return "vector"
    if (backend == "auto" and not traced and not request.trace
            and request.faults is None):
        return "vector"
    return "event"


def _simulate(bundle: "AppBundle", request: RunRequest,
              tracer: "Tracer | None" = None,
              backend: str = "event") -> "RunResult":
    """Run ``bundle`` under ``request``'s configuration; raises on
    simulation failure."""
    resolved = _resolve_backend(backend, request, tracer is not None)
    if resolved == "vector":
        from repro.core.vector import VectorProcessor

        processor_cls = VectorProcessor
    else:
        from repro.core.processor import ImagineProcessor

        processor_cls = ImagineProcessor
    processor = processor_cls(
        machine=request.effective_machine(),
        board=request.effective_board(),
        kernels=bundle.kernels,
        tracer=tracer,
        faults=request.fault_plan(),
        strict=request.strict)
    return processor.run(bundle.image)


def _capture(bundle: "AppBundle", request: RunRequest,
             tracer: "Tracer | None" = None,
             preflight: bool = False,
             backend: str = "event") -> RunOutcome:
    """Run and fold simulation failures into a typed outcome."""
    if preflight and request.strict:
        # Opt-in strict-mode gate: statically verify the artifact
        # before spending any simulated cycles on it.  A failed
        # pre-flight is a typed, *uncacheable* outcome ("AnalysisError"
        # is not in _CACHEABLE_ERRORS), so tightening a rule later is
        # never masked by a stale cached verdict.
        from repro.analysis.findings import AnalysisError
        from repro.analysis.lint import preflight_image

        try:
            preflight_image(bundle.image, request.effective_machine())
        except AnalysisError as error:
            return RunOutcome(
                status="failed",
                error_type="AnalysisError",
                error_message=str(error),
                exception=error)
    try:
        result = _simulate(bundle, request, tracer=tracer,
                           backend=backend)
    except (SimulationError, HostError) as error:
        diagnostics = getattr(error, "diagnostics", None)
        return RunOutcome(
            status="failed",
            error_type=type(error).__name__,
            error_message=str(error),
            diagnostics=(diagnostics.as_dict()
                         if diagnostics is not None else None),
            exception=error)
    return RunOutcome(status="completed", result=result)


def _execute_request(request: RunRequest,
                     preflight: bool = False,
                     backend: str = "event") -> RunOutcome:
    """Worker entry point: rebuild the bundle from the catalog, run."""
    bundle = catalog.build_app(request.app, **dict(request.sizes))
    return _capture(bundle, request, preflight=preflight,
                    backend=backend)


def _stamp(outcome: RunOutcome, digest: str | None,
           status: str) -> RunOutcome:
    """Mark the outcome's manifest with its provenance (digest +
    hit/miss/uncached), making every downstream report self-describing."""
    result = outcome.result
    if result is not None and result.manifest is not None:
        result.manifest = dataclasses.replace(
            result.manifest, request_digest=digest, cache=status)
    return outcome


def _hit_copy(outcome: RunOutcome, digest: str | None) -> RunOutcome:
    """A shallow copy of a memoized outcome, restamped as a hit, so
    the original delivery's manifest is left untouched."""
    result = outcome.result
    if result is not None and result.manifest is not None:
        result = dataclasses.replace(
            result,
            manifest=dataclasses.replace(
                result.manifest, request_digest=digest, cache="hit"))
    return dataclasses.replace(outcome, result=result)


# ----------------------------------------------------------------------
# Handles.
# ----------------------------------------------------------------------
class RunHandle:
    """A submitted run: resolves to a :class:`RunOutcome`.

    ``result()`` unwraps to the :class:`RunResult` (raising the
    original simulation error in-process, or :class:`RunFailure` for
    worker-side failures); ``outcome()`` never raises for simulation
    failures -- a typed failure is a campaign datum.
    """

    def __init__(self, session: "Session", request: RunRequest,
                 digest: str | None) -> None:
        self._session = session
        self.request = request
        self.digest = digest
        #: Backend selection this run will execute under if it is not
        #: served from the cache ("auto" collapses at execution time).
        self.backend: str = "event"
        self.cache_status: str | None = None
        self.tracer: "Tracer | None" = None
        self._outcome: RunOutcome | None = None
        self._future: concurrent.futures.Future | None = None
        #: Another handle for the same digest this one memoizes from.
        self._shared: "RunHandle | None" = None
        self._attempts = 0

    def done(self) -> bool:
        return self._outcome is not None or (
            self._shared is not None and self._shared.done()) or (
            self._future is not None and self._future.done())

    def outcome(self) -> RunOutcome:
        if self._outcome is None:
            if self._shared is not None:
                self._outcome = _hit_copy(self._shared.outcome(),
                                          self.digest)
                self._session._record_history(self, self._outcome)
            else:
                self._session._finalize(self)
        return self._outcome

    def result(self) -> "RunResult":
        return self.outcome().unwrap()


#: Sentinel distinguishing "not passed" from an explicit ``None``
#: for the deprecated Session keyword shims.
_UNSET: Any = object()


class Session:
    """The run API: submit requests, shard them, cache the results.

    Engine knobs live in one :class:`SessionConfig`
    (``Session(config=SessionConfig(jobs=4, backend="auto"))``); the
    simulated-world parameters stay as keywords:

    Parameters
    ----------
    config:
        Engine knobs (backend/jobs/cache/timeout/...); defaults to
        ``SessionConfig()``.
    backend:
        Convenience override for ``config.backend`` -- the headline
        selector (``Session(backend="vector")``); ``"event"``,
        ``"vector"`` or ``"auto"``.
    machine / board:
        Defaults applied to requests that leave theirs ``None``.
    salt:
        Cache-salt override (defaults to the source-tree code salt).

    The pre-``SessionConfig`` keywords (``jobs=``, ``cache=``,
    ``cache_dir=``, ``timeout=``, ``retries=``, ``preflight=``,
    ``history=``) still work but emit a :class:`DeprecationWarning`;
    see ``docs/api.md`` for the migration table.
    """

    def __init__(self, config: "SessionConfig | int | None" = None,
                 *,
                 backend: str | None = None,
                 machine: MachineConfig | None = None,
                 board: BoardConfig | None = None,
                 salt: str | None = None,
                 metrics: "MetricsRegistry | None" = None,
                 jobs: int = _UNSET, cache: bool = _UNSET,
                 cache_dir=_UNSET, timeout: float | None = _UNSET,
                 retries: int = _UNSET, preflight: bool = _UNSET,
                 history=_UNSET) -> None:
        legacy = {name: value for name, value in (
            ("jobs", jobs), ("cache", cache), ("cache_dir", cache_dir),
            ("timeout", timeout), ("retries", retries),
            ("preflight", preflight), ("history", history))
            if value is not _UNSET}
        if isinstance(config, int):
            # Pre-SessionConfig signature: jobs was the first
            # positional parameter.
            legacy.setdefault("jobs", config)
            config = None
        if legacy:
            warnings.warn(
                f"Session({', '.join(sorted(legacy))}=...) keyword(s) "
                f"are deprecated; pass "
                f"Session(config=SessionConfig(...)) instead "
                f"(docs/api.md)",
                DeprecationWarning, stacklevel=2)
            config = dataclasses.replace(config or SessionConfig(),
                                         **legacy)
        elif config is None:
            config = SessionConfig()
        if backend is not None:
            config = dataclasses.replace(config, backend=backend)
        self.config = config
        self.jobs = config.jobs
        self.backend = config.backend
        self.preflight = config.preflight
        self.machine = machine
        self.board = board
        self.timeout = config.timeout
        self.retries = config.retries
        self.history = config.history
        self.stats = SessionStats()
        self._salt = salt if salt is not None else code_salt()
        self._init_metrics(metrics)
        self._cache = (ResultCache(config.cache_dir,
                                   on_evict=self._m_evictions.inc)
                       if config.cache else None)
        self._inflight: dict[str, RunHandle] = {}
        self._history_recorded: set[str] = set()
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None
        self._closed = False

    def _init_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Register this session's live-metric families.

        A shared registry (the experiment service passes its own into
        every worker-thread session) aggregates naturally:
        registration is get-or-create, so N sessions increment the
        same counter children.  Units come from the
        ``COUNTER_UNITS`` vocabulary at registration time.
        """
        from repro.obs.metrics import MetricsRegistry

        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry())
        m = self.metrics
        self._m_cache = m.counter(
            "engine_cache_requests_total",
            "cache lookups by result", labels=("result",))
        self._m_evictions = m.counter(
            "engine_cache_evictions_total",
            "cache entries evicted by the LRU pruner")
        self._m_dedup = m.counter(
            "engine_inflight_dedup_total",
            "submissions coalesced onto an in-flight run")
        self._m_timeouts = m.counter(
            "engine_worker_timeouts_total",
            "runs abandoned at the wall-clock timeout")
        self._m_retries = m.counter(
            "engine_worker_retries_total",
            "pool re-dispatches after a worker crash")
        self._m_backend = m.counter(
            "engine_backend_selected_total",
            "backend resolution per submission", labels=("backend",))
        self._m_executed = m.counter(
            "engine_runs_executed_total",
            "simulations actually executed")
        self._m_failed = m.counter(
            "engine_runs_failed_total",
            "typed simulation failures captured as outcomes")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._closed = True

    def _pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._closed:
            raise EngineError("session is closed")
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs)
        return self._executor

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(self, request: RunRequest,
               prebuilt: "AppBundle | None" = None,
               tracer: "Tracer | None" = None,
               backend: str | None = None) -> RunHandle:
        """Schedule one declarative request; returns immediately when
        a pool is available, else executes in-process.

        Backend precedence: the ``backend`` argument, else
        ``request.backend``, else the session's configured backend.
        The choice never enters the request digest, so it cannot
        change which cache entry the run keys to.
        """
        if self._closed:
            raise EngineError("session is closed")
        catalog.canonical_name(request.app)   # fail fast on bad names
        request = request.resolved(self.machine, self.board)
        effective_backend = (backend if backend is not None
                             else request.backend
                             if request.backend is not None
                             else self.backend)
        self._m_backend.labels(backend=effective_backend).inc()

        if request.trace or tracer is not None:
            # Traced runs stay in-process (tracers do not cross
            # process boundaries) and bypass the cache.
            from repro.obs.tracer import Tracer

            handle = RunHandle(self, request, digest=None)
            handle.backend = effective_backend
            handle.tracer = tracer if tracer is not None else Tracer()
            bundle = prebuilt if prebuilt is not None else \
                catalog.build_app(request.app, **dict(request.sizes))
            outcome = _capture(bundle, request, tracer=handle.tracer,
                               preflight=self.preflight,
                               backend=effective_backend)
            self.stats.uncached += 1
            self.stats.executed += 1
            self._m_cache.labels(result="uncached").inc()
            self._m_executed.inc()
            if not outcome.completed:
                self.stats.failed += 1
                self._m_failed.inc()
            handle._outcome = _stamp(outcome, None, "uncached")
            handle.cache_status = "uncached"
            return handle

        digest = request.digest(salt=self._salt)
        if self._cache is not None:
            shared = self._inflight.get(digest)
            if shared is not None:
                self.stats.hits += 1
                self._m_cache.labels(result="hit").inc()
                self._m_dedup.inc()
                handle = RunHandle(self, request, digest)
                handle.backend = effective_backend
                handle.cache_status = "hit"
                handle._shared = shared
                return handle
        handle = RunHandle(self, request, digest)
        handle.backend = effective_backend

        if self._cache is not None:
            cached = self._cache.load(digest)
            if cached is not None:
                self.stats.hits += 1
                self._m_cache.labels(result="hit").inc()
                handle._outcome = _stamp(cached, digest, "hit")
                handle.cache_status = "hit"
                self._inflight[digest] = handle
                self._record_history(handle, handle._outcome)
                return handle
            self._inflight[digest] = handle

        if self.jobs > 1:
            handle._future = self._pool().submit(_execute_request,
                                                 request,
                                                 self.preflight,
                                                 effective_backend)
            handle._attempts = 1
        else:
            bundle = prebuilt if prebuilt is not None else \
                catalog.build_app(request.app, **dict(request.sizes))
            self._complete(handle, _capture(
                bundle, request, preflight=self.preflight,
                backend=effective_backend))
        return handle

    def submit_bundle(self, bundle: "AppBundle", *,
                      board: BoardConfig | None = None,
                      machine: MachineConfig | None = None,
                      faults=None, seed: int | None = None,
                      strict: bool = False,
                      tracer: "Tracer | None" = None,
                      backend: str | None = None) -> RunHandle:
        """Schedule a run of an already-built bundle.

        Catalog-built bundles (see :func:`repro.engine.catalog.build_app`)
        are converted to declarative requests -- cacheable and
        pool-shardable.  Hand-built bundles run in-process, uncached,
        against the exact object given.
        """
        source = getattr(bundle, "source", None)
        if source is not None and tracer is None:
            name, sizes = source
            request = RunRequest.for_app(
                name, sizes=dict(sizes), machine=machine, board=board,
                faults=faults, seed=seed, strict=strict,
                backend=backend)
            return self.submit(request, prebuilt=bundle)

        # Hand-built bundle: the request only carries configuration
        # (its app field names the bundle, it is never rebuilt).
        request = RunRequest.for_app(
            bundle.name, machine=machine, board=board, faults=faults,
            seed=seed, strict=strict, backend=backend)
        request = request.resolved(self.machine, self.board)
        effective_backend = (backend if backend is not None
                             else self.backend)
        handle = RunHandle(self, request, digest=None)
        handle.backend = effective_backend
        handle.tracer = tracer
        self._m_backend.labels(backend=effective_backend).inc()
        outcome = _capture(bundle, request, tracer=tracer,
                           preflight=self.preflight,
                           backend=effective_backend)
        self.stats.uncached += 1
        self.stats.executed += 1
        self._m_cache.labels(result="uncached").inc()
        self._m_executed.inc()
        if not outcome.completed:
            self.stats.failed += 1
            self._m_failed.inc()
        handle._outcome = _stamp(outcome, None, "uncached")
        handle.cache_status = "uncached"
        return handle

    # ------------------------------------------------------------------
    # Blocking conveniences.
    # ------------------------------------------------------------------
    def run(self, request: RunRequest,
            tracer: "Tracer | None" = None,
            backend: str | None = None) -> "RunResult":
        """Submit one request and wait for its result."""
        return self.submit(request, tracer=tracer,
                           backend=backend).result()

    def run_bundle(self, bundle: "AppBundle", *,
                   board: BoardConfig | None = None,
                   machine: MachineConfig | None = None,
                   faults=None, seed: int | None = None,
                   strict: bool = False,
                   tracer: "Tracer | None" = None,
                   backend: str | None = None) -> "RunResult":
        return self.submit_bundle(
            bundle, board=board, machine=machine, faults=faults,
            seed=seed, strict=strict, tracer=tracer,
            backend=backend).result()

    def run_batch(self, requests: Iterable[RunRequest]
                  ) -> "list[RunResult]":
        """Run a batch sharded across the pool; results in order."""
        handles = [self.submit(request) for request in requests]
        return [handle.result() for handle in handles]

    def outcomes(self, requests: Iterable[RunRequest]
                 ) -> list[RunOutcome]:
        """Like :meth:`run_batch` but failures stay data."""
        handles = [self.submit(request) for request in requests]
        return [handle.outcome() for handle in handles]

    # ------------------------------------------------------------------
    # Completion plumbing.
    # ------------------------------------------------------------------
    def _finalize(self, handle: RunHandle) -> None:
        """Collect a pool future (with timeout/retry) into the handle."""
        if handle._outcome is not None:
            return
        if handle._future is None:
            raise EngineError("handle has neither outcome nor future")
        while True:
            try:
                outcome = handle._future.result(timeout=self.timeout)
                break
            except concurrent.futures.TimeoutError:
                self.stats.timeouts += 1
                self._m_timeouts.inc()
                outcome = RunOutcome(
                    status="failed", error_type="RunTimeout",
                    error_message=(
                        f"{handle.request.app}: no result within "
                        f"{self.timeout}s wall-clock"))
                break
            except concurrent.futures.process.BrokenProcessPool:
                if handle._attempts > self.retries:
                    outcome = RunOutcome(
                        status="failed", error_type="WorkerCrashed",
                        error_message=(
                            f"{handle.request.app}: worker process "
                            f"died ({handle._attempts} attempt(s))"))
                    break
                # Recreate the pool and re-dispatch.
                self.stats.retried += 1
                self._m_retries.inc()
                handle._attempts += 1
                if self._executor is not None:
                    self._executor.shutdown(wait=False,
                                            cancel_futures=True)
                    self._executor = None
                handle._future = self._pool().submit(
                    _execute_request, handle.request, self.preflight,
                    handle.backend)
        self._complete(handle, outcome)

    def _complete(self, handle: RunHandle, outcome: RunOutcome) -> None:
        self.stats.executed += 1
        self._m_executed.inc()
        if not outcome.completed:
            self.stats.failed += 1
            self._m_failed.inc()
        if handle.digest is not None and self._cache is not None:
            self.stats.misses += 1
            self._m_cache.labels(result="miss").inc()
            handle.cache_status = "miss"
            outcome = _stamp(outcome, handle.digest, "miss")
            if outcome.cacheable:
                self._cache.store(handle.digest, outcome,
                                  handle.request)
        else:
            if handle.digest is not None:
                # Declarative but cache disabled.
                self.stats.uncached += 1
            self._m_cache.labels(result="uncached").inc()
            handle.cache_status = "uncached"
            outcome = _stamp(outcome, handle.digest, "uncached")
        handle._outcome = outcome
        if (handle.digest is not None and not outcome.cacheable
                and self._inflight.get(handle.digest) is handle):
            # Non-cacheable failures (worker crashes, backend
            # refusals) must not coalesce onto later submissions of
            # the same digest: a vector BackendUnsupported would
            # otherwise answer a subsequent event-backend submit.
            del self._inflight[handle.digest]
        self._record_history(handle, outcome)

    def _record_history(self, handle: RunHandle,
                        outcome: RunOutcome) -> None:
        """Append one perf-history line for a delivered digest-keyed
        run (no-op without a history path, a digest, or a completed
        result; each digest is recorded at most once per store)."""
        if (self.history is None or handle.digest is None
                or not outcome.completed or outcome.result is None
                or handle.digest in self._history_recorded):
            return
        self._history_recorded.add(handle.digest)
        from repro.obs.history import append_history, history_entry

        append_history(self.history, [history_entry(
            outcome.result, engine=self.stats.as_dict())])

    # ------------------------------------------------------------------
    # Profiling.
    # ------------------------------------------------------------------
    def diff(self, request_a: RunRequest, request_b: RunRequest,
             threshold: float | None = None) -> dict:
        """Run (or fetch) two requests and diff their cycle profiles.

        Returns a ``repro.profile-diff/1`` document (see
        :func:`repro.obs.diff.diff_profiles`); both runs go through
        the normal submit path, so warm-cache diffs are near-instant.
        """
        from repro.obs.diff import DEFAULT_THRESHOLD, diff_profiles
        from repro.obs.profile import build_profile

        handle_a = self.submit(request_a)
        handle_b = self.submit(request_b)
        return diff_profiles(
            build_profile(handle_a.result()),
            build_profile(handle_b.result()),
            threshold=(DEFAULT_THRESHOLD if threshold is None
                       else threshold))

    def critpath(self, request: RunRequest) -> dict:
        """Run (or fetch) one request and extract its critical path.

        Returns a ``repro.critpath-report/1`` document (see
        :func:`repro.obs.critpath.build_critpath`): the binding
        dependency chain through the recorded event DAG, every
        critical cycle attributed to a profile-vocabulary leaf, plus
        per-resource slack and the conservation cross-checks.
        """
        from repro.obs.critpath import build_critpath

        return build_critpath(self.run(request))

    def whatif(self, request: RunRequest, scales: dict[str, float],
               validate: bool = False) -> dict:
        """Project the speedup of scaling resources, optionally
        validating against a real rerun.

        ``scales`` maps resource names (see
        :data:`repro.obs.critpath.KNOWN_SCALES`) to factors, e.g.
        ``{"dram": 2.0}``.  The recorded event DAG is replayed with
        scaled edge weights to *predict* the new cycle count; with
        ``validate=True`` the simulator is rerun with the
        corresponding machine/board change
        (:func:`repro.obs.critpath.whatif_configs`) and the report
        gains ``actual_cycles`` / ``prediction_error``.  Returns a
        ``repro.whatif-report/1`` document.
        """
        from repro.obs.critpath import build_whatif, whatif_configs

        request = request.resolved(self.machine, self.board)
        baseline = self.run(request)
        rerun = None
        if validate:
            machine, board = whatif_configs(
                request.effective_machine(),
                request.effective_board(), scales)
            rerun = self.run(dataclasses.replace(
                request, machine=machine, board=board))
        return build_whatif(baseline, scales, validated=rerun)

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def probes(self) -> "ProbeRegistry":
        """Engine counters as a PR 1 probe registry."""
        from repro.obs.registry import ProbeRegistry

        registry = ProbeRegistry()
        stats = self.stats
        registry.add("engine.jobs", self.jobs, "processes",
                     "worker processes available to this session")
        registry.add("engine.runs", stats.runs, "runs",
                     "runs delivered by this session")
        registry.add("engine.cache.hits", stats.hits, "runs",
                     "runs served from the content-addressed cache")
        registry.add("engine.cache.misses", stats.misses, "runs",
                     "cache-keyed runs that had to execute")
        registry.add("engine.cache.hit_rate", stats.hit_rate,
                     "fraction", "hits / (hits + misses)")
        registry.add("engine.runs.uncached", stats.uncached, "runs",
                     "runs executed outside the cache")
        registry.add("engine.runs.executed", stats.executed, "runs",
                     "simulations actually executed")
        registry.add("engine.runs.failed", stats.failed, "runs",
                     "typed simulation failures captured as outcomes")
        registry.add("engine.runs.timeouts", stats.timeouts, "runs",
                     "runs abandoned at the wall-clock timeout")
        # Live metric families (engine_* counters, plus whatever else
        # shares this session's registry) ride along, so one probe
        # snapshot carries both vocabularies.
        from repro.obs.metrics import probes_from_metrics

        probes_from_metrics(self.metrics, add=registry.add)
        return registry


# ----------------------------------------------------------------------
# Default session (one-off convenience runs without a context
# manager; previously backed the removed ``run_app`` shim).
# ----------------------------------------------------------------------
_default_session: Session | None = None


def get_default_session() -> Session:
    """In-process, uncached session for one-off convenience runs."""
    global _default_session
    if _default_session is None:
        _default_session = Session(config=SessionConfig(cache=False))
    return _default_session


__all__ = [
    "CACHE_STATUSES",
    "EngineError",
    "RunFailure",
    "RunHandle",
    "RunOutcome",
    "Session",
    "SessionConfig",
    "SessionStats",
    "get_default_session",
]
