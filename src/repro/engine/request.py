"""Declarative run requests and their content digests.

A :class:`RunRequest` describes one simulation completely: which
catalog application to build (and at what sizes), the machine and
board configurations, an optional fault plan (stored as canonical
JSON), a seed, and the strict/trace execution flags.  Because the
description is declarative -- names and dataclasses, no live objects
-- a request can cross a process boundary, be rebuilt by a worker,
and be hashed into a stable content digest that keys the on-disk
result cache.

Digest rules (see ``docs/engine.md``):

* every field that can change the simulated outcome is hashed:
  app + sizes, the *resolved* machine and board configuration (a
  ``None`` config hashes identically to the explicit default), the
  fault-plan document, the seed and the strict flag;
* the ``trace`` flag is NOT hashed -- attaching a tracer must not
  change simulated behaviour (PR 1's observer-effect guarantee), and
  traced runs bypass the cache anyway;
* the ``backend`` selector is NOT hashed either -- backends are
  bit-identical by contract (``repro verify-backend`` enforces it),
  so an event-warmed cache serves vector requests and vice versa;
  which backend actually executed a run is provenance and lives in
  the manifest, not the digest;
* a *code salt* is mixed in: a hash over the package's own source
  tree (override with ``REPRO_CACHE_SALT``), so editing the simulator
  invalidates every cached result instead of silently replaying stale
  ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.config import BoardConfig, MachineConfig
from repro.faults.models import FaultPlan

#: Bump when the digest payload layout itself changes.
DIGEST_VERSION = 1

#: Valid values for the ``backend`` selector (``None`` = inherit the
#: session's configured backend).
BACKENDS = ("auto", "event", "vector")

_code_salt_cache: str | None = None


def code_salt() -> str:
    """Hash of the package's own source files (the code-version salt).

    ``REPRO_CACHE_SALT`` overrides it (useful for tests and for
    pinning a salt across machines).
    """
    override = os.environ.get("REPRO_CACHE_SALT")
    if override:
        return override
    global _code_salt_cache
    if _code_salt_cache is None:
        import repro

        root = pathlib.Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_salt_cache = f"{repro.__version__}:{digest.hexdigest()[:16]}"
    return _code_salt_cache


def _canonical_faults(faults) -> str | None:
    """Normalize a plan (FaultPlan | dict | JSON text) to canonical JSON."""
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        document = faults.as_dict()
    elif isinstance(faults, str):
        document = FaultPlan.from_json(faults).as_dict()
    elif isinstance(faults, Mapping):
        document = FaultPlan.from_dict(dict(faults)).as_dict()
    else:
        raise TypeError(
            f"faults must be a FaultPlan, mapping or JSON text, got "
            f"{type(faults).__name__}")
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunRequest:
    """One simulation, described declaratively.

    ``app`` is a catalog name (``depth``/``mpeg``/``qrd``/``rtsl``);
    ``sizes`` are the app build overrides as a sorted tuple of pairs.
    ``machine``/``board`` default to :class:`MachineConfig()` /
    :class:`BoardConfig.hardware()` when left ``None``.
    """

    app: str
    sizes: tuple[tuple[str, Any], ...] = ()
    machine: MachineConfig | None = None
    board: BoardConfig | None = None
    #: Canonical JSON of the fault-plan document, or None.
    faults: str | None = None
    seed: int | None = None
    strict: bool = False
    trace: bool = False
    #: Simulation backend override: ``"event"``, ``"vector"``,
    #: ``"auto"`` or ``None`` (inherit the session's backend).
    #: Excluded from :meth:`payload` -- see the module docstring.
    backend: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "app", self.app.lower())
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} or None, "
                f"got {self.backend!r}")
        if isinstance(self.sizes, Mapping):
            object.__setattr__(
                self, "sizes", tuple(sorted(self.sizes.items())))
        else:
            object.__setattr__(
                self, "sizes", tuple(sorted(tuple(self.sizes))))
        if self.faults is not None and not isinstance(self.faults, str):
            object.__setattr__(
                self, "faults", _canonical_faults(self.faults))

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def for_app(cls, name: str, *, sizes: Mapping[str, Any] | None = None,
                machine: MachineConfig | None = None,
                board: BoardConfig | None = None,
                faults=None, seed: int | None = None,
                strict: bool = False, trace: bool = False,
                backend: str | None = None) -> "RunRequest":
        """Build a request, accepting a FaultPlan/dict/JSON for faults."""
        return cls(app=name, sizes=tuple(sorted((sizes or {}).items())),
                   machine=machine, board=board,
                   faults=_canonical_faults(faults), seed=seed,
                   strict=strict, trace=trace, backend=backend)

    def resolved(self, machine: MachineConfig | None = None,
                 board: BoardConfig | None = None) -> "RunRequest":
        """Fill in session-level defaults for unset configs."""
        if (self.machine is not None or machine is None) and \
                (self.board is not None or board is None):
            return self
        return dataclasses.replace(
            self,
            machine=self.machine if self.machine is not None else machine,
            board=self.board if self.board is not None else board)

    # ------------------------------------------------------------------
    # Execution-side accessors.
    # ------------------------------------------------------------------
    def fault_plan(self) -> FaultPlan | None:
        """The fault plan to inject, with ``seed`` applied if set."""
        if self.faults is None:
            return None
        plan = FaultPlan.from_json(self.faults)
        if self.seed is not None:
            plan = plan.with_seed(self.seed)
        return plan

    def effective_machine(self) -> MachineConfig:
        return self.machine if self.machine is not None else MachineConfig()

    def effective_board(self) -> BoardConfig:
        return self.board if self.board is not None else BoardConfig.hardware()

    # ------------------------------------------------------------------
    # Digest.
    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """The JSON-stable dict that the digest is computed over.

        ``trace`` and ``backend`` are deliberately absent: neither may
        change simulated results (observer-effect guarantee; backend
        bit-identity contract), so both backends share one digest and
        one cache entry per request.
        """
        return {
            "v": DIGEST_VERSION,
            "app": self.app,
            "sizes": {str(k): v for k, v in self.sizes},
            "machine": dataclasses.asdict(self.effective_machine()),
            "board": dataclasses.asdict(self.effective_board()),
            "faults": (json.loads(self.faults)
                       if self.faults is not None else None),
            "seed": self.seed,
            "strict": self.strict,
        }

    def digest(self, salt: str | None = None) -> str:
        """Stable content digest of this request (hex sha256)."""
        body = json.dumps(self.payload(), sort_keys=True,
                          separators=(",", ":"))
        material = f"{salt if salt is not None else code_salt()}\n{body}"
        return hashlib.sha256(material.encode()).hexdigest()


__all__ = ["BACKENDS", "DIGEST_VERSION", "RunRequest", "code_salt"]
