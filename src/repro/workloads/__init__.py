"""Synthetic workloads: Table-1 micro-benchmarks and length sweeps."""

from repro.workloads.microbench import (
    MicrobenchResult,
    run_all_microbenchmarks,
)
from repro.workloads.streamlen import (
    kernel_length_sweep,
    memory_length_sweep,
)

__all__ = [
    "MicrobenchResult",
    "run_all_microbenchmarks",
    "kernel_length_sweep",
    "memory_length_sweep",
]
