"""Stream-length effect micro-benchmarks (Figures 7-10).

Two families:

* :func:`kernel_length_sweep` -- a synthetic kernel whose main loop
  sustains 4.8 GOPS (three adder ops per cycle) is issued
  back-to-back from the host while stream length, main-loop length
  (Fig. 7) and prologue length (Fig. 8) vary.  Short streams spend
  proportionally more time in the prologue, and below ~64 elements
  the host interface cannot even deliver the five stream
  instructions per invocation fast enough.
* :func:`memory_length_sweep` -- stream loads of the paper's six
  access patterns with one AG (Fig. 9, loads serialized) or two
  (Fig. 10, loads concurrent), bandwidth vs. stream length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import BoardConfig, ImagineProcessor, MachineConfig
from repro.isa.kernel_ir import KernelBuilder
from repro.isa.stream_ops import StreamInstruction, StreamOpType
from repro.isa.vliw import CompiledKernel
from repro.memsys.patterns import AccessPattern, indexed, strided, unit_stride
from repro.streamc.program import KernelSpec, StreamProgram


def synthetic_kernel(name: str, main_loop_cycles: int,
                     prologue_cycles: int) -> KernelSpec:
    """A kernel with a prescribed II and prologue.

    The main loop issues three adder ops per cycle (4.8 GOPS across
    the machine); the prologue/epilogue lengths are set directly, as
    if hand-scheduled, which is exactly what the paper's synthetic
    micro-benchmark kernels were.
    """
    builder = KernelBuilder(name, elements_per_iteration=1)
    x = builder.stream_input("x")
    c = builder.param("c")
    last = x
    for i in range(3 * main_loop_cycles):
        last = builder.op("iadd", last if i % 7 == 0 else x, c,
                          name=f"op{i}")
    builder.stream_output("out", last)
    graph = builder.build()
    compiled = CompiledKernel(
        name=name,
        graph=graph,
        ii=main_loop_cycles,
        stages=1,
        schedule=[],
        prologue_cycles=prologue_cycles,
        epilogue_cycles=main_loop_cycles,
        outer_overhead_cycles=8,
        microcode_words=2 * main_loop_cycles + 16,
        regs_used={},
        lrf_reads_per_iteration=6 * main_loop_cycles,
        lrf_writes_per_iteration=3 * main_loop_cycles,
    )
    spec = KernelSpec(name, graph, lambda ins, p: [ins[0].copy()])
    spec._compiled = compiled
    return spec


@dataclass(frozen=True)
class KernelSweepPoint:
    main_loop_cycles: int
    prologue_cycles: int
    stream_words: int
    gops: float


def kernel_length_sweep(main_loop_cycles: int, prologue_cycles: int,
                        stream_lengths: list[int],
                        invocations: int = 32,
                        machine: MachineConfig | None = None,
                        board: BoardConfig | None = None
                        ) -> list[KernelSweepPoint]:
    """Average kernel GOPS vs. stream length for one configuration."""
    machine = machine or MachineConfig()
    board = board or BoardConfig.hardware()
    spec = synthetic_kernel(
        f"synth_m{main_loop_cycles}_p{prologue_cycles}",
        main_loop_cycles, prologue_cycles)
    points = []
    for length in stream_lengths:
        program = StreamProgram(f"sweep{length}", machine=machine)
        data = program.array("data", np.zeros(length))
        stream = program.load(data)
        for i in range(invocations):
            # Four scalar parameters per call: with the kernel itself,
            # five stream instructions per invocation, as the paper's
            # dev board required.
            program.kernel(spec, [stream],
                           params={"c": float(i), "c2": i, "c3": -i,
                                   "c4": i + 1})
        image = program.build()
        processor = ImagineProcessor(machine=machine, board=board,
                                     kernels=image.kernels)
        result = processor.run(image)
        points.append(KernelSweepPoint(
            main_loop_cycles, prologue_cycles, length,
            result.metrics.gops))
    return points


def ideal_kernel_gops(machine: MachineConfig | None = None) -> float:
    """The Fig. 7/8 "ideal BW" asymptote: all time in the main loop."""
    machine = machine or MachineConfig()
    return 3 * machine.num_clusters * machine.clock_hz / 1e9


# ----------------------------------------------------------------------
# Memory sweeps.
# ----------------------------------------------------------------------

#: The paper's six access patterns, as pattern factories over length.
MEMORY_PATTERNS: dict[str, callable] = {
    "record 1, stride 1": lambda n, s: unit_stride(n),
    "record 1, stride 2": lambda n, s: strided(n, 2),
    "record 4, stride 12": lambda n, s: strided(n, 12, 4),
    "idx range 16": lambda n, s: indexed(n, 16, seed=s),
    "idx range 2K": lambda n, s: indexed(n, 2048, seed=s),
    "idx range 4M": lambda n, s: indexed(n, 4 * 1024 * 1024, seed=s),
}


@dataclass(frozen=True)
class MemorySweepPoint:
    pattern: str
    stream_words: int
    gbytes_per_sec: float


def memory_length_sweep(stream_lengths: list[int], address_generators: int,
                        loads_per_point: int = 12,
                        machine: MachineConfig | None = None,
                        board: BoardConfig | None = None
                        ) -> list[MemorySweepPoint]:
    """Figures 9 (one AG) and 10 (two AGs)."""
    if address_generators not in (1, 2):
        raise ValueError("Imagine has two address generators")
    machine = machine or MachineConfig()
    board = board or BoardConfig.hardware()
    points = []
    for name, factory in MEMORY_PATTERNS.items():
        for length in stream_lengths:
            instructions = []
            previous = None
            for i in range(loads_per_point):
                # Descriptor writes model the paper's per-load host
                # instruction cost.
                sdr = StreamInstruction(StreamOpType.SDR_WRITE, sdr=i % 32,
                                        index=len(instructions))
                instructions.append(sdr)
                mar = StreamInstruction(StreamOpType.MAR_WRITE, mar=i % 8,
                                        index=len(instructions))
                instructions.append(mar)
                deps = [sdr.index, mar.index]
                if address_generators == 1 and previous is not None:
                    deps.append(previous)
                load = StreamInstruction(
                    StreamOpType.MEM_LOAD, deps=deps,
                    pattern=factory(length, i), words=length,
                    index=len(instructions), tag=name)
                instructions.append(load)
                previous = load.index
            processor = ImagineProcessor(machine=machine, board=board)
            result = processor.run(instructions, name=f"mem_{length}")
            points.append(MemorySweepPoint(
                name, length, result.metrics.mem_gbytes))
    return points


def host_interface_bandwidth_limit(
        length_words: int, machine: MachineConfig | None = None,
        board: BoardConfig | None = None) -> float:
    """The Fig. 9/10 "HI limit" line: three instructions per load."""
    machine = machine or MachineConfig()
    board = board or BoardConfig.hardware()
    loads_per_second = board.host_mips * 1e6 / 3.0
    return (loads_per_second * length_words * machine.word_bytes
            / 1e9)
