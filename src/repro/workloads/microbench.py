"""Table-1 micro-benchmarks: peak performance of each component.

Six tests, one per row of Table 1:

* ``cluster_ops``    -- packed 8/16-bit arithmetic saturating all FPUs
  (plus the divide/square-root unit every 16 cycles);
* ``cluster_flops``  -- float adds/multiplies saturating the FPUs;
* ``inter_cluster``  -- the bitonic 32-sort, one COMM op per cluster
  per cycle;
* ``srf_bandwidth``  -- stream copy keeping both SRF ports busy;
* ``memory_bandwidth`` -- two concurrent indexed loads over a small
  range (captured by the controller cache, so the on-chip path is the
  limit);
* ``host_interface`` -- back-to-back register-write stream
  instructions.

Each runs as a real stream program on the full simulator, so achieved
numbers include prologue, stream-setup and host effects, exactly like
the lab measurements (e.g. 7.96 of 8.13 GFLOPS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import BoardConfig, ImagineProcessor, MachineConfig
from repro.isa.kernel_ir import KernelBuilder
from repro.kernels.copy import SRFCOPY
from repro.kernels.sort import SORT32
from repro.memsys.patterns import indexed
from repro.streamc.program import KernelSpec, StreamProgram


@dataclass(frozen=True)
class MicrobenchResult:
    """One Table-1 row."""

    component: str
    achieved: float
    theoretical: float
    unit: str
    power_watts: float

    @property
    def efficiency(self) -> float:
        if self.theoretical <= 0:
            return 0.0
        return self.achieved / self.theoretical


def _identity_apply(inputs, params):
    return [inputs[0].copy()]


def _peak_kernel(name: str, float_ops: bool) -> KernelSpec:
    """A 16-cycle-II kernel saturating every FPU slot.

    48 adder ops + 32 multiplier ops + 1 DSQ op per 16 cycles keeps
    3 adders + 2 multipliers fully busy and the unpipelined DSQ unit
    issuing once per 16 cycles -- the theoretical peak mix.
    """
    builder = KernelBuilder(name, elements_per_iteration=1)
    x = builder.stream_input("x")
    operand = builder.param("c")
    add_op = "fadd" if float_ops else "padd8"
    mul_op = "fmul" if float_ops else "pmul16"
    # Chain every op so none is dead; there is no loop-carried cycle,
    # so the II stays at the 16-cycle resource bound.
    last = x
    for i in range(48):
        last = builder.op(add_op, last, operand, name=f"a{i}")
    last = builder.op("frsq", last, name="dsq_lane")
    for i in range(32):
        last = builder.op(mul_op, last, operand, name=f"m{i}")
    builder.stream_output("out", last)
    return KernelSpec(name, builder.build(), _identity_apply)


def _run_kernel_bench(spec: KernelSpec, stream_words: int,
                      invocations: int,
                      machine: MachineConfig,
                      board: BoardConfig):
    program = StreamProgram(f"bench_{spec.name}", machine=machine)
    data = program.array("data", np.arange(stream_words, dtype=float))
    stream = program.load(data)
    for i in range(invocations):
        stream = program.kernel(spec, [stream],
                                params={"c": 1.0})[0]
    image = program.build()
    processor = ImagineProcessor(machine=machine, board=board,
                                 kernels=image.kernels)
    return processor.run(image)


def bench_cluster_ops(machine: MachineConfig,
                      board: BoardConfig) -> MicrobenchResult:
    spec = _peak_kernel("ipeak", float_ops=False)
    result = _run_kernel_bench(spec, 8192, 48, machine, board)
    return MicrobenchResult(
        "Cluster (OPS)", result.metrics.gops, machine.peak_gops,
        "GOPS", result.power.watts)


def bench_cluster_flops(machine: MachineConfig,
                        board: BoardConfig) -> MicrobenchResult:
    spec = _peak_kernel("fpeak", float_ops=True)
    result = _run_kernel_bench(spec, 8192, 48, machine, board)
    return MicrobenchResult(
        "Cluster (FLOPS)", result.metrics.gflops, machine.peak_gflops,
        "GFLOPS", result.power.watts)


def bench_inter_cluster(machine: MachineConfig,
                        board: BoardConfig) -> MicrobenchResult:
    result = _run_kernel_bench(SORT32, 8192, 48, machine, board)
    comm_rate = (result.metrics.comm_ops
                 / max(result.metrics.total_cycles, 1e-9))
    return MicrobenchResult(
        "Inter-cluster comm.", comm_rate,
        float(machine.peak_comm_ops_per_cycle), "ops/cycle",
        result.power.watts)


def bench_srf(machine: MachineConfig,
              board: BoardConfig) -> MicrobenchResult:
    program = StreamProgram("bench_srf", machine=machine)
    data = program.array("data", np.arange(12288, dtype=float))
    a = program.load(data, words=6144)
    b = program.load(data, start=6144, words=6144)
    for _ in range(64):
        a, b = program.kernel(SRFCOPY, [a, b])
    image = program.build()
    processor = ImagineProcessor(machine=machine, board=board,
                                 kernels=image.kernels)
    result = processor.run(image)
    return MicrobenchResult(
        "SRF", result.metrics.srf_gbytes, machine.srf_peak_gbytes,
        "GB/s", result.power.watts)


def bench_memory(machine: MachineConfig,
                 board: BoardConfig) -> MicrobenchResult:
    program = StreamProgram("bench_mem", machine=machine)
    data = program.array("data", np.zeros(4096))
    for i in range(20):
        pattern = indexed(8192, 16, seed=i)
        program.load(data, pattern=pattern, name=f"idx{i}")
    image = program.build()
    processor = ImagineProcessor(machine=machine, board=board,
                                 kernels=image.kernels)
    result = processor.run(image)
    return MicrobenchResult(
        "MEM", result.metrics.mem_gbytes, machine.mem_peak_gbytes,
        "GB/s", result.power.watts)


def bench_host(machine: MachineConfig,
               board: BoardConfig) -> MicrobenchResult:
    from repro.isa.stream_ops import StreamInstruction, StreamOpType

    instructions = [
        StreamInstruction(StreamOpType.UCR_WRITE, ucr=i % 8, index=i,
                          tag="hostbench")
        for i in range(512)
    ]
    processor = ImagineProcessor(machine=machine, board=board)
    result = processor.run(instructions, name="bench_host")
    return MicrobenchResult(
        "Host interface", result.metrics.host_mips,
        board.host_peak_mips, "MIPS", result.power.watts)


def run_all_microbenchmarks(machine: MachineConfig | None = None,
                            board: BoardConfig | None = None
                            ) -> list[MicrobenchResult]:
    """All six Table-1 rows, in the paper's order."""
    machine = machine or MachineConfig()
    board = board or BoardConfig.hardware()
    return [
        bench_cluster_ops(machine, board),
        bench_cluster_flops(machine, board),
        bench_inter_cluster(machine, board),
        bench_srf(machine, board),
        bench_memory(machine, board),
        bench_host(machine, board),
    ]
