"""MPEG: an MPEG-2 I/P video encoder (Table 3).

Encodes ``frames`` frames of synthetic video (a textured scene
translating horizontally by one macroblock per frame, so motion
estimation has a known right answer).  Per macroblock-row strip:

* RGB load -> ``colorconv`` -> luma strip (stored for reference use);
* P frames: ``blocksearch`` against the previous frame's luma,
  ``blocksad`` (residual mode) for motion compensation;
* ``dct8x8`` -> ``quantzig`` -> ``rle`` -> ``vlc`` -> coded output.

Frames are stored macroblock-ordered (each 16x16 block contiguous) so
block streams are unit-stride, as the real implementation arranges.
A host register read per frame models rate control.

Oracle checks: recovered motion vectors equal the synthetic
translation for interior blocks, and the quantized-DCT pipeline
round-trips (decode error bounded by the quantization step).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppBundle
from repro.kernels.blocksearch import BLOCKSEARCH
from repro.kernels.copy import COLORCONV
from repro.kernels.dct import DCT8X8, IDCT8X8, QUANTZIG
from repro.kernels.pixelmath import pack16, unpack16
from repro.kernels.rle import RLE, VLC
from repro.kernels.sad import BLOCKSAD
from repro.streamc.program import StreamProgram

DEFAULT_WIDTH = 352
DEFAULT_HEIGHT = 96
DEFAULT_FRAMES = 3
MB = 16
MB_PIXELS = MB * MB


def make_video(height: int, width: int, frames: int,
               seed: int = 11) -> np.ndarray:
    """(frames, H, W) synthetic video translating 16 px/frame."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 256, size=(height, width)).astype(float)
    for _ in range(2):
        base = (base + np.roll(base, 1, axis=1)
                + np.roll(base, 1, axis=0)) / 3.0
    base = np.round(base)
    return np.stack([np.roll(base, MB * f, axis=1)
                     for f in range(frames)])


def to_macroblock_order(plane: np.ndarray) -> np.ndarray:
    """(H, W) plane -> flat pixel array, 16x16 blocks contiguous."""
    height, width = plane.shape
    blocks = plane.reshape(height // MB, MB, width // MB, MB)
    return blocks.transpose(0, 2, 1, 3).reshape(-1)


def from_macroblock_order(flat: np.ndarray, height: int,
                          width: int) -> np.ndarray:
    blocks = flat.reshape(height // MB, width // MB, MB, MB)
    return blocks.transpose(0, 2, 1, 3).reshape(height, width)


def build(height: int = DEFAULT_HEIGHT, width: int = DEFAULT_WIDTH,
          frames: int = DEFAULT_FRAMES, qstep: float = 16.0,
          chunks_per_strip: int = 2, seed: int = 11,
          machine=None) -> AppBundle:
    """Build the MPEG stream program.

    ``chunks_per_strip`` stripmines each macroblock row so the live
    working set double-buffers comfortably inside the 128 KB SRF (the
    stream compiler's "optimal sizing of stripmined streams").
    """
    if height % MB or width % MB:
        raise ValueError("frame dimensions must be multiples of 16")
    video = make_video(height, width, frames, seed)
    strips = height // MB
    strip_pixels = MB * width           # pixels per macroblock row
    strip_words = strip_pixels // 2
    blocks_per_strip = width // MB
    if blocks_per_strip % chunks_per_strip:
        raise ValueError("chunks_per_strip must divide the strip")
    blocks_per_chunk = blocks_per_strip // chunks_per_strip
    chunk_words = strip_words // chunks_per_strip
    chunk_pixels = strip_pixels // chunks_per_strip

    program = StreamProgram("MPEG", machine=machine)
    # Source video: three "color planes" per frame (the synthetic
    # scene is grey, so planes coincide; the colorconv cost is real).
    plane_arrays = []
    for f in range(frames):
        mb_plane = pack16(to_macroblock_order(video[f]))
        plane_arrays.append(tuple(
            program.array(f"f{f}_{c}", mb_plane) for c in "rgb"))
    luma = [program.alloc_array(f"luma{f}", height * width // 2)
            for f in range(frames)]
    chunks = strips * chunks_per_strip
    mv_out = program.alloc_array(
        "motion_vectors", frames * chunks * (blocks_per_chunk + 1))
    coded_out = program.alloc_array(
        "coded", frames * strips * 4 * strip_words)
    coded_cursor = 0
    bits_cursor = 0
    # Intra strips are coded as residuals against flat gray, so the
    # signed-DCT path is identical for I and P macroblocks.
    gray = program.array("gray128",
                         pack16(np.full(chunk_pixels, 128.0)))

    search_offsets = tuple(MB_PIXELS * k for k in range(-2, 3))

    for f in range(frames):
        for s in range(chunks):
            offset = s * chunk_words
            r, g, b = (program.load(arr, start=offset, words=chunk_words,
                                    name=f"f{f}s{s}_{c}")
                       for arr, c in zip(plane_arrays[f], "rgb"))
            cur = program.kernel1(
                COLORCONV, [r, g, b],
                params={"wr": 0.299, "wg": 0.587, "wb": 0.114},
                name=f"luma{f}_{s}")
            if f == 0:
                mv = None
                predicted = program.load(gray, words=chunk_words,
                                         name=f"gray{s}")
            else:
                # Motion estimation runs against the *reconstructed*
                # previous frame, as a real encoder must.
                ref = program.load(luma[f - 1], start=offset,
                                   words=chunk_words, name=f"ref{f}_{s}")
                # Hierarchical search: a coarse pass over the wide
                # window, then a fine pass; only the fine motion
                # vectors are kept.
                program.kernel(
                    BLOCKSEARCH, [cur, ref],
                    params={"block": MB_PIXELS,
                            "offsets": search_offsets[::2]},
                    name=f"me0_{f}_{s}")
                mv, predicted = program.kernel(
                    BLOCKSEARCH, [cur, ref],
                    params={"block": MB_PIXELS,
                            "offsets": search_offsets},
                    name=f"me{f}_{s}")
            residual = program.kernel1(
                BLOCKSAD, [cur, predicted],
                params={"mode": "residual"},
                name=f"res{f}_{s}")
            coefficients = program.kernel1(DCT8X8, [residual],
                                           name=f"dct{f}_{s}")
            quantized = program.kernel1(
                QUANTZIG, [coefficients], params={"qstep": qstep},
                name=f"q{f}_{s}")
            runs = program.kernel1(RLE, [quantized], name=f"rle{f}_{s}")
            bits = program.kernel1(VLC, [runs], name=f"vlc{f}_{s}")
            # Reconstruction loop: dequantize + IDCT (+ motion add)
            # produces the reference frame for the next P frame.
            recon_res = program.kernel1(
                IDCT8X8, [quantized],
                params={"qstep": qstep, "zigzagged": True},
                name=f"idct{f}_{s}")
            recon = program.kernel1(
                BLOCKSAD, [recon_res, predicted],
                params={"mode": "add"}, name=f"mc{f}_{s}")
            program.store(recon, luma[f], start=offset)
            if mv is not None:
                program.store(mv, mv_out,
                              start=(f * chunks + s)
                              * (blocks_per_chunk + 1))
            program.store(runs, coded_out, start=coded_cursor)
            coded_cursor += runs.words
            bits_cursor += bits.words
        # Rate control: the host reads the frame's VLC bit count.
        program.host_read(tag=f"rate_control_f{f}")

    image = program.build()
    image.validate()
    return AppBundle(
        name="MPEG",
        image=image,
        oracle={
            "video": video,
            "qstep": qstep,
            "strips": chunks,
            "blocks_per_strip": blocks_per_chunk,
            "coded_words": coded_cursor,
            "bits_words": bits_cursor,
            "search_offsets": search_offsets,
        },
        work_units=float(frames),
        work_name="frames",
    )


def motion_vector_accuracy(bundle: AppBundle) -> float:
    """Fraction of interior P-frame blocks with the true motion."""
    image = bundle.image
    oracle = bundle.oracle
    strips = oracle["strips"]
    per_strip = oracle["blocks_per_strip"] + 1
    frames = int(bundle.work_units)
    mv_words = image.outputs["motion_vectors"]
    hits = total = 0
    for f in range(1, frames):
        for s in range(strips):
            start = (f * strips + s) * per_strip
            packed = mv_words[start:start + per_strip]
            vectors = unpack16(packed)[:oracle["blocks_per_strip"]] - 32768
            # The scene translates +16 px/frame; in macroblock order a
            # block's content was one block earlier in the previous
            # frame: offset -MB_PIXELS.
            interior = vectors[2:-2]
            hits += int((interior == -MB_PIXELS).sum())
            total += len(interior)
    return hits / max(total, 1)
