"""QRD: blocked complex Householder QR decomposition (Table 3).

Converts a 192x96 complex matrix into an upper triangular and an
orthogonal factor -- the space-time adaptive processing core the paper
benchmarks at 4.81 GFLOPS, its best floating-point result.

Structure per column j: the ``house`` kernel computes the Householder
vector of the active column; ``update2`` applies the rank-1 reflector
to the trailing matrix in column blocks (strided record loads walk the
column-major matrix).  Long streams keep the clusters busy -- QRD has
the longest kernel streams of Table 5 -- and block updates exceed the
stripmine limit, so kernel+restart sequences appear, as in Table 4.

The oracle reconstructs Q from the stored reflectors and checks
``Q R = A`` and unitarity of ``Q``.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppBundle
from repro.kernels.copy import SPLIT
from repro.kernels.house import HOUSE, deinterleave, interleave
from repro.kernels.update2 import UPDATE2
from repro.memsys.patterns import strided
from repro.streamc.program import StreamProgram

DEFAULT_ROWS = 192
DEFAULT_COLS = 96
DEFAULT_BLOCK_COLUMNS = 12


def make_matrix(rows: int, cols: int, seed: int = 23) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((rows, cols))
            + 1j * rng.standard_normal((rows, cols)))


def build(rows: int = DEFAULT_ROWS, cols: int = DEFAULT_COLS,
          block_columns: int = DEFAULT_BLOCK_COLUMNS,
          seed: int = 23, machine=None) -> AppBundle:
    matrix = make_matrix(rows, cols, seed)
    program = StreamProgram("QRD", machine=machine,
                            max_batch_elements=2048)
    column_words = 2 * rows
    # Column-major interleaved-complex storage.
    a_arr = program.array("A", interleave(matrix.T.reshape(-1)))
    v_arr = program.alloc_array("V", cols * column_words)
    beta_arr = program.alloc_array("betas", 4 * cols)
    betas: list[float] = []

    steps = min(rows, cols)
    panel = block_columns
    for p in range(0, steps, panel):
        width = min(panel, steps - p)
        active_words = 2 * (rows - p)
        # Panel factorization: the panel lives in the SRF as one block
        # stream for the whole sweep; each step splits the pivot
        # column off, reflects, and updates the remainder in one go.
        panel_pattern = strided(
            words=width * active_words, stride=column_words,
            record_words=active_words,
            start=a_arr.base + p * column_words + 2 * p)
        block = program.load(a_arr, pattern=panel_pattern,
                             record_words=2, name=f"panel{p}")
        reflectors = []
        for i in range(width):
            j = p + i
            if i < width - 1:
                pivot, block = program.kernel(
                    SPLIT, [block],
                    params={"head_words": active_words},
                    name=f"split{j}")
            else:
                pivot = block
            v, aux = program.kernel(
                HOUSE, [pivot],
                params={"scale": 1.0, "skip": i}, name=f"house{j}")
            beta = float(aux.data[0])
            betas.append(beta)
            reflectors.append((v, beta))
            program.store(v, v_arr, start=j * column_words)
            program.store(aux, beta_arr, start=4 * j)
            pivot = program.kernel1(
                UPDATE2, [v, pivot],
                params={"beta": beta, "columns": 1}, name=f"pv{j}")
            program.store(pivot, a_arr,
                          start=j * column_words + 2 * p)
            if i < width - 1:
                block = program.kernel1(
                    UPDATE2, [v, block],
                    params={"beta": beta, "columns": width - i - 1},
                    name=f"pu{j}")
        # Trailing update: each block of columns is loaded once and
        # updated by every reflector of the panel while SRF-resident.
        k = p + width
        while k < cols:
            block_width = min(block_columns, cols - k)
            pattern = strided(
                words=block_width * active_words, stride=column_words,
                record_words=active_words,
                start=a_arr.base + k * column_words + 2 * p)
            block = program.load(a_arr, pattern=pattern,
                                 record_words=2, name=f"blk{p}_{k}")
            for j, (v, beta) in enumerate(reflectors):
                block = program.kernel1(
                    UPDATE2, [v, block],
                    params={"beta": beta, "columns": block_width},
                    name=f"upd{p + j}_{k}")
            program.store(block, a_arr, pattern=pattern)
            k += block_width

    image = program.build()
    image.validate()
    final = deinterleave(image.outputs["A"]).reshape(cols, rows).T
    reflectors = []
    for j in range(steps):
        p = (j // panel) * panel
        stored = deinterleave(
            image.outputs["V"][j * column_words:
                               j * column_words + 2 * (rows - p)])
        reflectors.append(stored[j - p:])
    return AppBundle(
        name="QRD",
        image=image,
        oracle={
            "matrix": matrix,
            "R": np.triu(final[:cols, :]),
            "final": final,
            "reflectors": reflectors,
            "betas": betas,
        },
        work_units=1.0,
        work_name="QRD",
    )


def reconstruct_q(bundle: AppBundle) -> np.ndarray:
    """Accumulate Q = H_0 H_1 ... from the stored reflectors."""
    matrix = bundle.oracle["matrix"]
    rows = matrix.shape[0]
    q = np.eye(rows, dtype=complex)
    for j, (v, beta) in enumerate(zip(bundle.oracle["reflectors"],
                                      bundle.oracle["betas"])):
        h = np.eye(rows - j, dtype=complex) - beta * np.outer(v, v.conj())
        full = np.eye(rows, dtype=complex)
        full[j:, j:] = h
        q = q @ full
    return q


def factorization_error(bundle: AppBundle) -> tuple[float, float]:
    """(||QR - A|| / ||A||, ||Q^H Q - I||) -- both should be tiny."""
    matrix = bundle.oracle["matrix"]
    rows, cols = matrix.shape
    q = reconstruct_q(bundle)
    r = np.zeros_like(matrix)
    r[:cols, :] = bundle.oracle["R"]
    residual = (np.linalg.norm(q @ r - matrix)
                / np.linalg.norm(matrix))
    unitarity = np.linalg.norm(q.conj().T @ q - np.eye(rows))
    return float(residual), float(unitarity)
