"""DEPTH: the stereo depth extractor (Section 2.1, Table 3).

Pipeline per image row (Figure 1): 7x7 convolution and 3x3
convolution pre-filter both camera images, then for every candidate
disparity the SAD stage (absolute differences, a 7-row vertical sum,
and a 7-pixel horizontal sum with a running best-disparity select)
updates the depth map.  Streams are single image rows of packed 16-bit
pixel pairs -- short streams, which is why DEPTH needs the highest
host instruction bandwidth of the four applications (Table 4) and has
the shortest average kernel stream length (Table 5).

The synthetic stereo pair encodes a known two-plane disparity field;
the oracle checks the recovered disparities in textured interior
regions.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppBundle
from repro.kernels.conv import CONV3X3, CONV7X7
from repro.kernels.pixelmath import pack16, unpack16
from repro.kernels.sad import make_sad7x7
from repro.streamc.program import StreamProgram

DEFAULT_WIDTH = 320
DEFAULT_HEIGHT = 48
DEFAULT_DISPARITIES = 8


def make_stereo_pair(height: int, width: int,
                     seed: int = 7) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
    """Synthetic textured stereo pair with a two-plane disparity field.

    Returns (left, right, true_disparity) as (H, W) pixel arrays; the
    right image is the left shifted horizontally by the per-column
    disparity (4 px on the left half of the scene, 8 px on the right).
    """
    rng = np.random.default_rng(seed)
    texture = rng.integers(0, 256, size=(height, width)).astype(float)
    # Smooth slightly so SAD windows are discriminative but not noisy.
    for _ in range(2):
        texture = (texture + np.roll(texture, 1, axis=1)
                   + np.roll(texture, 1, axis=0)) / 3.0
    left = np.round(texture)
    disparity = np.full((height, width), 4.0)
    disparity[:, width // 2:] = 8.0
    right = np.empty_like(left)
    columns = np.arange(width)
    for y in range(height):
        source = (columns - disparity[y].astype(int)) % width
        right[y] = left[y, source]
    return left, right, disparity


def build(height: int = DEFAULT_HEIGHT, width: int = DEFAULT_WIDTH,
          disparities: int = DEFAULT_DISPARITIES,
          seed: int = 7, machine=None) -> AppBundle:
    """Build the DEPTH stream program for one frame."""
    if width % 2:
        raise ValueError("width must be even (pixels pack in pairs)")
    left, right, true_disparity = make_stereo_pair(height, width, seed)
    words_per_row = width // 2

    program = StreamProgram("DEPTH", machine=machine)
    left_arr = program.array(
        "left", np.concatenate([pack16(row) for row in left]))
    right_arr = program.array(
        "right", np.concatenate([pack16(row) for row in right]))
    init_score = program.array(
        "init_score", pack16(np.full(width, 65535.0)))
    init_disp = program.array("init_disp", pack16(np.zeros(width)))
    depth_out = program.alloc_array("depth", height * words_per_row)

    candidate_disparities = [2 * i for i in range(disparities)]

    def row_offset(y: int) -> int:
        return (y % height) * words_per_row

    raw = {"L": {}, "R": {}}

    def raw_row(side: str, array, y: int):
        key = y % height
        if key not in raw[side]:
            raw[side][key] = program.load(
                array, start=row_offset(y), words=words_per_row,
                name=f"{side}raw{key}")
        return raw[side][key]

    filtered = {"L": {}, "R": {}}

    def conv7_row(side: str, array, y: int):
        if y not in filtered[side]:
            rows = [raw_row(side, array, y + dy) for dy in range(-3, 4)]
            filtered[side][y] = program.kernel1(
                CONV7X7, rows, params={"norm_shift": 12},
                name=f"{side}f7_{y}")
        return filtered[side][y]

    sharpened = {"L": {}, "R": {}}

    def conv3_row(side: str, array, y: int):
        if y not in sharpened[side]:
            rows = [conv7_row(side, array, y + dy) for dy in (-1, 0, 1)]
            sharpened[side][y] = program.kernel1(
                CONV3X3, rows, params={"norm_shift": 4},
                name=f"{side}f3_{y}")
        return sharpened[side][y]

    sad = make_sad7x7()
    conv_margin = 4      # conv7x7 (+-3) then conv3x3 (+-1)
    window = 7           # SAD vertical support, warmed inside the kernel
    fed = 0
    for feed_row in range(conv_margin, height - conv_margin):
        lf = conv3_row("L", left_arr, feed_row)
        rf = conv3_row("R", right_arr, feed_row)
        score = program.load(init_score, words=words_per_row,
                             name=f"score0_{feed_row}")
        disp = program.load(init_disp, words=words_per_row,
                            name=f"disp0_{feed_row}")
        for d in candidate_disparities:
            score, disp = program.kernel(
                sad, [lf, rf, score, disp],
                params={"disparity": float(d)},
                name=f"sad{d}_{feed_row}")
        fed += 1
        if fed >= window:
            center = feed_row - window // 2
            program.store(disp, depth_out, start=row_offset(center))

    margin = conv_margin + window // 2 + 1
    image = program.build()
    image.validate()
    depth_map = np.vstack([
        unpack16(image.outputs["depth"]
                 [y * words_per_row:(y + 1) * words_per_row])
        for y in range(height)
    ])
    return AppBundle(
        name="DEPTH",
        image=image,
        oracle={
            "left": left,
            "right": right,
            "true_disparity": true_disparity,
            "depth_map": depth_map,
            "margin": margin,
        },
        work_units=1.0,
        work_name="frames",
    )


def disparity_accuracy(bundle: AppBundle) -> float:
    """Fraction of interior pixels whose disparity was recovered."""
    oracle = bundle.oracle
    depth = oracle["depth_map"]
    truth = oracle["true_disparity"]
    margin = oracle["margin"]
    height, width = truth.shape
    interior = np.zeros_like(truth, dtype=bool)
    interior[margin:height - margin, 16:width - 16] = True
    # Mask out the disparity-plane boundary where windows straddle.
    boundary = width // 2
    interior[:, boundary - 16:boundary + 16] = False
    matches = np.abs(depth - truth) <= 2.0
    return float(matches[interior].mean())
