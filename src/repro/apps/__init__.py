"""Full applications from the paper's evaluation (Table 3).

* :mod:`repro.apps.depth` -- DEPTH, the stereo depth extractor.
* :mod:`repro.apps.mpeg` -- MPEG, an MPEG-2 I/P encoder.
* :mod:`repro.apps.qrd` -- QRD, blocked complex Householder QR.
* :mod:`repro.apps.rtsl` -- RTSL, a Real-Time-Shading-Language-style
  renderer with host-dependent control flow.

Every module exposes ``build(**sizes) -> AppBundle``; the bundle's
``image`` runs on :class:`repro.core.ImagineProcessor` and its
``oracle`` dict carries reference values for functional validation.
"""

from repro.apps.common import AppBundle

__all__ = ["AppBundle"]
