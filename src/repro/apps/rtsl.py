"""RTSL: a Real-Time Shading Language renderer (Table 3).

Renders one frame of a procedural triangle scene through the Stanford
RTSL-style pipeline: vertex transform, vertex lighting, triangle
setup/rasterization, fragment shading, and scattered framebuffer
writes (indexed stores).  The defining overheads the paper measures
for RTSL are modeled directly:

* batch sizes are data-dependent, so after each batch the host reads
  a result register before issuing the next batch -- the host
  serialization that gives RTSL its >30% application-level overhead;
* fragment streams have unpredictable lengths, defeating load/kernel
  overlap, so memory stalls stay visible;
* framebuffer writes are gather/scatter (indexed) traffic.

The oracle replays the fragment stream against a reference
rasterizer and compares framebuffers exactly.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppBundle
from repro.kernels.shading import (
    FRAGMENT_WORDS,
    FRAGSHADE,
    RASTERIZE,
    SHADE,
    VERTEX_WORDS,
    XFORM,
)
from repro.memsys.patterns import indexed
from repro.streamc.program import StreamProgram

DEFAULT_TRIANGLES = 360
DEFAULT_WIDTH = 160
DEFAULT_HEIGHT = 120


def make_scene(triangles: int, width: int, height: int,
               seed: int = 5) -> np.ndarray:
    """(T, 3, VERTEX_WORDS) screen-space triangles with normals."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform([8, 8], [width - 8, height - 8],
                          size=(triangles, 2))
    verts = np.zeros((triangles, 3, VERTEX_WORDS))
    for t in range(triangles):
        offsets = rng.uniform(-7, 7, size=(3, 2))
        verts[t, :, 0:2] = centers[t] + offsets
        verts[t, :, 2] = rng.uniform(0.1, 0.9)       # depth
        verts[t, :, 3] = 1.0                          # w
        normal = rng.normal(size=3)
        normal /= np.linalg.norm(normal)
        verts[t, :, 4:7] = normal
    return verts


def build(triangles: int = DEFAULT_TRIANGLES,
          width: int = DEFAULT_WIDTH, height: int = DEFAULT_HEIGHT,
          seed: int = 5, machine=None) -> AppBundle:
    scene = make_scene(triangles, width, height, seed)
    rng = np.random.default_rng(seed + 1)

    program = StreamProgram("RTSL", machine=machine)
    verts_arr = program.array("vertices", scene.reshape(-1))
    fb_words = width * height
    fb_arr = program.alloc_array("framebuffer", fb_words)

    matrix = np.eye(4)
    light = (0.3, 0.5, 0.8)
    reference_fragments = []

    cursor = 0
    batch_id = 0
    while cursor < triangles:
        batch = int(min(rng.integers(24, 57), triangles - cursor))
        words = batch * 3 * VERTEX_WORDS
        raw = program.load(verts_arr, start=cursor * 3 * VERTEX_WORDS,
                           words=words, record_words=VERTEX_WORDS,
                           name=f"verts{batch_id}")
        placed = program.kernel1(
            XFORM, [raw], params={"matrix": tuple(map(tuple, matrix))},
            name=f"xform{batch_id}")
        lit = program.kernel1(SHADE, [placed],
                              params={"light_dir": light},
                              name=f"shade{batch_id}")
        fragments = program.kernel1(
            RASTERIZE, [lit], params={"width": width, "height": height},
            name=f"rast{batch_id}")
        if fragments.words:
            addresses, colors = program.kernel(
                FRAGSHADE, [fragments], params={"width": width},
                name=f"frag{batch_id}")
            index_list = addresses.data.astype(np.int64)
            reference_fragments.append(
                (index_list.copy(), colors.data.copy()))
            program.store(
                colors, fb_arr,
                pattern=indexed(colors.words, fb_words,
                                start=fb_arr.base, indices=index_list))
        # The host reads the fragment count to size upcoming batches
        # (every second batch: the dispatcher double-buffers batches,
        # but cannot run further ahead than that).
        if batch_id % 2 == 1:
            program.host_read(tag=f"batch{batch_id}")
        cursor += batch
        batch_id += 1

    image = program.build()
    image.validate()
    return AppBundle(
        name="RTSL",
        image=image,
        oracle={
            "scene": scene,
            "width": width,
            "height": height,
            "fragments": reference_fragments,
            "batches": batch_id,
        },
        work_units=1.0,
        work_name="frames",
    )


def framebuffer_matches_reference(bundle: AppBundle) -> bool:
    """Replay the fragment stream; compare framebuffers exactly."""
    oracle = bundle.oracle
    width, height = oracle["width"], oracle["height"]
    reference = np.zeros(width * height)
    for addresses, colors in oracle["fragments"]:
        reference[addresses] = colors
    rendered = bundle.image.outputs["framebuffer"]
    return bool(np.array_equal(rendered, reference))


def coverage(bundle: AppBundle) -> float:
    """Fraction of framebuffer pixels any triangle touched."""
    framebuffer = bundle.image.outputs["framebuffer"]
    return float((framebuffer > 0).mean())
