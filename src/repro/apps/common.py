"""Shared application plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.streamc.compiler import StreamProgramImage


@dataclass
class AppBundle:
    """A built application: compiled program + validation oracle.

    ``work_units`` and ``work_name`` let benchmarks report
    throughput in the paper's units (frames/s, QRD/s).
    """

    name: str
    image: StreamProgramImage
    oracle: dict = field(default_factory=dict)
    work_units: float = 1.0
    work_name: str = "runs"
    #: Catalog provenance ``(name, sorted sizes)`` stamped by
    #: :func:`repro.engine.catalog.build_app`; ``None`` for hand-built
    #: bundles, which the engine then runs in-process and uncached.
    source: tuple[str, tuple[tuple[str, Any], ...]] | None = None

    @property
    def kernels(self):
        return self.image.kernels

    def throughput(self, seconds: float) -> float:
        """Work units per second (e.g. frames/s)."""
        if seconds <= 0:
            return 0.0
        return self.work_units / seconds


# The old ``run_app`` helper is gone (removed after a deprecation
# cycle): build a :class:`repro.engine.RunRequest` and run it through
# :class:`repro.engine.Session` (see ``docs/api.md``).  The EP002
# repo rule (``repro lint --repo``) keeps it from coming back.
