"""Shared application plumbing."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.core import BoardConfig, MachineConfig, RunResult
from repro.streamc.compiler import StreamProgramImage


@dataclass
class AppBundle:
    """A built application: compiled program + validation oracle.

    ``work_units`` and ``work_name`` let benchmarks report
    throughput in the paper's units (frames/s, QRD/s).
    """

    name: str
    image: StreamProgramImage
    oracle: dict = field(default_factory=dict)
    work_units: float = 1.0
    work_name: str = "runs"
    #: Catalog provenance ``(name, sorted sizes)`` stamped by
    #: :func:`repro.engine.catalog.build_app`; ``None`` for hand-built
    #: bundles, which the engine then runs in-process and uncached.
    source: tuple[str, tuple[tuple[str, Any], ...]] | None = None

    @property
    def kernels(self):
        return self.image.kernels

    def throughput(self, seconds: float) -> float:
        """Work units per second (e.g. frames/s)."""
        if seconds <= 0:
            return 0.0
        return self.work_units / seconds


def run_app(bundle: AppBundle,
            board: BoardConfig | None = None,
            machine: MachineConfig | None = None,
            tracer=None, faults=None, strict: bool = False) -> RunResult:
    """Deprecated: use :meth:`repro.engine.Session.run` instead.

    This shim survives as a migration aid (``docs/api.md``): it emits
    a :class:`DeprecationWarning` and delegates to the engine's
    in-process, uncached default session, so behaviour -- including
    the exception types raised on simulation failure -- is unchanged.
    """
    warnings.warn(
        "run_app() is deprecated; build a repro.engine.RunRequest and "
        "run it through repro.engine.Session (see docs/api.md)",
        DeprecationWarning, stacklevel=2)
    from repro.engine.session import get_default_session

    return get_default_session().run_bundle(
        bundle, board=board, machine=machine, tracer=tracer,
        faults=faults, strict=strict)
