"""Shared application plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import BoardConfig, ImagineProcessor, MachineConfig, RunResult
from repro.streamc.compiler import StreamProgramImage


@dataclass
class AppBundle:
    """A built application: compiled program + validation oracle.

    ``work_units`` and ``work_name`` let benchmarks report
    throughput in the paper's units (frames/s, QRD/s).
    """

    name: str
    image: StreamProgramImage
    oracle: dict = field(default_factory=dict)
    work_units: float = 1.0
    work_name: str = "runs"

    @property
    def kernels(self):
        return self.image.kernels

    def throughput(self, seconds: float) -> float:
        """Work units per second (e.g. frames/s)."""
        if seconds <= 0:
            return 0.0
        return self.work_units / seconds


def run_app(bundle: AppBundle,
            board: BoardConfig | None = None,
            machine: MachineConfig | None = None,
            tracer=None, faults=None, strict: bool = False) -> RunResult:
    """Build a processor for ``bundle`` and simulate it.

    Pass a :class:`repro.obs.Tracer` to capture a cross-layer
    execution trace of the run (see ``docs/observability.md``), a
    :class:`repro.faults.FaultPlan` to inject hardware faults, and
    ``strict=True`` to enforce runtime invariants
    (``docs/robustness.md``).
    """
    processor = ImagineProcessor(machine=machine, board=board,
                                 kernels=bundle.kernels, tracer=tracer,
                                 faults=faults, strict=strict)
    return processor.run(bundle.image)
