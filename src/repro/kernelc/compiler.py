"""Top-level kernel compiler driver.

``compile_kernel`` runs the full pass pipeline -- copy propagation,
dead-code elimination, optional unrolling, modulo scheduling,
communication scheduling, register allocation -- and packages the
result as a :class:`repro.isa.vliw.CompiledKernel` ready for the
cluster model to execute.
"""

from __future__ import annotations

from repro.isa.kernel_ir import KernelGraph
from repro.isa.vliw import CompiledKernel, Slot, VliwWord
from repro.kernelc import commsched, optimize, regalloc
from repro.kernelc.scheduling import (
    ClusterResources,
    ModuloSchedule,
    ScheduleError,
    modulo_schedule,
)


class CompileError(Exception):
    """Any failure in the kernel compilation pipeline."""


#: Fixed cycles of loop-setup code before the software pipeline starts
#: filling (constant loads, stream-buffer configuration).
SETUP_CYCLES = 16
#: Fixed cycles in the kernel's outer-loop block per invocation.
OUTER_OVERHEAD_CYCLES = 8
#: Microcode words for setup / outer-loop blocks.
OVERHEAD_MICROCODE_WORDS = 16


def compile_kernel(graph: KernelGraph,
                   resources: ClusterResources | None = None,
                   unroll_factor: int = 1,
                   lrf_entries_per_fu: int = 16) -> CompiledKernel:
    """Compile a kernel graph to a software-pipelined VLIW schedule."""
    resources = resources or ClusterResources()
    lowered = optimize.copy_propagate(graph)
    lowered = optimize.eliminate_dead_code(lowered)
    if unroll_factor > 1:
        lowered = optimize.unroll(lowered, unroll_factor)
    try:
        schedule = modulo_schedule(lowered, resources)
    except ScheduleError as exc:
        raise CompileError(str(exc)) from exc
    try:
        commsched.route(lowered, schedule)
        allocation = regalloc.allocate(lowered, schedule, lrf_entries_per_fu)
    except (commsched.RoutingError,
            regalloc.RegisterPressureError) as exc:
        raise CompileError(str(exc)) from exc

    words = _main_loop_words(lowered, schedule)
    stages = schedule.stages
    ii = schedule.ii
    prologue = SETUP_CYCLES + (stages - 1) * ii
    epilogue = (stages - 1) * ii
    microcode = (2 * stages - 1) * ii + OVERHEAD_MICROCODE_WORDS

    compiled = CompiledKernel(
        name=lowered.name,
        graph=lowered,
        ii=ii,
        stages=stages,
        schedule=words,
        prologue_cycles=prologue,
        epilogue_cycles=epilogue,
        outer_overhead_cycles=OUTER_OVERHEAD_CYCLES,
        microcode_words=microcode,
        regs_used=allocation.regs_used,
        lrf_reads_per_iteration=allocation.lrf_reads_per_iteration,
        lrf_writes_per_iteration=allocation.lrf_writes_per_iteration,
    )
    compiled.validate()
    return compiled


def _main_loop_words(graph: KernelGraph,
                     schedule: ModuloSchedule) -> list[VliwWord]:
    """Fold the flat schedule into the II steady-state VLIW words."""
    by_id = {op.ident: op for op in graph.ops}
    words = [VliwWord(cycle) for cycle in range(schedule.ii)]
    for ident, time in schedule.times.items():
        op = by_id[ident]
        slot = time % schedule.ii
        words[slot].slots.append(Slot(
            fu=op.spec.fu,
            unit=schedule.unit_assignment.get(ident, 0),
            op=ident,
            opcode=op.opcode,
        ))
    return words
