"""Communication scheduling: intra-cluster switch routing.

The paper's kernel compiler "specifies the data movement between ALUs
and LRFs" (communication scheduling, Mattson et al.).  The modulo
scheduler already reserves one write-back bus per produced result; this
pass extracts the concrete routes and validates that no bus carries two
results in the same cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.kernel_ir import FuClass, KernelGraph
from repro.kernelc.scheduling import ModuloSchedule, _NO_WRITEBACK


class RoutingError(Exception):
    """Raised when switch routing is infeasible (bus oversubscribed)."""


@dataclass(frozen=True)
class Route:
    """One result's path over the intra-cluster switch.

    ``slot`` is the modulo cycle at which the value appears on
    ``bus`` and is written into the LRFs of ``consumer_classes``.
    """

    op: int
    bus: int
    slot: int
    consumer_classes: tuple[FuClass, ...]


def route(graph: KernelGraph, schedule: ModuloSchedule) -> list[Route]:
    """Build and validate the switch route table for a schedule."""
    by_id = {op.ident: op for op in graph.ops}
    consumer_classes: dict[int, set[FuClass]] = {}
    for op in graph.schedulable_ops:
        for operand in op.operands:
            consumer_classes.setdefault(operand.producer, set()).add(
                op.spec.fu)

    routes = []
    occupancy: dict[tuple[int, int], int] = {}
    for ident, time in schedule.times.items():
        op = by_id[ident]
        if op.opcode in _NO_WRITEBACK:
            continue
        bus = schedule.bus_assignment.get(ident, -1)
        if bus < 0:
            raise RoutingError(
                f"{graph.name}: op {ident} has a result but no bus")
        slot = (time + op.spec.latency) % schedule.ii
        key = (bus, slot)
        if key in occupancy:
            raise RoutingError(
                f"{graph.name}: bus {bus} carries ops "
                f"{occupancy[key]} and {ident} in slot {slot}")
        occupancy[key] = ident
        routes.append(Route(
            op=ident,
            bus=bus,
            slot=slot,
            consumer_classes=tuple(sorted(
                consumer_classes.get(ident, set()), key=lambda f: f.value)),
        ))
    return routes
