"""Kernel interpreters: execute dataflow graphs and VLIW schedules.

Two executable semantics for the same kernel:

* :func:`run_reference` evaluates the dataflow graph iteration by
  iteration in dependency order -- the meaning of the program.
* :func:`run_scheduled` executes the compiled modulo schedule cycle
  by cycle: an operation issued at cycle ``t`` produces its result at
  ``t + latency``, and reading a value before it exists raises.

If the scheduler is correct, both produce identical output streams
for any input -- the strongest check we have on the kernel compiler,
and the property test in ``tests/test_interpreter.py`` runs it over
randomly generated kernels.

Operator semantics are simple deterministic functions over
lane-vectors (one lane per cluster); they do not bit-match Imagine's
ALUs, but equivalence checking only needs both interpreters to agree.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.isa.kernel_ir import KernelGraph, OPCODES
from repro.isa.vliw import CompiledKernel

_SOURCE_OPCODES = {"input", "param", "const"}
LANES = 8


class InterpreterError(Exception):
    """A schedule read a value before the producing op finished."""


def _binary(fn):
    return lambda state, a, b=None: fn(a, a if b is None else b)


def _comm(state, a, b=None):
    return np.roll(a, 1)


def _spwrite(state, a, b=None):
    state.scratchpad = a.copy()
    return a


def _spread(state, a, b=None):
    return state.scratchpad + 0.25 * a


_SEMANTICS = {
    "iadd": _binary(lambda a, b: a + b),
    "isub": _binary(lambda a, b: a - b),
    "iabs": _binary(lambda a, b: np.abs(a)),
    "iand": _binary(lambda a, b: np.float64(1.0) * ((a != 0) & (b != 0))),
    "ior": _binary(lambda a, b: a + b / 3.0),
    "ixor": _binary(lambda a, b: a - b / 3.0),
    "ishl": _binary(lambda a, b: 2.0 * a + 0.5 * b),
    "ishr": _binary(lambda a, b: 0.5 * a + 0.25 * b),
    "icmp": _binary(lambda a, b: (a < b) * 1.0),
    "isel": _binary(lambda a, b: np.where(a != 0, b, -b)),
    "imin": _binary(np.minimum),
    "imax": _binary(np.maximum),
    "padd8": _binary(lambda a, b: a + b),
    "psub8": _binary(lambda a, b: a - b),
    "pabs8": _binary(lambda a, b: np.abs(a)),
    "padd16": _binary(lambda a, b: a + b),
    "psub16": _binary(lambda a, b: a - b),
    "pabs16": _binary(lambda a, b: np.abs(a)),
    "pmin16": _binary(np.minimum),
    "pmax16": _binary(np.maximum),
    "psad8": _binary(lambda a, b: np.abs(a - b)),
    "fadd": _binary(lambda a, b: a + b),
    "fsub": _binary(lambda a, b: a - b),
    "fabs": _binary(lambda a, b: np.abs(a)),
    "fcmp": _binary(lambda a, b: (a < b) * 1.0),
    "fmin": _binary(np.minimum),
    "fmax": _binary(np.maximum),
    "ftoi": _binary(lambda a, b: np.floor(a)),
    "itof": _binary(lambda a, b: a * 1.0),
    "imul": _binary(lambda a, b: a * b),
    "pmul16": _binary(lambda a, b: a * b),
    "fmul": _binary(lambda a, b: a * b),
    "fdiv": _binary(lambda a, b: a / np.where(np.abs(b) < 1e-9, 1.0, b)),
    "fsqrt": _binary(lambda a, b: np.sqrt(np.abs(a))),
    "frsq": _binary(lambda a, b: 1.0 / np.sqrt(np.abs(a) + 1e-9)),
    "idiv": _binary(lambda a, b: np.floor(
        a / np.where(np.abs(b) < 1e-9, 1.0, b))),
    "spread": _spread,
    "spwrite": _spwrite,
    "comm": _comm,
    "copy": _binary(lambda a, b: a),
    "sbread": None,     # handled specially
    "sbwrite": None,    # handled specially
}


@dataclass
class _LaneState:
    scratchpad: np.ndarray = field(
        default_factory=lambda: np.zeros(LANES))


@dataclass
class KernelRun:
    """Output streams plus per-iteration values (for debugging)."""

    outputs: dict[int, np.ndarray]

    def output_matrix(self) -> np.ndarray:
        return np.stack([self.outputs[k]
                         for k in sorted(self.outputs)])


def _prepare_inputs(graph: KernelGraph, iterations: int,
                    seed: int) -> tuple[dict, dict]:
    """Deterministic input streams and parameter values."""
    rng = np.random.default_rng(seed)
    streams = {}
    for position, source in enumerate(graph.inputs):
        streams[source] = rng.uniform(
            0.5, 4.0, size=(iterations, LANES))
    scalars = {}
    for source in graph.params + graph.consts:
        scalars[source] = np.full(LANES, rng.uniform(0.5, 2.0))
    return streams, scalars


def run_reference(graph: KernelGraph, iterations: int,
                  seed: int = 0) -> KernelRun:
    """Evaluate the graph in dependency order, iteration by iteration."""
    streams, scalars = _prepare_inputs(graph, iterations, seed)
    order = _topological_order(graph)
    history: dict[int, list[np.ndarray]] = defaultdict(list)
    state = _LaneState()
    outputs: dict[int, list[np.ndarray]] = {o: [] for o in graph.outputs}

    def value_of(producer: int, distance: int, iteration: int):
        target = iteration - distance
        if target < 0:
            return np.zeros(LANES)
        return history[producer][target]

    for iteration in range(iterations):
        for ident in order:
            op = graph.op(ident)
            if op.opcode in _SOURCE_OPCODES:
                continue
            operands = [value_of(o.producer, o.distance, iteration)
                        if graph.op(o.producer).opcode
                        not in _SOURCE_OPCODES
                        else _source_value(graph, o.producer, streams,
                                           scalars, iteration)
                        for o in op.operands]
            result = _apply(op.opcode, state, operands)
            history[ident].append(result)
            if ident in outputs:
                outputs[ident].append(result)
    return KernelRun(outputs={
        k: np.stack(v) if v else np.zeros((0, LANES))
        for k, v in outputs.items()})


def run_scheduled(graph: KernelGraph, kernel: CompiledKernel,
                  schedule_times: dict[int, int], iterations: int,
                  seed: int = 0) -> KernelRun:
    """Execute the modulo schedule cycle by cycle on real data.

    Raises :class:`InterpreterError` if any operation reads an operand
    that has not yet been produced -- i.e. if the schedule violates a
    dependence with real latencies.
    """
    streams, scalars = _prepare_inputs(graph, iterations, seed)
    ii = kernel.ii
    state = _LaneState()
    ready_at: dict[tuple[int, int], int] = {}
    values: dict[tuple[int, int], np.ndarray] = {}
    outputs: dict[int, list] = {o: [] for o in graph.outputs}

    issue_order = sorted(
        ((schedule_times[op.ident] + iteration * ii, iteration,
          op.ident)
         for op in graph.schedulable_ops
         for iteration in range(iterations)))

    for time, iteration, ident in issue_order:
        op = graph.op(ident)
        operands = []
        for operand in op.operands:
            producer = graph.op(operand.producer)
            if producer.opcode in _SOURCE_OPCODES:
                operands.append(_source_value(
                    graph, operand.producer, streams, scalars,
                    iteration))
                continue
            key = (operand.producer, iteration - operand.distance)
            if key[1] < 0:
                operands.append(np.zeros(LANES))
                continue
            if key not in values:
                raise InterpreterError(
                    f"{graph.name}: op {ident}@iter{iteration} reads "
                    f"{key} which was never produced")
            if ready_at[key] > time:
                raise InterpreterError(
                    f"{graph.name}: op {ident} issued at {time} reads "
                    f"value of op {key[0]} ready at {ready_at[key]}")
            operands.append(values[key])
        result = _apply(op.opcode, state, operands)
        key = (ident, iteration)
        values[key] = result
        ready_at[key] = time + op.spec.latency
        if ident in outputs:
            outputs[ident].append((time, result))

    return KernelRun(outputs={
        k: (np.stack([r for _, r in sorted(v, key=lambda p: p[0])])
            if v else np.zeros((0, LANES)))
        for k, v in outputs.items()})


def check_equivalence(graph: KernelGraph, kernel: CompiledKernel,
                      schedule_times: dict[int, int],
                      iterations: int = 6, seed: int = 0,
                      atol: float = 1e-9) -> None:
    """Assert schedule execution matches the reference semantics.

    Note: the scratchpad is a shared register, so kernels with SP ops
    whose relative order the schedule may legally permute are compared
    per-output-shape only.
    """
    reference = run_reference(graph, iterations, seed)
    scheduled = run_scheduled(graph, kernel, schedule_times,
                              iterations, seed)
    has_sp = any(op.opcode in ("spread", "spwrite")
                 for op in graph.schedulable_ops)
    for ident in reference.outputs:
        ref = reference.outputs[ident]
        got = scheduled.outputs[ident]
        if ref.shape != got.shape:
            raise AssertionError(
                f"{graph.name}: output {ident} shape mismatch "
                f"{ref.shape} vs {got.shape}")
        if has_sp:
            continue
        if not np.allclose(ref, got, atol=atol):
            raise AssertionError(
                f"{graph.name}: output {ident} diverges "
                f"(max err {np.abs(ref - got).max():.3g})")


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------

def _apply(opcode: str, state: _LaneState,
           operands: list[np.ndarray]) -> np.ndarray:
    if opcode == "sbread":
        return operands[0]
    if opcode == "sbwrite":
        return operands[0]
    fn = _SEMANTICS[opcode]
    if len(operands) == 0:
        raise InterpreterError(f"{opcode} with no operands")
    if len(operands) == 1:
        return fn(state, operands[0])
    return fn(state, operands[0], operands[1])


def _source_value(graph: KernelGraph, ident: int, streams: dict,
                  scalars: dict, iteration: int) -> np.ndarray:
    if ident in streams:
        return streams[ident][iteration]
    return scalars[ident]


def _topological_order(graph: KernelGraph) -> list[int]:
    """Order respecting zero-distance edges only."""
    indegree: dict[int, int] = {op.ident: 0
                                for op in graph.schedulable_ops}
    consumers: dict[int, list[int]] = defaultdict(list)
    for op in graph.schedulable_ops:
        for operand in op.operands:
            if operand.distance == 0 and operand.producer in indegree:
                indegree[op.ident] += 1
                consumers[operand.producer].append(op.ident)
    frontier = sorted(i for i, d in indegree.items() if d == 0)
    order = []
    while frontier:
        ident = frontier.pop(0)
        order.append(ident)
        for consumer in consumers[ident]:
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                frontier.append(consumer)
    if len(order) != len(indegree):
        raise InterpreterError(f"{graph.name}: graph has a 0-cycle")
    return order
