"""The kernel compiler: KernelC IR -> software-pipelined VLIW microcode.

Pass pipeline (mirroring the paper's Section 2.3 description of the
KernelC compiler):

1. :mod:`repro.kernelc.optimize` -- copy propagation, dead-code
   elimination, loop unrolling.
2. :mod:`repro.kernelc.scheduling` -- modulo scheduling onto the
   cluster's functional-unit mix (the paper's "automatic software
   pipelining" and "schedules arithmetic operations on functional
   units").
3. :mod:`repro.kernelc.commsched` -- communication scheduling: routing
   each result over the intra-cluster switch's write-back buses.
4. :mod:`repro.kernelc.regalloc` -- LRF register allocation.

:func:`repro.kernelc.compiler.compile_kernel` drives all of them and
produces a :class:`repro.isa.vliw.CompiledKernel`.
"""

from repro.kernelc.compiler import CompileError, compile_kernel
from repro.kernelc.scheduling import ClusterResources, ModuloSchedule, modulo_schedule

__all__ = [
    "CompileError",
    "compile_kernel",
    "ClusterResources",
    "ModuloSchedule",
    "modulo_schedule",
]
