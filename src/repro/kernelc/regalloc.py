"""LRF register allocation for modulo-scheduled kernels.

In Imagine every functional-unit input port is fed by its own small
two-port local register file (LRF); a result is routed over the
intra-cluster switch and written into the LRF of each consumer.  The
allocator therefore works per consuming FU class: each live value
occupies one LRF entry in each class that reads it, from the cycle the
value is produced until that class's last read.  In a software-
pipelined loop several iterations are in flight, so a value whose
lifetime exceeds the II needs one register per in-flight copy — the
classic modulo-variable-expansion pressure this module computes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.kernel_ir import FuClass, KernelGraph
from repro.kernelc.scheduling import ModuloSchedule

_SOURCE_OPCODES = {"input", "param", "const"}


class RegisterPressureError(Exception):
    """Raised when a kernel needs more LRF entries than the cluster has."""


@dataclass(frozen=True)
class Allocation:
    """Result of register allocation.

    Attributes
    ----------
    regs_used:
        Peak simultaneously-live LRF entries per consuming FU class.
    lrf_reads_per_iteration:
        Operand fetches per main-loop iteration.
    lrf_writes_per_iteration:
        LRF write events per iteration (one per consuming op; the
        switch broadcasts a result to every consumer's LRF).
    """

    regs_used: dict[FuClass, int]
    lrf_reads_per_iteration: int
    lrf_writes_per_iteration: int


def allocate(graph: KernelGraph, schedule: ModuloSchedule,
             lrf_entries_per_fu: int = 16,
             check_capacity: bool = True) -> Allocation:
    """Compute register pressure and LRF traffic for a schedule."""
    by_id = {op.ident: op for op in graph.ops}
    ii = schedule.ii
    times = schedule.times

    # Lifetime per (value, consuming FU class).
    lifetimes: dict[tuple[int, FuClass], tuple[int, int]] = {}
    reads = 0
    writes = 0
    for op in graph.schedulable_ops:
        consume_time = times[op.ident]
        for operand in op.operands:
            producer = by_id[operand.producer]
            reads += 1
            if producer.opcode in _SOURCE_OPCODES:
                # Parameters and constants sit in dedicated registers
                # loaded at kernel start; they are read, not allocated.
                continue
            birth = times[operand.producer] + producer.spec.latency
            death = consume_time + ii * operand.distance + 1
            key = (operand.producer, op.spec.fu)
            if key in lifetimes:
                old_birth, old_death = lifetimes[key]
                lifetimes[key] = (old_birth, max(old_death, death))
            else:
                lifetimes[key] = (birth, death)

    # One LRF write per (value, consuming op).
    consumers: dict[int, int] = {}
    for op in graph.schedulable_ops:
        seen_this_op: set[int] = set()
        for operand in op.operands:
            producer = by_id[operand.producer]
            if producer.opcode in _SOURCE_OPCODES:
                continue
            if operand.producer not in seen_this_op:
                consumers[operand.producer] = (
                    consumers.get(operand.producer, 0) + 1)
                seen_this_op.add(operand.producer)
    writes = sum(consumers.values())

    # Pressure per class: overlay all lifetimes onto the II window.
    pressure: dict[FuClass, list[int]] = {}
    for (value, fu), (birth, death) in lifetimes.items():
        if death <= birth:
            death = birth + 1
        row = pressure.setdefault(fu, [0] * ii)
        for cycle in range(birth, death):
            row[cycle % ii] += 1

    regs_used = {fu: max(row) for fu, row in pressure.items()}
    if check_capacity:
        resources = schedule.resources
        for fu, used in regs_used.items():
            # Two input-port LRFs per unit of the class.
            capacity = resources.units(fu) * 2 * lrf_entries_per_fu
            if used > capacity:
                raise RegisterPressureError(
                    f"{graph.name}: {fu.value} consumers need {used} LRF "
                    f"entries but only {capacity} exist"
                )
    return Allocation(regs_used, reads, writes)
