"""Microcode listing: render a compiled kernel like iscd's output.

One line per VLIW word of the steady-state main loop, one column per
functional unit, so a schedule can be inspected the way the Imagine
tools presented kernel microcode.
"""

from __future__ import annotations

from repro.isa.kernel_ir import FuClass
from repro.isa.vliw import CompiledKernel

#: Column layout: (class, unit index, header) per cluster slot.
_COLUMNS = (
    [(FuClass.ADD, i, f"ADD{i}") for i in range(3)]
    + [(FuClass.MUL, i, f"MUL{i}") for i in range(2)]
    + [(FuClass.DSQ, 0, "DSQ"), (FuClass.SP, 0, "SP"),
       (FuClass.COMM, 0, "COMM"), (FuClass.SB, 0, "SB0"),
       (FuClass.SB, 1, "SB1")]
)


def render_listing(kernel: CompiledKernel) -> str:
    """Text listing of the kernel's main-loop VLIW words."""
    width = max(8, max((len(slot.opcode) + 4
                        for word in kernel.schedule
                        for slot in word.slots), default=8))
    header = "cyc | " + " | ".join(
        name.ljust(width) for _, _, name in _COLUMNS)
    rule = "-" * len(header)
    lines = [
        f"kernel {kernel.name}: II={kernel.ii}, "
        f"{kernel.stages} stages, prologue {kernel.prologue_cycles}, "
        f"epilogue {kernel.epilogue_cycles}, "
        f"{kernel.microcode_words} microcode words",
        f"regs: " + ", ".join(
            f"{fu.value}={n}" for fu, n in sorted(
                kernel.regs_used.items(), key=lambda kv: kv[0].value)),
        rule, header, rule,
    ]
    for word in kernel.schedule:
        cells = []
        for fu, unit, _ in _COLUMNS:
            slot = next((s for s in word.slots
                         if s.fu is fu and s.unit == unit), None)
            text = f"{slot.opcode}.{slot.op}" if slot else "."
            cells.append(text.ljust(width))
        lines.append(f"{word.cycle:3d} | " + " | ".join(cells))
    lines.append(rule)
    occupancy = (sum(w.occupancy() for w in kernel.schedule)
                 / (kernel.ii * len(_COLUMNS)))
    lines.append(f"slot occupancy {occupancy * 100:.0f}%  "
                 f"({kernel.instructions_per_iteration} ops / "
                 f"{kernel.ii} cycles x {len(_COLUMNS)} units)")
    return "\n".join(lines)
