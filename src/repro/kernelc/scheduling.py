"""Modulo scheduling of kernel loops onto the cluster FU mix.

Implements iterative modulo scheduling (Rau-style): compute the
resource-constrained and recurrence-constrained lower bounds on the
initiation interval (II), then place operations into a modulo
reservation table at the smallest feasible II, evicting and retrying
when slots conflict.  The result is the software-pipelined main loop
the paper's kernel compiler produced, including the intra-cluster
switch write-back buses as a scheduled resource (communication
scheduling, see :mod:`repro.kernelc.commsched`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.isa.kernel_ir import FuClass, KernelGraph, Op, OPCODES

_SOURCE_OPCODES = {"input", "param", "const"}
#: Opcodes whose results are not routed over a write-back bus.
_NO_WRITEBACK = {"sbwrite", "spwrite"}


@dataclass(frozen=True)
class ClusterResources:
    """Schedulable units per FU class inside one cluster."""

    adders: int = 3
    multipliers: int = 2
    dsq_units: int = 1
    scratchpads: int = 1
    comm_units: int = 1
    stream_buffer_ports: int = 2
    writeback_buses: int = 8

    def units(self, fu: FuClass) -> int:
        return {
            FuClass.ADD: self.adders,
            FuClass.MUL: self.multipliers,
            FuClass.DSQ: self.dsq_units,
            FuClass.SP: self.scratchpads,
            FuClass.COMM: self.comm_units,
            FuClass.SB: self.stream_buffer_ports,
            FuClass.BUS: self.writeback_buses,
        }[fu]

    @property
    def fpus(self) -> int:
        return self.adders + self.multipliers + self.dsq_units


@dataclass(frozen=True)
class DepEdge:
    """Dependence ``src -> dst`` with result latency and iteration distance."""

    src: int
    dst: int
    latency: int
    distance: int


@dataclass
class ModuloSchedule:
    """A feasible modulo schedule.

    ``times`` maps op id to its absolute issue cycle; the modulo slot
    is ``times[op] % ii`` and the pipeline stage is ``times[op] // ii``.
    """

    ii: int
    times: dict[int, int]
    unit_assignment: dict[int, int]
    bus_assignment: dict[int, int]
    resources: ClusterResources

    @property
    def stages(self) -> int:
        if not self.times:
            return 1
        return max(self.times.values()) // self.ii + 1

    @property
    def span(self) -> int:
        if not self.times:
            return 0
        return max(self.times.values()) + 1


class ScheduleError(Exception):
    """Raised when no schedule exists within the II search limit."""


def dependence_edges(graph: KernelGraph) -> list[DepEdge]:
    """Extract scheduling dependences among schedulable ops."""
    schedulable = {op.ident for op in graph.schedulable_ops}
    edges = []
    for op in graph.schedulable_ops:
        for operand in op.operands:
            if operand.producer not in schedulable:
                continue
            producer = graph.op(operand.producer)
            edges.append(DepEdge(
                src=operand.producer,
                dst=op.ident,
                latency=producer.spec.latency,
                distance=operand.distance,
            ))
    return edges


def resource_mii(graph: KernelGraph, resources: ClusterResources) -> int:
    """Resource-constrained lower bound on II."""
    busy: dict[FuClass, int] = {}
    for op in graph.schedulable_ops:
        spec = op.spec
        busy[spec.fu] = busy.get(spec.fu, 0) + spec.issue_interval
        if op.opcode not in _NO_WRITEBACK:
            busy[FuClass.BUS] = busy.get(FuClass.BUS, 0) + 1
    mii = 1
    for fu, cycles in busy.items():
        mii = max(mii, math.ceil(cycles / resources.units(fu)))
    return mii


def recurrence_mii(graph: KernelGraph, ii_limit: int = 4096) -> int:
    """Recurrence-constrained lower bound on II.

    Found by binary search on II: an II is feasible for recurrences
    iff the graph with edge weights ``latency - II * distance`` has no
    positive-weight cycle.
    """
    edges = dependence_edges(graph)
    if not any(e.distance > 0 for e in edges):
        return 1
    nodes = sorted({op.ident for op in graph.schedulable_ops})

    def feasible(ii: int) -> bool:
        return not _has_positive_cycle(nodes, edges, ii)

    low, high = 1, ii_limit
    if not feasible(high):
        raise ScheduleError(
            f"{graph.name}: recurrence MII exceeds limit {ii_limit}")
    while low < high:
        mid = (low + high) // 2
        if feasible(mid):
            high = mid
        else:
            low = mid + 1
    return low


def _has_positive_cycle(nodes: list[int], edges: list[DepEdge],
                        ii: int) -> bool:
    """Bellman-Ford longest-path positive-cycle detection."""
    dist = {n: 0 for n in nodes}
    for iteration in range(len(nodes)):
        changed = False
        for edge in edges:
            weight = edge.latency - ii * edge.distance
            candidate = dist[edge.src] + weight
            if candidate > dist[edge.dst]:
                dist[edge.dst] = candidate
                changed = True
        if not changed:
            return False
    return True


def modulo_schedule(graph: KernelGraph,
                    resources: ClusterResources | None = None,
                    ii_search_limit: int = 512,
                    budget_factor: int = 8) -> ModuloSchedule:
    """Schedule ``graph`` at the smallest feasible II.

    Raises :class:`ScheduleError` if no II up to
    ``mii + ii_search_limit`` admits a schedule.
    """
    resources = resources or ClusterResources()
    ops = graph.schedulable_ops
    if not ops:
        return ModuloSchedule(1, {}, {}, {}, resources)
    edges = dependence_edges(graph)
    mii = max(resource_mii(graph, resources), recurrence_mii(graph))
    for ii in range(mii, mii + ii_search_limit):
        schedule = _try_schedule(graph, ops, edges, resources, ii,
                                 budget_factor)
        if schedule is not None:
            return schedule
    raise ScheduleError(
        f"{graph.name}: no schedule found for II in "
        f"[{mii}, {mii + ii_search_limit})")


def _heights(ops: list[Op], edges: list[DepEdge], ii: int) -> dict[int, int]:
    """Priority: longest latency-weighted path from each op to a sink."""
    height = {op.ident: 0 for op in ops}
    # Relax repeatedly; distances > 0 contribute negative II terms so
    # this converges (no positive cycles at a feasible II).
    for iteration in range(len(ops)):
        changed = False
        for edge in edges:
            candidate = height[edge.dst] + edge.latency - ii * edge.distance
            if candidate > height[edge.src]:
                height[edge.src] = candidate
                changed = True
        if not changed:
            break
    return height


@dataclass
class _ReservationTable:
    """Modulo reservation table for one candidate II."""

    ii: int
    resources: ClusterResources
    slots: dict[tuple[FuClass, int, int], int] = field(default_factory=dict)

    def _footprint(self, op: Op, time: int) -> list[tuple[FuClass, int]]:
        """(fu, modulo-slot) pairs the op occupies when issued at time."""
        spec = op.spec
        cells = [(spec.fu, (time + k) % self.ii)
                 for k in range(min(spec.issue_interval, self.ii))]
        if op.opcode not in _NO_WRITEBACK:
            cells.append((FuClass.BUS, (time + spec.latency) % self.ii))
        return cells

    def place(self, op: Op, time: int) -> dict[FuClass, int] | None:
        """Try to place ``op`` at ``time``; return unit choices or None."""
        chosen: dict[FuClass, int] = {}
        for fu, slot in self._footprint(op, time):
            unit = self._free_unit(fu, slot, chosen.get(fu))
            if unit is None:
                return None
            chosen[fu] = unit
        for fu, slot in self._footprint(op, time):
            self.slots[(fu, chosen[fu], slot)] = op.ident
        return chosen

    def _free_unit(self, fu: FuClass, slot: int,
                   pinned: int | None) -> int | None:
        candidates = [pinned] if pinned is not None else (
            range(self.resources.units(fu)))
        for unit in candidates:
            if (fu, unit, slot) not in self.slots:
                return unit
        return None

    def conflicting_ops(self, op: Op, time: int) -> set[int]:
        """Ops currently occupying any cell ``op``@``time`` needs."""
        out = set()
        for fu, slot in self._footprint(op, time):
            for unit in range(self.resources.units(fu)):
                holder = self.slots.get((fu, unit, slot))
                if holder is not None:
                    out.add(holder)
        return out

    def evict(self, op: Op, time: int) -> None:
        for fu, slot in self._footprint(op, time):
            for unit in range(self.resources.units(fu)):
                if self.slots.get((fu, unit, slot)) == op.ident:
                    del self.slots[(fu, unit, slot)]

    def units_of(self, op: Op, time: int) -> tuple[int, int]:
        """(fu unit, bus unit) holding ``op`` at ``time``."""
        fu_unit = bus_unit = -1
        spec = op.spec
        for unit in range(self.resources.units(spec.fu)):
            if self.slots.get((spec.fu, unit, time % self.ii)) == op.ident:
                fu_unit = unit
                break
        if op.opcode not in _NO_WRITEBACK:
            slot = (time + spec.latency) % self.ii
            for unit in range(self.resources.units(FuClass.BUS)):
                if self.slots.get((FuClass.BUS, unit, slot)) == op.ident:
                    bus_unit = unit
                    break
        return fu_unit, bus_unit


def _try_schedule(graph: KernelGraph, ops: list[Op], edges: list[DepEdge],
                  resources: ClusterResources, ii: int,
                  budget_factor: int) -> ModuloSchedule | None:
    by_id = {op.ident: op for op in ops}
    height = _heights(ops, edges, ii)
    preds: dict[int, list[DepEdge]] = {op.ident: [] for op in ops}
    for edge in edges:
        preds[edge.dst].append(edge)

    table = _ReservationTable(ii, resources)
    times: dict[int, int] = {}
    prev_time: dict[int, int] = {}
    worklist = sorted(height, key=lambda o: -height[o])
    budget = budget_factor * len(ops) * ii

    while worklist:
        if budget <= 0:
            return None
        budget -= 1
        # Highest-priority unscheduled op first.
        worklist.sort(key=lambda o: -height[o])
        ident = worklist.pop(0)
        op = by_id[ident]
        estart = 0
        for edge in preds[ident]:
            if edge.src in times:
                estart = max(estart,
                             times[edge.src] + edge.latency
                             - ii * edge.distance)
        placed = False
        for time in range(max(0, estart), max(0, estart) + ii):
            if table.place(op, time) is not None:
                times[ident] = time
                placed = True
                break
        if not placed:
            force_time = max(0, estart)
            if ident in prev_time:
                force_time = max(force_time, prev_time[ident] + 1)
            victims = table.conflicting_ops(op, force_time)
            for victim in victims:
                table.evict(by_id[victim], times[victim])
                prev_time[victim] = times[victim]
                del times[victim]
                worklist.append(victim)
            if table.place(op, force_time) is None:
                return None
            times[ident] = force_time
        prev_time[ident] = times[ident]
        # Re-queue successors whose dependence constraints now break.
        for edge in edges:
            if edge.src == ident and edge.dst in times:
                if (times[edge.dst] + ii * edge.distance
                        < times[ident] + edge.latency):
                    table.evict(by_id[edge.dst], times[edge.dst])
                    prev_time[edge.dst] = times[edge.dst]
                    del times[edge.dst]
                    worklist.append(edge.dst)

    # Normalize so the earliest issue is cycle 0.
    offset = min(times.values())
    times = {k: v - offset for k, v in times.items()}
    unit_assignment: dict[int, int] = {}
    bus_assignment: dict[int, int] = {}
    # Rebuild the table at normalized times to read unit choices.
    final = _ReservationTable(ii, resources)
    for ident in sorted(times, key=times.get):
        if final.place(by_id[ident], times[ident]) is None:
            return None
        fu_unit, bus_unit = final.units_of(by_id[ident], times[ident])
        unit_assignment[ident] = fu_unit
        bus_assignment[ident] = bus_unit
    schedule = ModuloSchedule(ii, times, unit_assignment, bus_assignment,
                              resources)
    _verify(graph, edges, schedule)
    return schedule


def _verify(graph: KernelGraph, edges: list[DepEdge],
            schedule: ModuloSchedule) -> None:
    """Assert all dependences hold; raise if the scheduler misbehaved."""
    for edge in edges:
        produced = schedule.times[edge.src] + edge.latency
        consumed = schedule.times[edge.dst] + schedule.ii * edge.distance
        if consumed < produced:
            raise ScheduleError(
                f"{graph.name}: dependence {edge.src}->{edge.dst} violated "
                f"(ready at {produced}, read at {consumed}, "
                f"II={schedule.ii})")
