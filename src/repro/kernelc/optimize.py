"""High-level kernel optimizations: copy propagation, DCE, unrolling.

These correspond to the "high-level optimizations such as
copy-propagation [and] loop unrolling" the paper attributes to the
KernelC compiler.  All passes are pure: they take a
:class:`~repro.isa.kernel_ir.KernelGraph` and return a new one.
"""

from __future__ import annotations

import math

from repro.isa.kernel_ir import KernelGraph, Op, Operand

_SOURCE_OPCODES = {"input", "param", "const"}
_SIDE_EFFECT_OPCODES = {"sbwrite", "spwrite", "comm"}


def copy_propagate(graph: KernelGraph) -> KernelGraph:
    """Rewire consumers of ``copy`` ops to read the copied value."""
    resolved: dict[int, Operand] = {}

    def resolve(operand: Operand) -> Operand:
        total_distance = operand.distance
        producer = operand.producer
        while graph.op(producer).opcode == "copy":
            inner = graph.op(producer).operands[0]
            total_distance += inner.distance
            producer = inner.producer
        return Operand(producer, total_distance)

    new_ops = []
    for op in graph.ops:
        if op.opcode == "copy":
            continue
        operands = tuple(resolve(o) for o in op.operands)
        new_ops.append(Op(op.ident, op.opcode, operands, op.name))
    return _rebuild(graph, new_ops)


def eliminate_dead_code(graph: KernelGraph) -> KernelGraph:
    """Drop ops whose results never reach an output or side effect."""
    live: set[int] = set()
    worklist = [op.ident for op in graph.ops
                if op.opcode in _SIDE_EFFECT_OPCODES]
    while worklist:
        ident = worklist.pop()
        if ident in live:
            continue
        live.add(ident)
        for operand in graph.op(ident).operands:
            worklist.append(operand.producer)
    new_ops = [op for op in graph.ops
               if op.ident in live or op.opcode in _SOURCE_OPCODES]
    return _rebuild(graph, new_ops)


def unroll(graph: KernelGraph, factor: int) -> KernelGraph:
    """Unroll the kernel loop body ``factor`` times.

    Instance ``k`` of op ``u`` at loop-carried distance ``d`` is read
    by instance ``k`` of a consumer as instance ``k - d`` when that is
    non-negative (same unrolled iteration) or as instance
    ``(k - d) mod factor`` of ``ceil((d - k) / factor)`` unrolled
    iterations earlier.
    """
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    if factor == 1:
        return graph

    # Sources are shared across unrolled instances (a parameter is the
    # same value every iteration); stream accesses and arithmetic are
    # replicated.
    id_map: dict[tuple[int, int], int] = {}
    new_ops: list[Op] = []

    # Two passes: assign ids first, then build ops.
    counter = 0
    for op in graph.ops:
        instances = 1 if op.opcode in _SOURCE_OPCODES else factor
        for k in range(instances):
            id_map[(op.ident, k)] = counter
            counter += 1
    for op in graph.ops:
        if op.opcode in _SOURCE_OPCODES:
            new_ops.append(Op(id_map[(op.ident, 0)], op.opcode, (), op.name))
            continue
        for k in range(factor):
            operands = []
            for operand in op.operands:
                producer_op = graph.op(operand.producer)
                if producer_op.opcode in _SOURCE_OPCODES:
                    operands.append(Operand(id_map[(operand.producer, 0)], 0))
                    continue
                shifted = k - operand.distance
                if shifted >= 0:
                    operands.append(
                        Operand(id_map[(operand.producer, shifted)], 0))
                else:
                    new_distance = math.ceil(-shifted / factor)
                    instance = shifted + new_distance * factor
                    operands.append(
                        Operand(id_map[(operand.producer, instance)],
                                new_distance))
            new_ops.append(Op(id_map[(op.ident, k)], op.opcode,
                              tuple(operands), op.name))

    def remap_list(idents: list[int], replicated: bool) -> list[int]:
        out = []
        for ident in idents:
            if replicated and graph.op(ident).opcode not in _SOURCE_OPCODES:
                out.extend(id_map[(ident, k)] for k in range(factor))
            else:
                out.append(id_map[(ident, 0)])
        return out

    result = KernelGraph(
        name=graph.name,
        ops=new_ops,
        inputs=remap_list(graph.inputs, replicated=False),
        outputs=remap_list(graph.outputs, replicated=True),
        params=remap_list(graph.params, replicated=False),
        consts=remap_list(graph.consts, replicated=False),
        elements_per_iteration=graph.elements_per_iteration * factor,
        description=graph.description,
    )
    result.validate()
    return result


def _rebuild(graph: KernelGraph, ops: list[Op]) -> KernelGraph:
    kept = {op.ident for op in ops}
    result = KernelGraph(
        name=graph.name,
        ops=ops,
        inputs=[i for i in graph.inputs if i in kept],
        outputs=[i for i in graph.outputs if i in kept],
        params=[i for i in graph.params if i in kept],
        consts=[i for i in graph.consts if i in kept],
        elements_per_iteration=graph.elements_per_iteration,
        description=graph.description,
    )
    result.validate()
    return result
