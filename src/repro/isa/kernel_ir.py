"""KernelC-like dataflow intermediate representation.

An Imagine kernel is a loop whose body consumes a fixed number of words
from each input stream, performs a fixed DAG of arithmetic operations,
and appends a fixed number of words to each output stream.  The paper's
KernelC language is replaced here by a Python builder API that produces
the same thing the real compiler front end produced: a dataflow graph of
typed operations, possibly with loop-carried dependences (values consumed
from a previous iteration), ready for modulo scheduling.

Example
-------
>>> b = KernelBuilder("saxpy")
>>> x = b.stream_input("x")
>>> y = b.stream_input("y")
>>> a = b.param("a")
>>> b.stream_output("out", b.op("fadd", b.op("fmul", a, x), y))
>>> kernel = b.build()
>>> kernel.op_count("fmul")
1
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FuClass(enum.Enum):
    """Functional-unit classes inside an Imagine arithmetic cluster.

    Each cluster has 3 ADD units, 2 MUL units, 1 DSQ (divide/square
    root) unit, 1 SP (scratchpad) unit, and 1 COMM (inter-cluster
    communication) unit.  SB is the pseudo-unit for stream-buffer
    (SRF port) accesses and BUS models the intra-cluster switch
    write-back buses used by communication scheduling.
    """

    ADD = "add"
    MUL = "mul"
    DSQ = "dsq"
    SP = "sp"
    COMM = "comm"
    SB = "sb"
    BUS = "bus"


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode.

    Attributes
    ----------
    name:
        Opcode mnemonic.
    fu:
        Functional-unit class that executes the opcode.
    latency:
        Result latency in cycles.
    issue_interval:
        Cycles the unit is busy per issue (1 for fully pipelined
        units; the DSQ unit is unpipelined).
    arith_ops:
        Number of arithmetic operations this opcode counts as for
        GOPS accounting (packed sub-word opcodes count more than 1).
    flops:
        Number of floating-point operations it counts as for GFLOPS.
    """

    name: str
    fu: FuClass
    latency: int
    issue_interval: int = 1
    arith_ops: int = 1
    flops: int = 0


def _specs() -> dict[str, OpSpec]:
    table = [
        # 32-bit integer / logical ops on the adders.
        OpSpec("iadd", FuClass.ADD, 2),
        OpSpec("isub", FuClass.ADD, 2),
        OpSpec("iabs", FuClass.ADD, 2),
        OpSpec("iand", FuClass.ADD, 2),
        OpSpec("ior", FuClass.ADD, 2),
        OpSpec("ixor", FuClass.ADD, 2),
        OpSpec("ishl", FuClass.ADD, 2),
        OpSpec("ishr", FuClass.ADD, 2),
        OpSpec("icmp", FuClass.ADD, 2),
        OpSpec("isel", FuClass.ADD, 2),
        OpSpec("imin", FuClass.ADD, 2),
        OpSpec("imax", FuClass.ADD, 2),
        # Packed sub-word ops: four 8-bit lanes or two 16-bit lanes
        # per 32-bit word on the adders, two 16-bit lanes on the
        # multipliers.
        OpSpec("padd8", FuClass.ADD, 2, arith_ops=4),
        OpSpec("psub8", FuClass.ADD, 2, arith_ops=4),
        OpSpec("pabs8", FuClass.ADD, 2, arith_ops=4),
        OpSpec("padd16", FuClass.ADD, 2, arith_ops=2),
        OpSpec("psub16", FuClass.ADD, 2, arith_ops=2),
        OpSpec("pabs16", FuClass.ADD, 2, arith_ops=2),
        OpSpec("pmin16", FuClass.ADD, 2, arith_ops=2),
        OpSpec("pmax16", FuClass.ADD, 2, arith_ops=2),
        OpSpec("psad8", FuClass.ADD, 2, arith_ops=4),
        # Floating-point add-class ops.
        OpSpec("fadd", FuClass.ADD, 4, flops=1),
        OpSpec("fsub", FuClass.ADD, 4, flops=1),
        OpSpec("fabs", FuClass.ADD, 4, flops=1),
        OpSpec("fcmp", FuClass.ADD, 4, flops=1),
        OpSpec("fmin", FuClass.ADD, 4, flops=1),
        OpSpec("fmax", FuClass.ADD, 4, flops=1),
        OpSpec("ftoi", FuClass.ADD, 4, flops=1),
        OpSpec("itof", FuClass.ADD, 4, flops=1),
        # Multiplier ops.
        OpSpec("imul", FuClass.MUL, 4),
        OpSpec("pmul16", FuClass.MUL, 4, arith_ops=2),
        OpSpec("fmul", FuClass.MUL, 4, flops=1),
        # Unpipelined divide / square-root unit.
        OpSpec("fdiv", FuClass.DSQ, 17, issue_interval=16, flops=1),
        OpSpec("fsqrt", FuClass.DSQ, 17, issue_interval=16, flops=1),
        OpSpec("frsq", FuClass.DSQ, 17, issue_interval=16, flops=1),
        OpSpec("idiv", FuClass.DSQ, 21, issue_interval=20),
        # Scratchpad: small indexed storage inside the cluster.  The
        # scratchpad access itself is not an arithmetic operation.
        OpSpec("spread", FuClass.SP, 2, arith_ops=0),
        OpSpec("spwrite", FuClass.SP, 1, arith_ops=0),
        # Inter-cluster communication: one word exchanged per issue.
        OpSpec("comm", FuClass.COMM, 2, arith_ops=0),
        # Stream-buffer (SRF port) accesses.
        OpSpec("sbread", FuClass.SB, 2, arith_ops=0),
        OpSpec("sbwrite", FuClass.SB, 1, arith_ops=0),
        # Value-routing pseudo-op used by copy propagation input.
        OpSpec("copy", FuClass.ADD, 1, arith_ops=0),
    ]
    return {spec.name: spec for spec in table}


#: Opcode table keyed by mnemonic.
OPCODES: dict[str, OpSpec] = _specs()


@dataclass(frozen=True)
class Operand:
    """Reference to the producer of an input value.

    ``distance`` is the loop-carried distance: 0 means the value is
    produced by the same iteration, 1 by the previous iteration, and
    so on.  External values (stream inputs, parameters, constants)
    are ops themselves, so every operand points at an op.
    """

    producer: int
    distance: int = 0


@dataclass
class Op:
    """One node in the kernel dataflow graph."""

    ident: int
    opcode: str
    operands: tuple[Operand, ...] = ()
    name: str | None = None

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.opcode]


# Pseudo opcodes for graph sources that occupy no functional unit.
_SOURCE_OPCODES = {"input", "param", "const"}


@dataclass
class KernelGraph:
    """A complete kernel: sources, operation DAG, and outputs.

    The graph describes **one iteration** of the kernel main loop.
    ``elements_per_iteration`` is how many stream elements each
    cluster consumes per iteration (usually 1; conv kernels that
    process pixel pairs use more).
    """

    name: str
    ops: list[Op]
    inputs: list[int]
    outputs: list[int]
    params: list[int]
    consts: list[int]
    elements_per_iteration: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        self._by_id = {op.ident: op for op in self.ops}

    def op(self, ident: int) -> Op:
        return self._by_id[ident]

    @property
    def schedulable_ops(self) -> list[Op]:
        """Ops that occupy a functional-unit slot (excludes sources)."""
        return [op for op in self.ops if op.opcode not in _SOURCE_OPCODES]

    def op_count(self, opcode: str) -> int:
        return sum(1 for op in self.ops if op.opcode == opcode)

    def fu_count(self, fu: FuClass) -> int:
        return sum(1 for op in self.schedulable_ops if op.spec.fu is fu)

    @property
    def arith_ops_per_iteration(self) -> int:
        """Arithmetic operations per iteration (for GOPS accounting)."""
        return sum(op.spec.arith_ops for op in self.schedulable_ops)

    @property
    def flops_per_iteration(self) -> int:
        return sum(op.spec.flops for op in self.schedulable_ops)

    @property
    def instructions_per_iteration(self) -> int:
        """FU instruction slots occupied per iteration (for IPC)."""
        return len(self.schedulable_ops)

    @property
    def words_in_per_iteration(self) -> int:
        return sum(1 for op in self.ops if op.opcode == "sbread")

    @property
    def words_out_per_iteration(self) -> int:
        return sum(1 for op in self.ops if op.opcode == "sbwrite")

    def validate(self) -> None:
        """Raise ``ValueError`` if the graph is malformed."""
        ids = set(self._by_id)
        for op in self.ops:
            for operand in op.operands:
                if operand.producer not in ids:
                    raise ValueError(
                        f"{self.name}: op {op.ident} reads undefined "
                        f"value {operand.producer}"
                    )
                if operand.distance < 0:
                    raise ValueError(
                        f"{self.name}: negative loop-carried distance "
                        f"on op {op.ident}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Same-iteration (distance-0) edges must form a DAG."""
        state: dict[int, int] = {}

        def visit(ident: int, stack: list[int]) -> None:
            state[ident] = 1
            stack.append(ident)
            for operand in self._by_id[ident].operands:
                if operand.distance != 0:
                    continue
                mark = state.get(operand.producer, 0)
                if mark == 1:
                    cycle = stack[stack.index(operand.producer):]
                    raise ValueError(
                        f"{self.name}: zero-distance dependence cycle "
                        f"through ops {cycle}"
                    )
                if mark == 0:
                    visit(operand.producer, stack)
            stack.pop()
            state[ident] = 2

        for op in self.ops:
            if state.get(op.ident, 0) == 0:
                visit(op.ident, [])


class Value:
    """Handle returned by :class:`KernelBuilder` methods.

    Wraps the producing op id plus a loop-carried distance so the
    builder API reads naturally: ``b.op("fadd", x, b.prev(acc))``.
    """

    __slots__ = ("ident", "distance")

    def __init__(self, ident: int, distance: int = 0) -> None:
        self.ident = ident
        self.distance = distance

    def as_operand(self) -> Operand:
        return Operand(self.ident, self.distance)


class KernelBuilder:
    """Builds :class:`KernelGraph` objects, the KernelC stand-in."""

    def __init__(self, name: str, elements_per_iteration: int = 1,
                 description: str = "") -> None:
        self.name = name
        self.elements_per_iteration = elements_per_iteration
        self.description = description
        self._ops: list[Op] = []
        self._inputs: list[int] = []
        self._outputs: list[int] = []
        self._params: list[int] = []
        self._consts: list[int] = []

    def _new(self, opcode: str, operands: tuple[Operand, ...] = (),
             name: str | None = None) -> Value:
        ident = len(self._ops)
        self._ops.append(Op(ident, opcode, operands, name))
        return Value(ident)

    def stream_input(self, name: str) -> Value:
        """Read one word from an input stream each iteration."""
        source = self._new("input", name=name)
        self._inputs.append(source.ident)
        return self._new("sbread", (source.as_operand(),), name=name)

    def stream_output(self, name: str, value: Value) -> Value:
        """Append one word to an output stream each iteration."""
        out = self._new("sbwrite", (value.as_operand(),), name=name)
        self._outputs.append(out.ident)
        return out

    def param(self, name: str) -> Value:
        """A scalar kernel parameter delivered via a UCR register."""
        value = self._new("param", name=name)
        self._params.append(value.ident)
        return value

    def const(self, name: str = "const") -> Value:
        """A compile-time constant (costs nothing at run time)."""
        value = self._new("const", name=name)
        self._consts.append(value.ident)
        return value

    def op(self, opcode: str, *args: Value, name: str | None = None) -> Value:
        if opcode not in OPCODES:
            raise ValueError(f"unknown opcode {opcode!r}")
        if opcode in _SOURCE_OPCODES:
            raise ValueError(f"use the dedicated builder method for {opcode!r}")
        operands = tuple(arg.as_operand() for arg in args)
        return self._new(opcode, operands, name)

    def prev(self, value: Value, distance: int = 1) -> Value:
        """The given value as produced ``distance`` iterations earlier."""
        return Value(value.ident, value.distance + distance)

    def accumulate(self, opcode: str, value: Value, distance: int = 1,
                   name: str | None = None) -> Value:
        """Self-recurrent accumulator: ``acc = op(value, acc@-distance)``.

        Creates the loop-carried cycle that bounds II at
        ``ceil(latency / distance)`` -- the ILP-limiting recurrences
        the paper's kernel analysis discusses.
        """
        result = self._new(opcode, (value.as_operand(),), name)
        op = self._ops[result.ident]
        self._ops[result.ident] = Op(
            op.ident, op.opcode,
            op.operands + (Operand(result.ident, distance),), op.name)
        return result

    def reduce(self, opcode: str, values: list[Value]) -> Value:
        """Balanced reduction tree over ``values`` with ``opcode``."""
        if not values:
            raise ValueError("cannot reduce an empty value list")
        level = list(values)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.op(opcode, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def build(self) -> KernelGraph:
        graph = KernelGraph(
            name=self.name,
            ops=list(self._ops),
            inputs=list(self._inputs),
            outputs=list(self._outputs),
            params=list(self._params),
            consts=list(self._consts),
            elements_per_iteration=self.elements_per_iteration,
            description=self.description,
        )
        graph.validate()
        return graph
