"""Compiled-kernel representation: VLIW words and schedules.

The kernel compiler (:mod:`repro.kernelc`) lowers a
:class:`~repro.isa.kernel_ir.KernelGraph` into a software-pipelined
VLIW schedule.  This module holds the result: the per-cycle VLIW words
of the main loop and the derived static timing facts that the cluster
model uses to charge cycles (prologue, II, epilogue, per-iteration
operation counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.isa.kernel_ir import FuClass, KernelGraph, OPCODES

#: Issue slots per cluster by FU class.  Mirrors the unit counts in
#: :class:`repro.kernelc.scheduling.ClusterResources` (3 ADD, 2 MUL,
#: 1 DSQ, 1 SP, 1 COMM, 2 SB ports); duplicated here because kernelc
#: imports this module.  BUS is a routing resource, not an issue slot.
CLUSTER_ISSUE_SLOTS: dict[FuClass, int] = {
    FuClass.ADD: 3,
    FuClass.MUL: 2,
    FuClass.DSQ: 1,
    FuClass.SP: 1,
    FuClass.COMM: 1,
    FuClass.SB: 2,
}


@dataclass(frozen=True)
class Slot:
    """One operation placed in a VLIW word: ``(fu, unit_index, op_id)``."""

    fu: FuClass
    unit: int
    op: int
    opcode: str


@dataclass
class VliwWord:
    """All operations issued in one cycle of the kernel main loop."""

    cycle: int
    slots: list[Slot] = field(default_factory=list)

    def occupancy(self) -> int:
        return len(self.slots)


@dataclass(frozen=True)
class KernelTiming:
    """Cycle breakdown for one kernel invocation on one stream batch.

    The four categories match Figure 6 of the paper:

    * ``operations`` -- the floor: main-loop FPU work at ideal packing.
    * ``main_loop_overhead`` -- extra main-loop cycles from limited ILP
      and load imbalance between FU types (II above the ideal floor).
    * ``non_main_loop`` -- prologue, epilogue, outer-loop blocks, and
      pipeline-priming iterations.
    * ``cluster_stalls`` is accounted separately by the SRF model and
      is therefore not a field here.
    """

    iterations: int
    operations: int
    main_loop_overhead: int
    non_main_loop: int

    @property
    def busy_cycles(self) -> int:
        return self.operations + self.main_loop_overhead + self.non_main_loop

    @property
    def main_loop_cycles(self) -> int:
        return self.operations + self.main_loop_overhead


@dataclass
class CompiledKernel:
    """Output of the kernel compiler for one kernel.

    Attributes mirror what Imagine's iscd scheduler reported: the
    initiation interval (II) of the software-pipelined main loop, the
    number of pipeline stages, prologue/epilogue lengths, microcode
    footprint, and per-iteration operation/word counts used for GOPS,
    IPC and bandwidth accounting.
    """

    name: str
    graph: KernelGraph
    ii: int
    stages: int
    schedule: list[VliwWord]
    prologue_cycles: int
    epilogue_cycles: int
    outer_overhead_cycles: int
    microcode_words: int
    regs_used: dict[FuClass, int]
    lrf_reads_per_iteration: int
    lrf_writes_per_iteration: int
    #: Memoized :meth:`fu_busy_per_iteration` result (schedules are
    #: immutable after compilation, so computing it once is safe).
    _fu_busy: dict[FuClass, int] | None = field(
        default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Derived per-iteration facts.
    # ------------------------------------------------------------------
    @property
    def arith_ops_per_iteration(self) -> int:
        return self.graph.arith_ops_per_iteration

    @property
    def flops_per_iteration(self) -> int:
        return self.graph.flops_per_iteration

    @property
    def instructions_per_iteration(self) -> int:
        return self.graph.instructions_per_iteration

    @property
    def words_in_per_iteration(self) -> int:
        return self.graph.words_in_per_iteration

    @property
    def words_out_per_iteration(self) -> int:
        return self.graph.words_out_per_iteration

    @property
    def sp_accesses_per_iteration(self) -> int:
        return self.graph.fu_count(FuClass.SP)

    @property
    def comm_ops_per_iteration(self) -> int:
        return self.graph.fu_count(FuClass.COMM)

    @property
    def elements_per_iteration(self) -> int:
        return self.graph.elements_per_iteration

    @property
    def lrf_accesses_per_iteration(self) -> int:
        return self.lrf_reads_per_iteration + self.lrf_writes_per_iteration

    def fpu_instructions_per_iteration(self) -> int:
        """Instructions on the six FPUs (ADD/MUL/DSQ) per iteration."""
        graph = self.graph
        return (graph.fu_count(FuClass.ADD) + graph.fu_count(FuClass.MUL)
                + graph.fu_count(FuClass.DSQ))

    def fu_busy_per_iteration(self) -> dict[FuClass, int]:
        """Unit-busy cycles per FU class in one main-loop iteration.

        Each scheduled slot keeps its unit busy for the opcode's issue
        interval, capped at the II (a unit cannot be busier than the
        loop is long).  Summed over the schedule this is the
        *occupancy* detail behind Figure 7: per-class busy cycles do
        not tile wall-clock time (several units run concurrently), so
        the profiler reports them as an annotation next to the
        exclusive busy/stall/idle tree, never inside it.
        """
        busy = self._fu_busy
        if busy is None:
            busy = {cls: 0 for cls in CLUSTER_ISSUE_SLOTS}
            for word in self.schedule:
                for slot in word.slots:
                    if slot.fu in busy:
                        busy[slot.fu] += min(
                            OPCODES[slot.opcode].issue_interval, self.ii)
            self._fu_busy = busy
        return busy

    # ------------------------------------------------------------------
    # Timing.
    # ------------------------------------------------------------------
    def iterations_for(self, stream_elements: int, num_clusters: int) -> int:
        """Main-loop iterations to consume ``stream_elements`` elements."""
        per_iteration = self.elements_per_iteration * num_clusters
        return max(1, math.ceil(stream_elements / per_iteration))

    def timing(self, stream_elements: int, num_clusters: int,
               fpus_per_cluster: int = 6) -> KernelTiming:
        """Cycle breakdown for an invocation over ``stream_elements``.

        ``operations`` is the Figure-6 floor: the kernel's FPU
        instructions executed at one instruction per FPU per cycle.
        Everything the real schedule adds on top of that inside the
        main loop is ``main_loop_overhead``; prologue, epilogue,
        priming iterations and the outer-loop block are
        ``non_main_loop``.
        """
        iterations = self.iterations_for(stream_elements, num_clusters)
        main_cycles = iterations * self.ii
        floor = math.ceil(
            iterations * self.fpu_instructions_per_iteration()
            / fpus_per_cluster
        )
        floor = min(floor, main_cycles)
        return KernelTiming(
            iterations=iterations,
            operations=floor,
            main_loop_overhead=main_cycles - floor,
            non_main_loop=(self.prologue_cycles + self.epilogue_cycles
                           + self.outer_overhead_cycles),
        )

    def validate(self) -> None:
        """Check schedule structural invariants (used by tests)."""
        if self.ii < 1:
            raise ValueError(f"{self.name}: II must be positive")
        if len(self.schedule) != self.ii:
            raise ValueError(
                f"{self.name}: schedule has {len(self.schedule)} words "
                f"but II={self.ii}"
            )
        slot_budget = sum(CLUSTER_ISSUE_SLOTS.values())
        seen: set[tuple[FuClass, int, int]] = set()
        for word in self.schedule:
            if word.occupancy() > slot_budget:
                raise ValueError(
                    f"{self.name}: word at cycle {word.cycle} issues "
                    f"{word.occupancy()} operations but a cluster has "
                    f"only {slot_budget} issue slots"
                )
            for slot in word.slots:
                limit = CLUSTER_ISSUE_SLOTS.get(slot.fu, 0)
                if not 0 <= slot.unit < limit:
                    raise ValueError(
                        f"{self.name}: op {slot.op} ({slot.opcode}) on "
                        f"{slot.fu.name} unit {slot.unit}, but a cluster "
                        f"has {limit} {slot.fu.name} unit(s)"
                    )
                key = (slot.fu, slot.unit, word.cycle)
                if key in seen:
                    raise ValueError(
                        f"{self.name}: unit {slot.fu}/{slot.unit} "
                        f"double-booked at cycle {word.cycle}"
                    )
                seen.add(key)
                if OPCODES[slot.opcode].fu is not slot.fu:
                    raise ValueError(
                        f"{self.name}: op {slot.op} ({slot.opcode}) "
                        f"scheduled on wrong unit class {slot.fu}"
                    )
