"""Instruction-set definitions for the Imagine reproduction.

Three layers of "instructions" exist in the Imagine system and each has a
module here:

* :mod:`repro.isa.kernel_ir` -- the KernelC-like dataflow IR that kernel
  inner loops are written in before compilation.
* :mod:`repro.isa.vliw` -- the compiled form: VLIW words and whole-kernel
  schedules as produced by the kernel compiler.
* :mod:`repro.isa.stream_ops` -- stream-level instructions issued by the
  host processor to the stream controller (loads, stores, kernel
  invocations, descriptor-register writes, ...).
"""

from repro.isa.kernel_ir import FuClass, KernelBuilder, KernelGraph, Op, OPCODES, OpSpec
from repro.isa.stream_ops import StreamInstruction, StreamOpType
from repro.isa.vliw import CompiledKernel, VliwWord

__all__ = [
    "FuClass",
    "KernelBuilder",
    "KernelGraph",
    "Op",
    "OPCODES",
    "OpSpec",
    "StreamInstruction",
    "StreamOpType",
    "CompiledKernel",
    "VliwWord",
]
