"""Stream-level instruction set.

These are the instructions the host processor writes into the stream
controller's 32-slot scoreboard.  Table 4 of the paper histograms them
per application, so the taxonomy here follows the paper's columns
exactly: stream ops (kernel + restart, memory), register ops (SDR /
MAR / UCR writes, moves) and miscellaneous ops (microcode loads,
synchronization).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class StreamOpType(enum.Enum):
    """Stream-instruction categories, matching Table 4's columns."""

    KERNEL = "kernel"
    RESTART = "restart"
    MEM_LOAD = "mem_load"
    MEM_STORE = "mem_store"
    SDR_WRITE = "sdr_write"
    MAR_WRITE = "mar_write"
    UCR_WRITE = "ucr_write"
    MOVE = "move"
    MICROCODE_LOAD = "microcode_load"
    SYNC = "sync"
    HOST_READ = "host_read"

    @property
    def is_stream_op(self) -> bool:
        return self in (StreamOpType.KERNEL, StreamOpType.RESTART,
                        StreamOpType.MEM_LOAD, StreamOpType.MEM_STORE)

    @property
    def is_register_op(self) -> bool:
        return self in (StreamOpType.SDR_WRITE, StreamOpType.MAR_WRITE,
                        StreamOpType.UCR_WRITE, StreamOpType.MOVE)

    @property
    def is_memory(self) -> bool:
        return self in (StreamOpType.MEM_LOAD, StreamOpType.MEM_STORE)

    @property
    def is_kernel(self) -> bool:
        return self in (StreamOpType.KERNEL, StreamOpType.RESTART)

    @property
    def is_misc(self) -> bool:
        return self in (StreamOpType.MICROCODE_LOAD, StreamOpType.SYNC,
                        StreamOpType.HOST_READ)


_ids = itertools.count()


@dataclass
class StreamInstruction:
    """One stream instruction as dispatched to the scoreboard.

    Attributes
    ----------
    op:
        Instruction category.
    deps:
        Scoreboard dependencies (indices of earlier instructions in
        the program) encoded by the stream compiler.  The instruction
        may not begin execution until all of them have completed.
    kernel:
        Kernel name for KERNEL / RESTART / MICROCODE_LOAD.
    stream_elements:
        Length in elements for kernel ops; length in words for memory
        ops (an element may be several words; ``words`` carries that).
    words:
        Words transferred for memory ops / SRF traffic for kernels.
    pattern:
        Memory access pattern object (``repro.memsys.patterns``) for
        memory ops.
    sdr / mar / ucr:
        Descriptor-register indices touched by register ops.
    host_dependency:
        True when the *host* must read this instruction's result
        before issuing further instructions (serializes the host).
    tag:
        Free-form label used by reports.
    """

    op: StreamOpType
    deps: list[int] = field(default_factory=list)
    kernel: str | None = None
    stream_elements: int = 0
    words: int = 0
    pattern: Any = None
    sdr: int | None = None
    mar: int | None = None
    ucr: int | None = None
    host_dependency: bool = False
    tag: str = ""
    index: int = -1

    def __post_init__(self) -> None:
        if self.index < 0:
            self.index = next(_ids)


def histogram(instructions: list[StreamInstruction]) -> dict[str, int]:
    """Count instructions per Table-4 column.

    Returns a dict with the paper's columns: ``kernel`` (kernel +
    restart), ``memory``, ``sdr_write``, ``mar_write``, ``ucr_write``,
    ``move``, ``misc`` and ``total``.
    """
    counts = {
        "kernel": 0,
        "memory": 0,
        "sdr_write": 0,
        "mar_write": 0,
        "ucr_write": 0,
        "move": 0,
        "misc": 0,
    }
    for instr in instructions:
        if instr.op.is_kernel:
            counts["kernel"] += 1
        elif instr.op.is_memory:
            counts["memory"] += 1
        elif instr.op is StreamOpType.SDR_WRITE:
            counts["sdr_write"] += 1
        elif instr.op is StreamOpType.MAR_WRITE:
            counts["mar_write"] += 1
        elif instr.op is StreamOpType.UCR_WRITE:
            counts["ucr_write"] += 1
        elif instr.op is StreamOpType.MOVE:
            counts["move"] += 1
        else:
            counts["misc"] += 1
    counts["total"] = sum(counts.values())
    return counts
