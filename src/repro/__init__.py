"""repro: a reproduction of "Evaluating the Imagine Stream Architecture".

The package models the complete Imagine stream processing system from
the ISCA 2004 evaluation paper: the chip (8 SIMD VLIW clusters, a
two-level LRF/SRF register hierarchy, SDRAM memory system, stream
controller), its software system (a KernelC-like kernel compiler with
software pipelining and a StreamC-like stream compiler with
stripmining and SRF allocation), the development board's host
interface, and the paper's entire evaluation: micro-benchmarks,
kernels, and the DEPTH / MPEG / QRD / RTSL applications.

Quickstart (the :mod:`repro.engine` session is the front door for
running simulations -- parallel across processes, answered from a
content-addressed result cache)::

    from repro import RunRequest, Session, SessionConfig

    with Session(config=SessionConfig(jobs=4)) as session:
        result = session.run(RunRequest(app="depth"))
    print(result.summary())
"""

from repro.core import (
    BoardConfig,
    CycleCategory,
    EnergyModel,
    ImagineProcessor,
    MachineConfig,
    Metrics,
    PowerReport,
    RunResult,
)
from repro.isa import CompiledKernel, KernelBuilder
from repro.kernelc import compile_kernel

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy so that ``import repro`` stays light and the engine (which
    # itself imports repro for the code salt) avoids a cycle.
    if name in ("Session", "SessionConfig", "RunRequest",
                "RunHandle", "BACKENDS"):
        import repro.engine as engine

        return getattr(engine, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BoardConfig",
    "CycleCategory",
    "EnergyModel",
    "ImagineProcessor",
    "MachineConfig",
    "Metrics",
    "PowerReport",
    "RunHandle",
    "RunRequest",
    "RunResult",
    "Session",
    "SessionConfig",
    "BACKENDS",
    "CompiledKernel",
    "KernelBuilder",
    "compile_kernel",
    "__version__",
]
