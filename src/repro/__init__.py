"""repro: a reproduction of "Evaluating the Imagine Stream Architecture".

The package models the complete Imagine stream processing system from
the ISCA 2004 evaluation paper: the chip (8 SIMD VLIW clusters, a
two-level LRF/SRF register hierarchy, SDRAM memory system, stream
controller), its software system (a KernelC-like kernel compiler with
software pipelining and a StreamC-like stream compiler with
stripmining and SRF allocation), the development board's host
interface, and the paper's entire evaluation: micro-benchmarks,
kernels, and the DEPTH / MPEG / QRD / RTSL applications.

Quickstart::

    from repro import ImagineProcessor, BoardConfig
    from repro.apps import depth

    app = depth.build(image_height=64, image_width=128)
    processor = ImagineProcessor(board=BoardConfig.hardware(),
                                 kernels=app.kernels)
    result = processor.run(app.image)
    print(result.summary())
"""

from repro.core import (
    BoardConfig,
    CycleCategory,
    EnergyModel,
    ImagineProcessor,
    MachineConfig,
    Metrics,
    PowerReport,
    RunResult,
)
from repro.isa import CompiledKernel, KernelBuilder
from repro.kernelc import compile_kernel

__version__ = "1.0.0"

__all__ = [
    "BoardConfig",
    "CycleCategory",
    "EnergyModel",
    "ImagineProcessor",
    "MachineConfig",
    "Metrics",
    "PowerReport",
    "RunResult",
    "CompiledKernel",
    "KernelBuilder",
    "compile_kernel",
    "__version__",
]
