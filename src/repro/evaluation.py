"""One-call reproduction of the paper's entire evaluation.

``run_full_evaluation()`` regenerates every table and figure (the
same code paths the individual benchmarks use) and returns them as a
name -> rendered-text mapping; ``python -m repro evaluate`` prints
them in the paper's order.  This is the "reproduce the paper" button.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.analysis import kernel_breakdown, measure_kernel
from repro.analysis.breakdown import application_breakdown
from repro.analysis.power_compare import power_efficiency_comparison
from repro.analysis.report import render_breakdown, render_table
from repro.apps import depth, mpeg, qrd, rtsl, run_app
from repro.core import BoardConfig, MachineConfig
from repro.kernels import KERNEL_LIBRARY
from repro.kernels.library import TABLE2_KERNELS
from repro.workloads.microbench import run_all_microbenchmarks
from repro.workloads.streamlen import (
    MEMORY_PATTERNS,
    kernel_length_sweep,
    memory_length_sweep,
)

_APP_BUILDERS = {"DEPTH": depth.build, "MPEG": mpeg.build,
                 "QRD": qrd.build, "RTSL": rtsl.build}


class Evaluation:
    """Caches the expensive shared pieces (app runs) across sections."""

    def __init__(self, machine: MachineConfig | None = None,
                 board: BoardConfig | None = None) -> None:
        self.machine = machine or MachineConfig()
        self.board = board or BoardConfig.hardware()
        self._bundles = {}
        self._results = {}

    def bundle(self, name: str):
        if name not in self._bundles:
            self._bundles[name] = _APP_BUILDERS[name]()
        return self._bundles[name]

    def result(self, name: str, mode: str = "hardware"):
        key = (name, mode)
        if key not in self._results:
            board = (self.board if mode == "hardware"
                     else BoardConfig.isim())
            self._results[key] = run_app(self.bundle(name),
                                         board=board)
        return self._results[key]

    # ------------------------------------------------------------------
    # Sections.
    # ------------------------------------------------------------------
    def table1(self) -> str:
        rows = [[r.component, r.achieved, r.theoretical, r.unit,
                 r.power_watts]
                for r in run_all_microbenchmarks(self.machine,
                                                 self.board)]
        return render_table("Table 1: component peaks",
                            ["component", "achieved", "theoretical",
                             "unit", "W"], rows)

    def table2(self) -> str:
        rows = []
        for name in TABLE2_KERNELS:
            row = measure_kernel(KERNEL_LIBRARY[name],
                                 machine=self.machine)
            rows.append([name, f"{row.rate:.2f} {row.rate_unit}",
                         row.lrf_gbytes, row.srf_gbytes,
                         f"{row.ipc:.1f}", row.power_watts])
        return render_table("Table 2: kernels",
                            ["kernel", "ALU", "LRF GB/s", "SRF GB/s",
                             "IPC", "W"], rows)

    def figure6(self) -> str:
        return render_breakdown(
            "Figure 6: kernel breakdown",
            {name: kernel_breakdown(KERNEL_LIBRARY[name],
                                    machine=self.machine)
             for name in TABLE2_KERNELS})

    def figures7_8(self) -> str:
        lengths = [32, 256, 2048]
        parts = []
        for title, configs in (
                ("Figure 7 (prologue 64)",
                 [(m, 64) for m in (8, 64, 256)]),
                ("Figure 8 (main loop 32)",
                 [(32, p) for p in (8, 64, 256)])):
            rows = []
            for main, prologue in configs:
                points = kernel_length_sweep(
                    main, prologue, lengths, invocations=16,
                    machine=self.machine, board=self.board)
                rows.append([f"main {main} / prologue {prologue}"]
                            + [p.gops for p in points])
            parts.append(render_table(
                title, ["config"] + [str(n) for n in lengths], rows))
        return "\n\n".join(parts)

    def figures9_10(self) -> str:
        lengths = [64, 1024, 8192]
        parts = []
        for ags in (1, 2):
            points = memory_length_sweep(
                lengths, ags, loads_per_point=6,
                machine=self.machine, board=self.board)
            table = {name: [] for name in MEMORY_PATTERNS}
            for point in points:
                table[point.pattern].append(point.gbytes_per_sec)
            parts.append(render_table(
                f"Figure {8 + ags}: memory bandwidth, {ags} AG(s)",
                ["pattern"] + [str(n) for n in lengths],
                [[k] + v for k, v in table.items()]))
        return "\n\n".join(parts)

    def table3(self) -> str:
        rows = []
        for name in _APP_BUILDERS:
            result = self.result(name)
            bundle = self.bundle(name)
            metrics = result.metrics
            rows.append([
                name,
                f"{metrics.gflops:.2f} GFLOPS" if name == "QRD"
                else f"{metrics.gops:.2f} GOPS",
                f"{metrics.ipc:.1f}",
                f"{bundle.throughput(result.seconds):.1f} "
                f"{bundle.work_name}/s",
                result.power.watts])
        return render_table("Table 3: applications",
                            ["app", "ALU", "IPC", "rate", "W"], rows)

    def figure11(self) -> str:
        return render_breakdown(
            "Figure 11: application breakdown",
            {name: application_breakdown(self.result(name, "isim"))
             for name in _APP_BUILDERS})

    def tables4_5(self) -> str:
        rows4, rows5 = [], []
        for name in _APP_BUILDERS:
            image = self.bundle(name).image
            metrics = self.result(name).metrics
            histogram = image.histogram()
            rows4.append([name, histogram["kernel"],
                          histogram["memory"], histogram["total"],
                          f"{image.sdr_reuse:.1f}x",
                          f"{metrics.host_mips:.2f}"])
            rows5.append([name,
                          f"{metrics.average_kernel_duration:.0f}",
                          f"{metrics.average_kernel_stream_length:.0f}",
                          f"{metrics.average_memory_stream_length:.0f}"])
        return "\n\n".join([
            render_table("Table 4: stream operations",
                         ["app", "kernel", "memory", "total",
                          "SDR reuse", "MIPS"], rows4),
            render_table("Table 5: cluster characteristics",
                         ["app", "kernel cycles", "kernel stream",
                          "memory stream"], rows5)])

    def table6(self) -> str:
        rows = [[name,
                 f"{self.result(name, 'hardware').cycles / 1e6:.3f} M",
                 f"{self.result(name, 'isim').cycles / 1e6:.3f} M",
                 f"{self.result(name, 'hardware').cycles / self.result(name, 'isim').cycles:.3f}"]
                for name in _APP_BUILDERS]
        return render_table("Table 6: lab vs ISIM",
                            ["app", "lab", "ISIM", "ratio"], rows)

    def power(self) -> str:
        rows = [[r.processor, r.pj_per_flop, r.technology]
                for r in power_efficiency_comparison(self.machine,
                                                     self.board)]
        return render_table("Section 5.5: power efficiency",
                            ["processor", "pJ/FLOP", "technology"],
                            rows, floatfmt="{:.1f}")

    def targets(self) -> str:
        """Counter-registry probes vs their paper targets, per app."""
        from repro.obs.registry import registry_from_result

        rows = []
        for name in _APP_BUILDERS:
            registry = registry_from_result(self.result(name))
            for probe in registry:
                if probe.target is None:
                    continue
                rows.append([
                    name, probe.name,
                    f"{probe.value:.2f} {probe.unit}",
                    f"{probe.target.expected:.2f}",
                    f"±{probe.target.rel_tolerance * 100:.0f}%",
                    probe.target.source,
                    "ok" if probe.within_target else "DRIFT"])
        return render_table(
            "Paper targets: measured vs expected",
            ["app", "probe", "measured", "expected", "tolerance",
             "source", "status"], rows)


#: Section name -> generator method, in the paper's order.
SECTIONS: dict[str, Callable[[Evaluation], str]] = {
    "table1": Evaluation.table1,
    "table2": Evaluation.table2,
    "figure6": Evaluation.figure6,
    "figures7_8": Evaluation.figures7_8,
    "figures9_10": Evaluation.figures9_10,
    "table3": Evaluation.table3,
    "figure11": Evaluation.figure11,
    "tables4_5": Evaluation.tables4_5,
    "table6": Evaluation.table6,
    "power": Evaluation.power,
    "targets": Evaluation.targets,
}


def run_full_evaluation(machine: MachineConfig | None = None,
                        board: BoardConfig | None = None,
                        sections: list[str] | None = None
                        ) -> dict[str, str]:
    """Regenerate the paper's evaluation; returns section -> text."""
    evaluation = Evaluation(machine, board)
    chosen = sections or list(SECTIONS)
    unknown = set(chosen) - set(SECTIONS)
    if unknown:
        raise ValueError(f"unknown sections: {sorted(unknown)}")
    return {name: SECTIONS[name](evaluation) for name in chosen}
