"""One-call reproduction of the paper's entire evaluation.

``run_full_evaluation()`` regenerates every table and figure (the
same code paths the individual benchmarks use) and returns them as a
name -> rendered-text mapping; ``python -m repro evaluate`` prints
them in the paper's order.  This is the "reproduce the paper" button.

The application runs behind Tables 3-6 / Figure 11 go through the
:mod:`repro.engine` session: pass ``jobs=N`` to shard them across
worker processes and ``cache=True`` to serve repeats from the
content-addressed result cache.  Output is byte-identical whatever
the job count or cache temperature -- the engine only reorders
scheduling, never simulated behaviour.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.analysis import kernel_breakdown, measure_kernel
from repro.analysis.breakdown import application_breakdown
from repro.analysis.power_compare import power_efficiency_comparison
from repro.analysis.report import render_breakdown, render_table
from repro.core import BoardConfig, MachineConfig
from repro.engine import Session, SessionConfig, build_app
from repro.engine.catalog import APP_NAMES
from repro.kernels import KERNEL_LIBRARY
from repro.kernels.library import TABLE2_KERNELS
from repro.workloads.microbench import run_all_microbenchmarks
from repro.workloads.streamlen import (
    MEMORY_PATTERNS,
    kernel_length_sweep,
    memory_length_sweep,
)

#: Display names (the paper's capitalization), catalog order.
_APP_DISPLAY = tuple(name.upper() for name in APP_NAMES)

#: Board modes each app-backed section needs (used for prefetching).
_SECTION_MODES = {
    "table3": ("hardware",),
    "figure11": ("isim",),
    "tables4_5": ("hardware",),
    "table6": ("hardware", "isim"),
    "targets": ("hardware",),
}


class Evaluation:
    """Caches the expensive shared pieces (app runs) across sections.

    All application simulations flow through one engine
    :class:`~repro.engine.Session` (supplied or owned), so they can be
    sharded across processes and answered from the result cache.
    """

    def __init__(self, machine: MachineConfig | None = None,
                 board: BoardConfig | None = None,
                 session: Session | None = None,
                 history=None) -> None:
        self.machine = machine or MachineConfig()
        self.board = board or BoardConfig.hardware()
        self.session = session
        self._owns_session = session is None
        if self.session is None:
            # ``history`` only configures an owned session; a supplied
            # session keeps whatever history store it was built with.
            self.session = Session(config=SessionConfig(
                jobs=1, cache=False, history=history))
        self._bundles = {}
        self._handles = {}
        self._results = {}

    def profile(self, name: str, mode: str = "hardware") -> dict:
        """Cycle-accounting profile of one cached app run
        (``repro.profile-report/1``)."""
        from repro.obs.profile import build_profile

        return build_profile(self.result(name, mode))

    def close(self) -> None:
        if self._owns_session:
            self.session.close()

    def bundle(self, name: str):
        if name not in self._bundles:
            self._bundles[name] = build_app(name.lower())
        return self._bundles[name]

    def _mode_board(self, mode: str) -> BoardConfig:
        return self.board if mode == "hardware" else BoardConfig.isim()

    def _handle(self, name: str, mode: str):
        key = (name, mode)
        if key not in self._handles:
            self._handles[key] = self.session.submit_bundle(
                self.bundle(name), machine=self.machine,
                board=self._mode_board(mode))
        return self._handles[key]

    def prefetch(self, sections: list[str] | None = None) -> None:
        """Submit every app run the chosen sections need, so a
        parallel session shards them instead of running on demand."""
        modes: set[str] = set()
        for section in sections or list(_SECTION_MODES):
            modes.update(_SECTION_MODES.get(section, ()))
        for mode in sorted(modes):
            for name in _APP_DISPLAY:
                self._handle(name, mode)

    def result(self, name: str, mode: str = "hardware"):
        key = (name, mode)
        if key not in self._results:
            self._results[key] = self._handle(name, mode).result()
        return self._results[key]

    # ------------------------------------------------------------------
    # Sections.
    # ------------------------------------------------------------------
    def table1(self) -> str:
        rows = [[r.component, r.achieved, r.theoretical, r.unit,
                 r.power_watts]
                for r in run_all_microbenchmarks(self.machine,
                                                 self.board)]
        return render_table("Table 1: component peaks",
                            ["component", "achieved", "theoretical",
                             "unit", "W"], rows)

    def table2(self) -> str:
        rows = []
        for name in TABLE2_KERNELS:
            row = measure_kernel(KERNEL_LIBRARY[name],
                                 machine=self.machine)
            rows.append([name, f"{row.rate:.2f} {row.rate_unit}",
                         row.lrf_gbytes, row.srf_gbytes,
                         f"{row.ipc:.1f}", row.power_watts])
        return render_table("Table 2: kernels",
                            ["kernel", "ALU", "LRF GB/s", "SRF GB/s",
                             "IPC", "W"], rows)

    def figure6(self) -> str:
        return render_breakdown(
            "Figure 6: kernel breakdown",
            {name: kernel_breakdown(KERNEL_LIBRARY[name],
                                    machine=self.machine)
             for name in TABLE2_KERNELS})

    def figures7_8(self) -> str:
        lengths = [32, 256, 2048]
        parts = []
        for title, configs in (
                ("Figure 7 (prologue 64)",
                 [(m, 64) for m in (8, 64, 256)]),
                ("Figure 8 (main loop 32)",
                 [(32, p) for p in (8, 64, 256)])):
            rows = []
            for main, prologue in configs:
                points = kernel_length_sweep(
                    main, prologue, lengths, invocations=16,
                    machine=self.machine, board=self.board)
                rows.append([f"main {main} / prologue {prologue}"]
                            + [p.gops for p in points])
            parts.append(render_table(
                title, ["config"] + [str(n) for n in lengths], rows))
        return "\n\n".join(parts)

    def figures9_10(self) -> str:
        lengths = [64, 1024, 8192]
        parts = []
        for ags in (1, 2):
            points = memory_length_sweep(
                lengths, ags, loads_per_point=6,
                machine=self.machine, board=self.board)
            table = {name: [] for name in MEMORY_PATTERNS}
            for point in points:
                table[point.pattern].append(point.gbytes_per_sec)
            parts.append(render_table(
                f"Figure {8 + ags}: memory bandwidth, {ags} AG(s)",
                ["pattern"] + [str(n) for n in lengths],
                [[k] + v for k, v in table.items()]))
        return "\n\n".join(parts)

    def table3(self) -> str:
        rows = []
        for name in _APP_DISPLAY:
            result = self.result(name)
            bundle = self.bundle(name)
            metrics = result.metrics
            rows.append([
                name,
                f"{metrics.gflops:.2f} GFLOPS" if name == "QRD"
                else f"{metrics.gops:.2f} GOPS",
                f"{metrics.ipc:.1f}",
                f"{bundle.throughput(result.seconds):.1f} "
                f"{bundle.work_name}/s",
                result.power.watts])
        return render_table("Table 3: applications",
                            ["app", "ALU", "IPC", "rate", "W"], rows)

    def figure11(self) -> str:
        return render_breakdown(
            "Figure 11: application breakdown",
            {name: application_breakdown(self.result(name, "isim"))
             for name in _APP_DISPLAY})

    def tables4_5(self) -> str:
        rows4, rows5 = [], []
        for name in _APP_DISPLAY:
            image = self.bundle(name).image
            metrics = self.result(name).metrics
            histogram = image.histogram()
            rows4.append([name, histogram["kernel"],
                          histogram["memory"], histogram["total"],
                          f"{image.sdr_reuse:.1f}x",
                          f"{metrics.host_mips:.2f}"])
            rows5.append([name,
                          f"{metrics.average_kernel_duration:.0f}",
                          f"{metrics.average_kernel_stream_length:.0f}",
                          f"{metrics.average_memory_stream_length:.0f}"])
        return "\n\n".join([
            render_table("Table 4: stream operations",
                         ["app", "kernel", "memory", "total",
                          "SDR reuse", "MIPS"], rows4),
            render_table("Table 5: cluster characteristics",
                         ["app", "kernel cycles", "kernel stream",
                          "memory stream"], rows5)])

    def table6(self) -> str:
        rows = [[name,
                 f"{self.result(name, 'hardware').cycles / 1e6:.3f} M",
                 f"{self.result(name, 'isim').cycles / 1e6:.3f} M",
                 f"{self.result(name, 'hardware').cycles / self.result(name, 'isim').cycles:.3f}"]
                for name in _APP_DISPLAY]
        return render_table("Table 6: lab vs ISIM",
                            ["app", "lab", "ISIM", "ratio"], rows)

    def power(self) -> str:
        rows = [[r.processor, r.pj_per_flop, r.technology]
                for r in power_efficiency_comparison(self.machine,
                                                     self.board)]
        return render_table("Section 5.5: power efficiency",
                            ["processor", "pJ/FLOP", "technology"],
                            rows, floatfmt="{:.1f}")

    def targets(self) -> str:
        """Counter-registry probes vs their paper targets, per app."""
        from repro.obs.registry import registry_from_result

        rows = []
        for name in _APP_DISPLAY:
            registry = registry_from_result(self.result(name))
            for probe in registry:
                if probe.target is None:
                    continue
                rows.append([
                    name, probe.name,
                    f"{probe.value:.2f} {probe.unit}",
                    f"{probe.target.expected:.2f}",
                    f"±{probe.target.rel_tolerance * 100:.0f}%",
                    probe.target.source,
                    "ok" if probe.within_target else "DRIFT"])
        return render_table(
            "Paper targets: measured vs expected",
            ["app", "probe", "measured", "expected", "tolerance",
             "source", "status"], rows)


#: Section name -> generator method, in the paper's order.
SECTIONS: dict[str, Callable[[Evaluation], str]] = {
    "table1": Evaluation.table1,
    "table2": Evaluation.table2,
    "figure6": Evaluation.figure6,
    "figures7_8": Evaluation.figures7_8,
    "figures9_10": Evaluation.figures9_10,
    "table3": Evaluation.table3,
    "figure11": Evaluation.figure11,
    "tables4_5": Evaluation.tables4_5,
    "table6": Evaluation.table6,
    "power": Evaluation.power,
    "targets": Evaluation.targets,
}


#: Schema tag for the machine-readable evaluation report
#: (``repro evaluate --json``).  The document is deterministic:
#: byte-identical across job counts and cache temperatures.
EVALUATION_SCHEMA = "repro.evaluation-report/1"


def run_full_evaluation(machine: MachineConfig | None = None,
                        board: BoardConfig | None = None,
                        sections: list[str] | None = None,
                        session: Session | None = None,
                        history=None) -> dict[str, str]:
    """Regenerate the paper's evaluation; returns section -> text.

    Pass an engine ``session`` (e.g.
    ``Session(config=SessionConfig(jobs=8))``) to shard
    the application runs across processes and reuse cached results;
    the returned text is identical either way.  ``history`` records
    each digest-keyed run to a perf-history store when no session is
    supplied (a supplied session keeps its own setting).
    """
    chosen = sections or list(SECTIONS)
    unknown = set(chosen) - set(SECTIONS)
    if unknown:
        raise ValueError(f"unknown sections: {sorted(unknown)}")
    evaluation = Evaluation(machine, board, session=session,
                            history=history)
    try:
        evaluation.prefetch(chosen)
        return {name: SECTIONS[name](evaluation) for name in chosen}
    finally:
        evaluation.close()


def evaluation_report(texts: dict[str, str],
                      board: BoardConfig | None = None) -> dict:
    """Wrap rendered sections as the deterministic JSON report."""
    board = board or BoardConfig.hardware()
    return {
        "schema": EVALUATION_SCHEMA,
        "board_mode": board.mode,
        "host_mips": board.host_mips,
        "sections": {name: texts[name]
                     for name in SECTIONS if name in texts},
    }
