"""Fault injector: applies a :class:`~repro.faults.models.FaultPlan`.

The injector sits between a fault plan and the machine model.
Structural faults (cluster mask, AG failure, DRAM channel loss /
degradation, the generalized precharge bug) reshape the
:class:`~repro.core.config.MachineConfig` / DRAM model before the run;
dynamic faults (host jitter, stall bursts, dropped transfers,
scoreboard slot loss, microcode corruption) fire during the event loop
through the hook methods below.

Every fault firing is recorded as a
:class:`~repro.faults.models.FaultEvent` and emitted as an instant on
the ``faults`` tracer track, so a Chrome/Perfetto trace of a faulted
run shows exactly when and where each fault hit.  Each fault spec owns
an independent :class:`random.Random` stream derived from
``(plan seed, spec position, kind)``, so adding one fault to a plan
never perturbs another fault's sequence.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.core.config import MachineConfig
from repro.faults.models import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.memsys.dram import ChannelFault, PrechargeFault
from repro.obs.tracer import NULL_TRACER, TRACK_FAULTS, Tracer


class FaultInjector:
    """Runtime state for one plan applied to one simulation run."""

    def __init__(self, plan: FaultPlan,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.plan = plan
        self.tracer = tracer
        self.events: list[FaultEvent] = []
        self._rngs: dict[int, random.Random] = {
            i: random.Random(f"{plan.seed}:{i}:{spec.kind.value}")
            for i, spec in enumerate(plan.faults)
        }
        self._specs: dict[FaultKind, tuple[int, FaultSpec]] = {}
        for i, spec in enumerate(plan.faults):
            # Last spec of a kind wins; plans list each kind once.
            self._specs[spec.kind] = (i, spec)
        self._slot_window_recorded = -1

    # ------------------------------------------------------------------
    # Bookkeeping.
    # ------------------------------------------------------------------
    def _spec(self, kind: FaultKind) -> FaultSpec | None:
        entry = self._specs.get(kind)
        return entry[1] if entry is not None else None

    def _rng(self, kind: FaultKind) -> random.Random:
        return self._rngs[self._specs[kind][0]]

    def record(self, kind: FaultKind, at: float, **detail) -> None:
        self.events.append(FaultEvent(kind, at, detail))
        if self.tracer.enabled:
            self.tracer.instant(TRACK_FAULTS, kind.value, ts=at, **detail)

    def events_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Structural faults (applied before the run; recorded at t=0).
    # ------------------------------------------------------------------
    def degrade_machine(self, machine: MachineConfig) -> MachineConfig:
        """The machine with dead clusters / AGs / DRAM channels removed."""
        spec = self._spec(FaultKind.CLUSTER_MASK)
        if spec is not None:
            clusters = min(machine.num_clusters, spec["clusters"])
            if clusters != machine.num_clusters:
                self.record(FaultKind.CLUSTER_MASK, 0.0,
                            clusters=clusters,
                            masked=machine.num_clusters - clusters)
            machine = replace(machine, num_clusters=clusters)
        spec = self._spec(FaultKind.AG_FAILURE)
        if spec is not None:
            ags = max(1, machine.num_ags - spec["count"])
            if ags != machine.num_ags:
                self.record(FaultKind.AG_FAILURE, 0.0,
                            failed=machine.num_ags - ags, alive=ags)
            machine = replace(machine, num_ags=ags)
        spec = self._spec(FaultKind.DRAM_CHANNEL_LOSS)
        if spec is not None:
            channels = max(1, machine.dram.channels - spec["channels"])
            if channels != machine.dram.channels:
                self.record(FaultKind.DRAM_CHANNEL_LOSS, 0.0,
                            lost=machine.dram.channels - channels,
                            alive=channels)
            machine = replace(machine,
                              dram=replace(machine.dram,
                                           channels=channels))
        return machine

    def precharge_fault(self,
                        default: PrechargeFault | None
                        ) -> PrechargeFault | None:
        """The precharge model for this run (plan overrides board)."""
        spec = self._spec(FaultKind.PRECHARGE_BUG)
        if spec is None:
            return default
        self.record(FaultKind.PRECHARGE_BUG, 0.0,
                    interval=spec["interval"],
                    probability=spec["probability"])
        return PrechargeFault(interval=spec["interval"],
                              probability=spec["probability"],
                              seed=self.plan.seed)

    def channel_fault(self, channels: int) -> ChannelFault | None:
        """Per-channel degradation against the post-loss channel count."""
        spec = self._spec(FaultKind.DRAM_CHANNEL_DEGRADE)
        if spec is None:
            return None
        degraded = min(spec["channels"], channels)
        rates = {ch: float(spec["factor"]) for ch in range(degraded)}
        self.record(FaultKind.DRAM_CHANNEL_DEGRADE, 0.0,
                    channels=degraded, factor=float(spec["factor"]))
        return ChannelFault(rates)

    # ------------------------------------------------------------------
    # Host-interface faults.
    # ------------------------------------------------------------------
    def host_issue_extra_cycles(self, index: int, now: float,
                                issue_cycles: float) -> float:
        """Extra delivery latency for instruction ``index`` (jitter +
        periodic stall bursts)."""
        extra = 0.0
        spec = self._spec(FaultKind.HOST_JITTER)
        if spec is not None:
            rng = self._rng(FaultKind.HOST_JITTER)
            if rng.random() < spec["probability"]:
                jitter = rng.random() * spec["magnitude"] * issue_cycles
                if jitter > 0:
                    self.record(FaultKind.HOST_JITTER, now,
                                index=index, cycles=jitter)
                extra += jitter
        spec = self._spec(FaultKind.HOST_STALL_BURST)
        if spec is not None and (index + 1) % spec["interval"] == 0:
            self.record(FaultKind.HOST_STALL_BURST, now,
                        index=index, cycles=spec["cycles"])
            extra += spec["cycles"]
        return extra

    def host_drop(self, index: int, now: float) -> bool:
        """True when this transfer attempt is lost (host must retry)."""
        spec = self._spec(FaultKind.HOST_DROP)
        if spec is None:
            return False
        if self._rng(FaultKind.HOST_DROP).random() < spec["probability"]:
            self.record(FaultKind.HOST_DROP, now, index=index)
            return True
        return False

    @property
    def host_max_retries(self) -> int | None:
        spec = self._spec(FaultKind.HOST_DROP)
        return spec["max_retries"] if spec is not None else None

    # ------------------------------------------------------------------
    # Scoreboard slot loss (periodic windows).
    # ------------------------------------------------------------------
    def slots_lost(self, now: float) -> int:
        spec = self._spec(FaultKind.SCOREBOARD_SLOT_LOSS)
        if spec is None:
            return 0
        window = int(now // spec["period"])
        active = (now - window * spec["period"]) < spec["duration"]
        if active and window > self._slot_window_recorded:
            self._slot_window_recorded = window
            self.record(FaultKind.SCOREBOARD_SLOT_LOSS,
                        window * spec["period"],
                        slots=spec["slots"],
                        until=window * spec["period"] + spec["duration"])
        return spec["slots"] if active else 0

    def next_slot_change(self, now: float) -> float | None:
        """When the current slot-loss state next flips, if ever."""
        spec = self._spec(FaultKind.SCOREBOARD_SLOT_LOSS)
        if spec is None:
            return None
        window = int(now // spec["period"])
        window_start = window * spec["period"]
        if (now - window_start) < spec["duration"]:
            return window_start + spec["duration"]
        return window_start + spec["period"]

    # ------------------------------------------------------------------
    # Microcode-store corruption.
    # ------------------------------------------------------------------
    def microcode_corrupted(self, kernel: str, now: float) -> bool:
        spec = self._spec(FaultKind.MICROCODE_CORRUPTION)
        if spec is None:
            return False
        rng = self._rng(FaultKind.MICROCODE_CORRUPTION)
        if rng.random() < spec["probability"]:
            self.record(FaultKind.MICROCODE_CORRUPTION, now,
                        kernel=kernel)
            return True
        return False
