"""Resilience campaigns: degraded-mode sweeps with reproducible reports.

A campaign takes one application and one fault plan and answers the
question the paper answers for its two hardwired defects: *how does
the machine degrade?*  It runs the unfaulted baseline, then each fault
in the plan in isolation for ``trials`` seeded runs, then the two
structural degradation sweeps (GOPS vs. surviving DRAM channels and
vs. surviving clusters), and emits a machine-readable report
(schema ``repro.resilience-report/1``).

Every run flows through the :mod:`repro.engine` session: pass one
with ``jobs=N`` and the baseline, all faulted trials and both
degradation curves shard across worker processes (and come back from
the content-addressed cache on repeat campaigns).  The report is
byte-identical whatever the job count or cache temperature.

Determinism is a hard requirement: every per-trial seed is derived
from the campaign seed with :class:`random.Random` string seeding, no
wall-clock or platform data enters the report, and two campaigns with
the same (app, plan, trials, seed) produce byte-identical JSON.

This module imports the application layer, so it is deliberately not
re-exported from :mod:`repro.faults`; import it explicitly (the CLI
``repro faults`` command does).
"""

from __future__ import annotations

import random

from repro.apps.common import AppBundle
from repro.core import BoardConfig, MachineConfig, RunResult
from repro.engine.session import RunOutcome, Session, get_default_session
from repro.faults.models import FaultKind, FaultPlan, FaultSpec
from repro.obs.manifest import machine_summary

#: Version tag for the resilience-report layout.
CAMPAIGN_SCHEMA = "repro.resilience-report/1"


def _trial_seed(campaign_seed: int, fault_index: int, trial: int) -> int:
    """Deterministic, well-spread per-trial seed."""
    return random.Random(
        f"campaign:{campaign_seed}:{fault_index}:{trial}"
    ).randrange(2 ** 31)


def _run_summary(result: RunResult) -> dict:
    metrics = result.metrics
    return {
        "cycles": metrics.total_cycles,
        "gops": metrics.gops,
        "gflops": metrics.gflops,
        "watts": result.power.watts,
        "host_instructions": metrics.host_instructions,
    }


def _trial_row(outcome: RunOutcome, plan: FaultPlan,
               baseline_cycles: float | None = None) -> dict:
    """Reduce one faulted outcome to a report row (a typed failure
    *is* a campaign datum, never an exception)."""
    row: dict = {"plan_seed": plan.seed}
    if not outcome.completed:
        row.update({
            "status": "failed",
            "error": outcome.error_type,
            "message": ((outcome.error_message or "").splitlines()
                        or [""])[0],
            "diagnostics": outcome.diagnostics,
        })
        return row
    result = outcome.result
    row.update({
        "status": "completed",
        **_run_summary(result),
        "host_retries": result.host_retries,
        "fault_events": len(result.fault_events),
        "fault_events_by_kind": _events_by_kind(result),
    })
    if baseline_cycles:
        row["slowdown"] = result.metrics.total_cycles / baseline_cycles
    return row


def run_trial(bundle: AppBundle, plan: FaultPlan,
              board: BoardConfig | None = None,
              machine: MachineConfig | None = None,
              baseline_cycles: float | None = None,
              strict: bool = False,
              session: Session | None = None) -> dict:
    """One faulted run, reduced to a report row."""
    session = session or get_default_session()
    handle = session.submit_bundle(bundle, board=board, machine=machine,
                                   faults=plan, strict=strict)
    return _trial_row(handle.outcome(), plan, baseline_cycles)


def _events_by_kind(result: RunResult) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in result.fault_events:
        counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
    return dict(sorted(counts.items()))


def _curve_plans(machine: MachineConfig, seed: int) -> tuple[list, list]:
    """(alive, plan|None) points for both degradation sweeps; ``None``
    marks the full-machine point, served by the baseline run."""
    channels = []
    for alive in range(1, machine.dram.channels + 1):
        lost = machine.dram.channels - alive
        plan = None
        if lost:
            plan = FaultPlan(
                name=f"curve/channels={alive}",
                faults=(FaultSpec(FaultKind.DRAM_CHANNEL_LOSS,
                                  {"channels": lost}),),
                seed=seed)
        channels.append((alive, plan))
    clusters = []
    for alive in range(1, machine.num_clusters + 1):
        plan = None
        if alive != machine.num_clusters:
            plan = FaultPlan(
                name=f"curve/clusters={alive}",
                faults=(FaultSpec(FaultKind.CLUSTER_MASK,
                                  {"clusters": alive}),),
                seed=seed)
        clusters.append((alive, plan))
    return channels, clusters


def run_campaign(bundle: AppBundle, plan: FaultPlan, trials: int = 3,
                 seed: int = 0, board: BoardConfig | None = None,
                 machine: MachineConfig | None = None,
                 curves: bool = True, strict: bool = False,
                 session: Session | None = None) -> dict:
    """Run the full degraded-mode sweep; returns the report document.

    With a parallel ``session`` the baseline, every faulted trial and
    every curve point are submitted up front and shard across the
    worker pool; the report is assembled in deterministic order.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    board = board or BoardConfig.hardware()
    machine = machine or MachineConfig()
    owns_session = session is None
    session = session or get_default_session()

    def submit(faults: FaultPlan | None):
        return session.submit_bundle(bundle, board=board,
                                     machine=machine, faults=faults,
                                     strict=strict)

    try:
        # Submit everything first so a pool shards the whole campaign.
        baseline_handle = submit(None)
        trial_handles = []
        for i, spec in enumerate(plan.faults):
            per_fault = []
            for trial in range(trials):
                sub_plan = plan.only(spec,
                                     seed=_trial_seed(seed, i, trial))
                per_fault.append((sub_plan, submit(sub_plan)))
            trial_handles.append((spec, per_fault))
        curve_handles = None
        if curves:
            channel_points, cluster_points = _curve_plans(machine, seed)
            curve_handles = (
                [(alive, submit(p) if p is not None else None)
                 for alive, p in channel_points],
                [(alive, submit(p) if p is not None else None)
                 for alive, p in cluster_points])

        # The baseline must succeed; its failure aborts the campaign
        # exactly as it always did.
        baseline = baseline_handle.result()
        baseline_cycles = baseline.metrics.total_cycles
        baseline_summary = _run_summary(baseline)

        fault_rows = []
        for spec, per_fault in trial_handles:
            rows = [_trial_row(handle.outcome(), sub_plan,
                               baseline_cycles)
                    for sub_plan, handle in per_fault]
            completed = [row for row in rows
                         if row["status"] == "completed"]
            slowdowns = [row["slowdown"] for row in completed
                         if "slowdown" in row]
            fault_rows.append({
                "kind": spec.kind.value,
                "params": dict(spec.params),
                "trials": rows,
                "completed": len(completed),
                "failed": len(rows) - len(completed),
                "mean_slowdown": (sum(slowdowns) / len(slowdowns)
                                  if slowdowns else None),
                "max_slowdown": max(slowdowns) if slowdowns else None,
                "total_retries": sum(row.get("host_retries", 0)
                                     for row in completed),
            })

        report = {
            "schema": CAMPAIGN_SCHEMA,
            "app": bundle.name,
            "plan": plan.as_dict(),
            "seed": seed,
            "trials": trials,
            "board_mode": board.mode,
            "host_mips": board.host_mips,
            "machine": machine_summary(machine),
            "strict": strict,
            "baseline": baseline_summary,
            "faults": fault_rows,
        }
        if curves:
            report["curves"] = _collect_curves(
                curve_handles, baseline.metrics.gops)
        return report
    finally:
        if owns_session and session is not get_default_session():
            session.close()


def _collect_curves(curve_handles, baseline_gops: float) -> dict:
    """GOPS vs. surviving DRAM channels and surviving clusters."""
    channel_handles, cluster_handles = curve_handles

    def point(label: str, alive: int, handle) -> dict:
        gops = (baseline_gops if handle is None
                else handle.result().metrics.gops)
        return {label: alive, "gops": gops,
                "fraction_of_full": (gops / baseline_gops
                                     if baseline_gops else 0.0)}

    return {
        "gops_vs_channels": [point("channels", alive, handle)
                             for alive, handle in channel_handles],
        "gops_vs_clusters": [point("clusters", alive, handle)
                             for alive, handle in cluster_handles],
    }


def validate_report(report: dict) -> None:
    """Schema sanity check (used by tests and the CI smoke job)."""
    if report.get("schema") != CAMPAIGN_SCHEMA:
        raise ValueError(f"bad schema {report.get('schema')!r}")
    for key in ("app", "plan", "seed", "trials", "baseline", "faults"):
        if key not in report:
            raise ValueError(f"report missing {key!r}")
    if not isinstance(report["faults"], list):
        raise ValueError("'faults' must be a list")
    for row in report["faults"]:
        for key in ("kind", "params", "trials", "completed",
                    "mean_slowdown"):
            if key not in row:
                raise ValueError(
                    f"fault row {row.get('kind')!r} missing {key!r}")
        for trial in row["trials"]:
            if trial["status"] == "completed" and "cycles" not in trial:
                raise ValueError("completed trial missing 'cycles'")
            if trial["status"] == "failed" and "error" not in trial:
                raise ValueError("failed trial missing 'error'")
    if "curves" in report:
        for curve in ("gops_vs_channels", "gops_vs_clusters"):
            if curve not in report["curves"]:
                raise ValueError(f"curves missing {curve!r}")


__all__ = [
    "CAMPAIGN_SCHEMA",
    "run_campaign",
    "run_trial",
    "validate_report",
]
