"""Builtin fault plans for resilience campaigns.

Each plan is a curated scenario from the paper's own pathology space:
the development board's real defects, a flaky host bridge, a degraded
memory system, a half-dead machine, and a kitchen-sink stress plan.
``repro faults APP --plan NAME`` accepts any of these names (or a path
to a JSON file with the same schema; see ``docs/robustness.md``).
"""

from __future__ import annotations

from repro.faults.models import FaultKind, FaultPlan, FaultPlanError, FaultSpec


def _plan(name: str, *faults: FaultSpec) -> FaultPlan:
    return FaultPlan(name=name, faults=tuple(faults))


BUILTIN_PLANS: dict[str, FaultPlan] = {
    # The development board as measured: the Section-3.3 precharge bug
    # plus a host bridge that jitters around its sustained 2 MIPS.
    "board": _plan(
        "board",
        FaultSpec(FaultKind.PRECHARGE_BUG,
                  {"interval": 24, "probability": 1.0}),
        FaultSpec(FaultKind.HOST_JITTER,
                  {"magnitude": 0.5, "probability": 0.25}),
    ),
    # A host bridge that drops transfers and stalls in bursts -- the
    # 2-vs-20-MIPS story pushed further; exercises timeout + retry.
    "flaky-host": _plan(
        "flaky-host",
        FaultSpec(FaultKind.HOST_DROP,
                  {"probability": 0.05, "max_retries": 8}),
        FaultSpec(FaultKind.HOST_JITTER,
                  {"magnitude": 1.0, "probability": 0.5}),
        FaultSpec(FaultKind.HOST_STALL_BURST,
                  {"interval": 32, "cycles": 2000}),
    ),
    # Memory system running hurt: half the channels gone, the rest
    # degraded, the precharge bug firing intermittently.
    "degraded-memory": _plan(
        "degraded-memory",
        FaultSpec(FaultKind.DRAM_CHANNEL_LOSS, {"channels": 2}),
        FaultSpec(FaultKind.DRAM_CHANNEL_DEGRADE,
                  {"factor": 0.75, "channels": 2}),
        FaultSpec(FaultKind.PRECHARGE_BUG,
                  {"interval": 12, "probability": 0.5}),
    ),
    # Half the compute fabric masked off: 4 of 8 clusters, one AG.
    "half-machine": _plan(
        "half-machine",
        FaultSpec(FaultKind.CLUSTER_MASK, {"clusters": 4}),
        FaultSpec(FaultKind.AG_FAILURE, {"count": 1}),
    ),
    # Everything at once, at survivable intensities.
    "chaos": _plan(
        "chaos",
        FaultSpec(FaultKind.CLUSTER_MASK, {"clusters": 6}),
        FaultSpec(FaultKind.DRAM_CHANNEL_LOSS, {"channels": 1}),
        FaultSpec(FaultKind.PRECHARGE_BUG,
                  {"interval": 16, "probability": 0.7}),
        FaultSpec(FaultKind.HOST_DROP,
                  {"probability": 0.03, "max_retries": 8}),
        FaultSpec(FaultKind.SCOREBOARD_SLOT_LOSS,
                  {"slots": 16, "period": 50000, "duration": 10000}),
        FaultSpec(FaultKind.MICROCODE_CORRUPTION, {"probability": 0.1}),
    ),
}


def get_plan(name_or_path: str) -> FaultPlan:
    """Resolve a builtin plan name or a JSON plan file path."""
    if name_or_path in BUILTIN_PLANS:
        return BUILTIN_PLANS[name_or_path]
    if name_or_path.endswith(".json") or "/" in name_or_path:
        return FaultPlan.from_file(name_or_path)
    raise FaultPlanError(
        f"unknown fault plan {name_or_path!r}; builtin plans: "
        f"{', '.join(sorted(BUILTIN_PLANS))} (or pass a .json file)")
