"""Fault models: seeded, JSON-loadable hardware-fault plans.

The paper's evaluation ran on a prototype that misbehaved -- a
memory-controller bug forced unnecessary precharges (Section 3.3) and
the host interface delivered 2 MIPS of its 20 MIPS design rate -- so
degradation is part of the machine being reproduced.  This module
generalizes those two hardwired defects into a family of parameterized
faults that a :class:`~repro.faults.injector.FaultInjector` applies to
one simulation:

==========================  =============================================
kind                        parameters (defaults in brackets)
==========================  =============================================
``dram_channel_loss``       ``channels`` lost (1)
``dram_channel_degrade``    ``factor`` in (0,1] (0.5), ``channels`` (1)
``precharge_bug``           ``interval`` (24), ``probability`` (1.0)
``host_jitter``             ``magnitude`` x issue cycles (0.5),
                            ``probability`` per issue (0.25)
``host_stall_burst``        every ``interval`` instructions (16),
                            stall ``cycles`` (2000)
``host_drop``               ``probability`` per transfer (0.05),
                            ``max_retries`` (8)
``scoreboard_slot_loss``    ``slots`` (8), ``period`` (20000),
                            ``duration`` (5000) core cycles
``microcode_corruption``    ``probability`` per kernel issue (0.05)
``ag_failure``              ``count`` of dead AGs (1)
``cluster_mask``            ``clusters`` still alive (4)
==========================  =============================================

A :class:`FaultPlan` is a named, seeded tuple of :class:`FaultSpec`;
``FaultPlan.from_file`` loads the JSON schema documented in
``docs/robustness.md``.  Everything is deterministic: the same plan +
seed produces the same fault sequence, which is what makes resilience
campaigns reproducible and their reports byte-identical.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Any


class FaultPlanError(ValueError):
    """Malformed fault plan (bad kind, parameter, or JSON shape)."""


class FaultKind(enum.Enum):
    """The injectable hardware-fault families."""

    DRAM_CHANNEL_LOSS = "dram_channel_loss"
    DRAM_CHANNEL_DEGRADE = "dram_channel_degrade"
    PRECHARGE_BUG = "precharge_bug"
    HOST_JITTER = "host_jitter"
    HOST_STALL_BURST = "host_stall_burst"
    HOST_DROP = "host_drop"
    SCOREBOARD_SLOT_LOSS = "scoreboard_slot_loss"
    MICROCODE_CORRUPTION = "microcode_corruption"
    AG_FAILURE = "ag_failure"
    CLUSTER_MASK = "cluster_mask"


#: Per-kind parameter schema: name -> (default, validator, description).
_PARAMS: dict[FaultKind, dict[str, tuple[Any, Any]]] = {
    FaultKind.DRAM_CHANNEL_LOSS: {
        "channels": (1, lambda v: isinstance(v, int) and v >= 1),
    },
    FaultKind.DRAM_CHANNEL_DEGRADE: {
        "factor": (0.5, lambda v: 0.0 < float(v) <= 1.0),
        "channels": (1, lambda v: isinstance(v, int) and v >= 1),
    },
    FaultKind.PRECHARGE_BUG: {
        "interval": (24, lambda v: isinstance(v, int) and v >= 1),
        "probability": (1.0, lambda v: 0.0 <= float(v) <= 1.0),
    },
    FaultKind.HOST_JITTER: {
        "magnitude": (0.5, lambda v: float(v) >= 0.0),
        "probability": (0.25, lambda v: 0.0 <= float(v) <= 1.0),
    },
    FaultKind.HOST_STALL_BURST: {
        "interval": (16, lambda v: isinstance(v, int) and v >= 1),
        "cycles": (2000, lambda v: float(v) > 0),
    },
    FaultKind.HOST_DROP: {
        "probability": (0.05, lambda v: 0.0 <= float(v) <= 1.0),
        "max_retries": (8, lambda v: isinstance(v, int) and v >= 1),
    },
    FaultKind.SCOREBOARD_SLOT_LOSS: {
        "slots": (8, lambda v: isinstance(v, int) and v >= 1),
        "period": (20000, lambda v: float(v) > 0),
        "duration": (5000, lambda v: float(v) > 0),
    },
    FaultKind.MICROCODE_CORRUPTION: {
        "probability": (0.05, lambda v: 0.0 <= float(v) <= 1.0),
    },
    FaultKind.AG_FAILURE: {
        "count": (1, lambda v: isinstance(v, int) and v >= 1),
    },
    FaultKind.CLUSTER_MASK: {
        "clusters": (4, lambda v: isinstance(v, int) and v >= 1),
    },
}

#: Faults that reshape the machine before the run rather than firing
#: during it.
STRUCTURAL_KINDS = frozenset({
    FaultKind.DRAM_CHANNEL_LOSS,
    FaultKind.DRAM_CHANNEL_DEGRADE,
    FaultKind.PRECHARGE_BUG,
    FaultKind.AG_FAILURE,
    FaultKind.CLUSTER_MASK,
})


@dataclass(frozen=True)
class FaultSpec:
    """One parameterized fault."""

    kind: FaultKind
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        schema = _PARAMS[self.kind]
        unknown = set(self.params) - set(schema)
        if unknown:
            raise FaultPlanError(
                f"{self.kind.value}: unknown parameter(s) "
                f"{sorted(unknown)}; valid: {sorted(schema)}")
        merged = {}
        for name, (default, valid) in schema.items():
            value = self.params.get(name, default)
            if not valid(value):
                raise FaultPlanError(
                    f"{self.kind.value}: bad value {value!r} for "
                    f"parameter {name!r}")
            merged[name] = value
        object.__setattr__(self, "params", merged)

    @property
    def structural(self) -> bool:
        return self.kind in STRUCTURAL_KINDS

    def __getitem__(self, name: str) -> Any:
        return self.params[name]

    def as_dict(self) -> dict:
        return {"kind": self.kind.value, **self.params}

    @classmethod
    def from_dict(cls, entry: dict) -> "FaultSpec":
        if not isinstance(entry, dict) or "kind" not in entry:
            raise FaultPlanError(
                f"fault entry must be an object with a 'kind' key, "
                f"got {entry!r}")
        params = {k: v for k, v in entry.items() if k != "kind"}
        try:
            kind = FaultKind(entry["kind"])
        except ValueError:
            raise FaultPlanError(
                f"unknown fault kind {entry['kind']!r}; valid kinds: "
                f"{sorted(k.value for k in FaultKind)}") from None
        return cls(kind, params)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of faults to inject into one run."""

    name: str
    faults: tuple[FaultSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def only(self, spec: FaultSpec, seed: int | None = None) -> "FaultPlan":
        """A single-fault sub-plan (campaigns isolate fault effects)."""
        return FaultPlan(name=f"{self.name}/{spec.kind.value}",
                         faults=(spec,),
                         seed=self.seed if seed is None else seed)

    def as_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "faults": [spec.as_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, document: dict) -> "FaultPlan":
        if not isinstance(document, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got "
                f"{type(document).__name__}")
        faults = document.get("faults")
        if not isinstance(faults, list):
            raise FaultPlanError("fault plan needs a 'faults' list")
        seed = document.get("seed", 0)
        if not isinstance(seed, int):
            raise FaultPlanError(f"seed must be an integer, got {seed!r}")
        return cls(name=str(document.get("name", "unnamed")),
                   faults=tuple(FaultSpec.from_dict(entry)
                                for entry in faults),
                   seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"invalid JSON: {error}") from error
        return cls.from_dict(document)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as error:
            raise FaultPlanError(
                f"cannot read fault plan {path!r}: {error}") from error
        try:
            return cls.from_json(text)
        except FaultPlanError as error:
            raise FaultPlanError(f"{path}: {error}") from error


@dataclass(frozen=True)
class FaultEvent:
    """One fault firing, recorded by the injector for reports/traces."""

    kind: FaultKind
    at: float
    detail: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"kind": self.kind.value, "at": self.at,
                "detail": dict(self.detail)}
