"""Fault injection and degraded-mode resilience.

The paper evaluated Imagine on a prototype that misbehaved (the
Section-3.3 precharge bug, a host interface at a tenth of its design
rate); this package makes such faults first-class and seeded so the
simulator's behaviour under degradation is itself testable:

* :mod:`repro.faults.models` -- :class:`FaultPlan` / :class:`FaultSpec`,
  the JSON-loadable, parameterized fault vocabulary;
* :mod:`repro.faults.injector` -- :class:`FaultInjector`, the runtime
  that reshapes the machine and fires dynamic faults deterministically;
* :mod:`repro.faults.plans` -- curated builtin plans
  (``board``, ``flaky-host``, ``degraded-memory``, ``half-machine``,
  ``chaos``);
* :mod:`repro.faults.campaign` -- the degraded-mode sweep runner behind
  ``repro faults`` (imported explicitly; it pulls in the app layer).

See ``docs/robustness.md`` for the plan schema, watchdog semantics and
campaign workflow.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    STRUCTURAL_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from repro.faults.plans import BUILTIN_PLANS, get_plan

__all__ = [
    "FaultInjector",
    "STRUCTURAL_KINDS",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "BUILTIN_PLANS",
    "get_plan",
]
