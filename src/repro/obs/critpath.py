"""Critical-path extraction and what-if projection
(``repro.critpath-report/1`` / ``repro.whatif-report/1``).

The profiler (:mod:`repro.obs.profile`) answers "where did the cycles
go?" with aggregate busy/stall trees, but aggregates cannot say which
resource actually *bound* runtime: a cluster can show 40% memory
stall while the true limiter is a single address generator.  This
module answers the causal question from an **event DAG** the
simulator records as it runs (see
:class:`~repro.core.processor.ImagineProcessor`): one node per
instruction lifetime event (host issue, execution begin, completion)
plus a source and an end node, and one typed, weighted edge per
timing constraint --

====================  =================================================
edge type             constraint it models
====================  =================================================
``program_start``     run start -> first host issue
``host_issue``        host interface rate limit between issues
``host_dependency``   host blocked on a completion + round trip
``scoreboard_slot``   host waited for a free scoreboard slot
``resident``          issue -> begin through one controller window
``data_dep``          scoreboard data dependency -> begin
``cluster_busy``      previous kernel occupied the cluster array
``loader_busy``       previous explicit microcode load serialised
``ag_busy``           a freed AG lane enabled this memory stream
``controller_issue``  one stream-controller issue window per begin
``kernel_exec``       kernel begin -> completion (VLIW schedule)
``mem_stream``        memory-stream begin -> completion (DRAM model)
``microcode_load``    explicit microcode-load begin -> completion
``host_op``           register/sync/host-read execution (1 cycle)
``retire``            completion -> run end
====================  =================================================

The critical path is recovered by walking backwards from the end
node, always following the incoming edge with the latest arrival
time (``t_src + weight``); each segment's **elapsed** time
(``t_dst - t_src``) telescopes, so the path length equals total run
cycles *exactly* -- the conservation check.  Every critical cycle is
attributed to one ``component.side.leaf`` in the PR 5 profile
vocabulary, and per-leaf critical cycles are cross-validated against
that leaf's busy+stall cycles in the profile tree (a critical cycle
cannot exceed the cycles the profiler says the resource consumed).

The **what-if projector** replays the recorded DAG forwards with
scaled edge weights (``dram=2x`` shortens memory-stream service,
``ags=3`` removes AG-serialisation edges, ...) to predict speedup,
and :func:`whatif_configs` maps the same scaling onto a real
machine/board change so :meth:`repro.engine.Session.whatif` can rerun
the simulator and report prediction error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import BoardConfig, MachineConfig
    from repro.core.processor import RunResult

#: Version tag for the critical-path report layout.
CRITPATH_SCHEMA = "repro.critpath-report/1"
#: Version tag for the what-if projection layout.
WHATIF_SCHEMA = "repro.whatif-report/1"

# Edge-type vocabulary (docstring table above).
EDGE_PROGRAM_START = "program_start"
EDGE_HOST_ISSUE = "host_issue"
EDGE_HOST_DEPENDENCY = "host_dependency"
EDGE_SCOREBOARD_SLOT = "scoreboard_slot"
EDGE_RESIDENT = "resident"
EDGE_DATA_DEP = "data_dep"
EDGE_CLUSTER_BUSY = "cluster_busy"
EDGE_LOADER_BUSY = "loader_busy"
EDGE_AG_BUSY = "ag_busy"
EDGE_CONTROLLER_ISSUE = "controller_issue"
EDGE_KERNEL_EXEC = "kernel_exec"
EDGE_MEM_STREAM = "mem_stream"
EDGE_MICROCODE_LOAD = "microcode_load"
EDGE_HOST_OP = "host_op"
EDGE_RETIRE = "retire"

#: Tie-break order when several incoming edges share the maximal
#: arrival time: most-specific cause first (execution beats
#: serialisation beats host bookkeeping), so the extracted path is
#: deterministic and blames the narrowest constraint.
_TIE_PRIORITY = {
    name: rank for rank, name in enumerate((
        EDGE_KERNEL_EXEC, EDGE_MEM_STREAM, EDGE_MICROCODE_LOAD,
        EDGE_HOST_OP, EDGE_DATA_DEP, EDGE_CLUSTER_BUSY,
        EDGE_LOADER_BUSY, EDGE_AG_BUSY, EDGE_CONTROLLER_ISSUE,
        EDGE_RESIDENT, EDGE_HOST_DEPENDENCY, EDGE_SCOREBOARD_SLOT,
        EDGE_HOST_ISSUE, EDGE_RETIRE, EDGE_PROGRAM_START,
    ))
}

#: Leaf for critical cycles no recorded constraint explains exactly
#: (fault back-off windows, slot-loss gaps); bounded in tests, never
#: checked against the profile tree.
UNATTRIBUTED_LEAF = "unattributed.wait"

#: Resource scalings the projector understands.  ``dram``, ``ags``,
#: ``host``, ``microcode`` and ``srf`` can also be *validated* by a
#: rerun (see :func:`whatif_configs`); ``clusters`` is predict-only.
KNOWN_SCALES = ("ags", "clusters", "dram", "host", "microcode", "srf")

#: Conservation tolerance for path length vs total cycles (relative).
PATH_TOLERANCE = 1e-6


class CritpathError(ValueError):
    """The event graph or report is malformed, or a scaling spec /
    projection request cannot be honoured."""


# ----------------------------------------------------------------------
# The event DAG (recorded by the simulator, pickled with RunResult).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphNode:
    """One lifetime event: ``source``/``issue``/``begin``/
    ``complete``/``end``."""

    ident: int
    kind: str
    index: int          # instruction index; -1 for source/end
    t: float
    label: str = ""


@dataclass
class GraphEdge:
    """One timing constraint between two events."""

    src: int
    dst: int
    type: str
    weight: float
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class EventGraph:
    """Append-only event DAG.  Nodes are created in simulation order
    and every edge points from an earlier node to a later one, so the
    graph is acyclic by construction."""

    nodes: list[GraphNode] = field(default_factory=list)
    edges: list[GraphEdge] = field(default_factory=list)
    #: Machine facts the projector needs (``num_ags``,
    #: ``issue_overhead``, ``host_issue_cycles``, ``total_cycles``).
    meta: dict[str, float] = field(default_factory=dict)

    def add_node(self, kind: str, index: int, t: float,
                 label: str = "") -> int:
        ident = len(self.nodes)
        self.nodes.append(GraphNode(ident, kind, index, float(t), label))
        return ident

    def add_edge(self, src: int, dst: int, type: str, weight: float,
                 **detail: Any) -> None:
        if src < 0 or dst >= len(self.nodes) or src >= dst:
            raise CritpathError(
                f"edge {src}->{dst} violates creation order "
                f"({len(self.nodes)} nodes)")
        self.edges.append(GraphEdge(src, dst, type, float(weight),
                                    detail))

    @property
    def end(self) -> GraphNode:
        if not self.nodes or self.nodes[-1].kind != "end":
            raise CritpathError("event graph has no end node")
        return self.nodes[-1]


# ----------------------------------------------------------------------
# Attribution: edge + elapsed -> profile-vocabulary leaves.
# ----------------------------------------------------------------------
def _split(parts: list[tuple[str, float]], elapsed: float
           ) -> dict[str, float]:
    """Distribute ``elapsed`` over weighted leaves; anything beyond
    the parts' own total is unexplained wait."""
    total = sum(max(value, 0.0) for _, value in parts)
    leaves: dict[str, float] = {}
    if total <= 0.0:
        if elapsed > 0.0:
            leaves[UNATTRIBUTED_LEAF] = elapsed
        return leaves
    usable = min(elapsed, total)
    for leaf, value in parts:
        if value > 0.0:
            leaves[leaf] = leaves.get(leaf, 0.0) + value * usable / total
    rest = elapsed - usable
    if rest > 1e-9:
        leaves[UNATTRIBUTED_LEAF] = leaves.get(
            UNATTRIBUTED_LEAF, 0.0) + rest
    return leaves


def _edge_leaves(edge: GraphEdge, elapsed: float) -> dict[str, float]:
    """Attribute one critical segment's elapsed cycles to
    ``component.side.leaf`` paths from the profile vocabulary."""
    detail = edge.detail
    if edge.type == EDGE_KERNEL_EXEC:
        return _split([
            ("clusters.busy.operations",
             float(detail.get("operations", 0.0))),
            ("clusters.busy.kernel_main_loop_overhead",
             float(detail.get("main_loop_overhead", 0.0))),
            ("clusters.busy.kernel_non_main_loop",
             float(detail.get("non_main_loop", 0.0))),
            ("clusters.stall.srf_starve",
             float(detail.get("stall", 0.0))),
            ("microcontroller.busy.load",
             float(detail.get("microcode", 0.0))),
        ], elapsed)
    if edge.type == EDGE_MEM_STREAM:
        lane = detail.get("lane")
        leaf = (f"ag{lane}.busy.stream_transfer" if lane is not None
                else "controller.busy.dispatch")
        return {leaf: elapsed} if elapsed > 0.0 else {}
    if edge.type == EDGE_MICROCODE_LOAD:
        return _split([("microcontroller.busy.load", edge.weight)],
                      elapsed)
    if edge.type == EDGE_HOST_OP:
        return {"controller.busy.dispatch": elapsed} if elapsed else {}
    if edge.type == EDGE_HOST_ISSUE:
        return _split([("host.busy.issue", edge.weight)], elapsed)
    if edge.type == EDGE_HOST_DEPENDENCY:
        return _split([("host.busy.round_trip", edge.weight)], elapsed)
    if edge.type in (EDGE_RESIDENT, EDGE_DATA_DEP, EDGE_CLUSTER_BUSY,
                     EDGE_LOADER_BUSY, EDGE_AG_BUSY,
                     EDGE_CONTROLLER_ISSUE):
        return _split([("controller.busy.issue", edge.weight)], elapsed)
    # Zero-weight bookkeeping edges (program_start, scoreboard_slot,
    # retire): any elapsed time is an unexplained gap.
    return {UNATTRIBUTED_LEAF: elapsed} if elapsed > 1e-9 else {}


def _edge_resource(edge: GraphEdge) -> str | None:
    """Which machine resource an edge's constraint belongs to (for
    slack aggregation); ``None`` for pure bookkeeping."""
    if edge.type == EDGE_KERNEL_EXEC:
        return "clusters"
    if edge.type == EDGE_MEM_STREAM:
        lane = edge.detail.get("lane")
        return f"ag{lane}" if lane is not None else "controller"
    if edge.type in (EDGE_MICROCODE_LOAD, EDGE_LOADER_BUSY):
        return "microcontroller"
    if edge.type in (EDGE_HOST_ISSUE, EDGE_HOST_DEPENDENCY):
        return "host"
    if edge.type == EDGE_CLUSTER_BUSY:
        return "clusters"
    if edge.type == EDGE_AG_BUSY:
        return "ags"
    if edge.type in (EDGE_HOST_OP, EDGE_RESIDENT, EDGE_DATA_DEP,
                     EDGE_CONTROLLER_ISSUE):
        return "controller"
    if edge.type == EDGE_SCOREBOARD_SLOT:
        return "scoreboard"
    return None


def _leaf_component(leaf: str) -> str:
    return leaf.split(".", 1)[0]


# ----------------------------------------------------------------------
# Extraction.
# ----------------------------------------------------------------------
def _incoming(graph: EventGraph) -> list[list[GraphEdge]]:
    incoming: list[list[GraphEdge]] = [[] for _ in graph.nodes]
    for edge in graph.edges:
        incoming[edge.dst].append(edge)
    return incoming


def _extract(graph: EventGraph) -> dict[str, Any]:
    """Walk backwards from the end node along latest-arrival edges."""
    if not graph.nodes:
        raise CritpathError("empty event graph")
    nodes = graph.nodes
    incoming = _incoming(graph)
    end = graph.end

    def choice_key(edge: GraphEdge) -> tuple:
        arrival = nodes[edge.src].t + edge.weight
        return (arrival, -_TIE_PRIORITY.get(edge.type, 99),
                nodes[edge.src].t, edge.src)

    path: list[GraphEdge] = []
    current = end.ident
    while current != 0:
        candidates = incoming[current]
        if not candidates:
            raise CritpathError(
                f"node {current} ({nodes[current].kind}) has no "
                f"incoming edges; the DAG is disconnected")
        best = max(candidates, key=choice_key)
        path.append(best)
        current = best.src
    path.reverse()

    leaves: dict[str, float] = {}
    edge_types: dict[str, float] = {}
    memory_driver: dict[str, float] = {}
    segments: list[dict[str, Any]] = []
    for edge in path:
        src, dst = nodes[edge.src], nodes[edge.dst]
        elapsed = dst.t - src.t
        seg_leaves = _edge_leaves(edge, elapsed)
        for leaf, cycles in seg_leaves.items():
            leaves[leaf] = leaves.get(leaf, 0.0) + cycles
        edge_types[edge.type] = (edge_types.get(edge.type, 0.0)
                                 + elapsed)
        if edge.type == EDGE_MEM_STREAM and elapsed > 0.0:
            detail = edge.detail
            startup = min(float(detail.get("startup", 0.0)), elapsed)
            drivers = (
                ("dram", float(detail.get("dram_cycles", 0.0))),
                ("ag", float(detail.get("ag_cycles", 0.0))),
                ("controller_port",
                 float(detail.get("controller_cycles", 0.0))),
            )
            driver = max(drivers, key=lambda item: item[1])[0]
            memory_driver["startup"] = (
                memory_driver.get("startup", 0.0) + startup)
            memory_driver[driver] = (
                memory_driver.get(driver, 0.0) + elapsed - startup)
        segments.append({
            "src": {"id": src.ident, "kind": src.kind,
                    "index": src.index, "t": src.t,
                    "label": src.label},
            "dst": {"id": dst.ident, "kind": dst.kind,
                    "index": dst.index, "t": dst.t,
                    "label": dst.label},
            "type": edge.type,
            "weight": edge.weight,
            "elapsed": elapsed,
            "leaves": {leaf: seg_leaves[leaf]
                       for leaf in sorted(seg_leaves)},
        })

    path_edges = set(map(id, path))
    slack: dict[str, float] = {}
    resource_edges: dict[str, int] = {}
    for edge in graph.edges:
        resource = _edge_resource(edge)
        if resource is None:
            continue
        arrival = nodes[edge.src].t + edge.weight
        local = max(nodes[edge.dst].t - arrival, 0.0)
        if id(edge) in path_edges:
            local = 0.0
        previous = slack.get(resource)
        slack[resource] = (local if previous is None
                           else min(previous, local))
        resource_edges[resource] = resource_edges.get(resource, 0) + 1

    by_component: dict[str, float] = {}
    for leaf, cycles in leaves.items():
        component = _leaf_component(leaf)
        by_component[component] = (by_component.get(component, 0.0)
                                   + cycles)
    total = end.t
    resources: dict[str, dict[str, float | int]] = {}
    for name in sorted(set(by_component) | set(slack)):
        resources[name] = {
            "critical_cycles": by_component.get(name, 0.0),
            "share": (by_component.get(name, 0.0) / total
                      if total > 0 else 0.0),
            "min_slack": slack.get(name, 0.0),
            "edges": resource_edges.get(name, 0),
        }
    ranked = sorted(
        (name for name in resources if name != "unattributed"),
        key=lambda name: (-resources[name]["critical_cycles"], name))

    return {
        "total_cycles": total,
        "path_cycles": sum(seg["elapsed"] for seg in segments),
        "segments": segments,
        "critical_leaves": {leaf: leaves[leaf]
                            for leaf in sorted(
                                leaves,
                                key=lambda key: (-leaves[key], key))},
        "critical_edge_types": {
            name: edge_types[name]
            for name in sorted(edge_types,
                               key=lambda key: (-edge_types[key],
                                                key))},
        "memory_driver": {name: memory_driver[name]
                          for name in sorted(memory_driver)},
        "resources": resources,
        "top_resources": [{
            "resource": name,
            "critical_cycles": resources[name]["critical_cycles"],
            "share": resources[name]["share"],
            "min_slack": resources[name]["min_slack"],
        } for name in ranked[:3]],
        "unattributed_cycles": leaves.get(UNATTRIBUTED_LEAF, 0.0),
    }


def critpath_summary(result: "RunResult") -> dict[str, Any] | None:
    """Compact critical-path block for profile reports and history
    lines; ``None`` when the run recorded no event graph."""
    graph = getattr(result, "event_graph", None)
    if graph is None or not graph.nodes:
        return None
    extraction = _extract(graph)
    top = extraction["top_resources"]
    return {
        "path_cycles": extraction["path_cycles"],
        "binding_resource": top[0]["resource"] if top else None,
        "top_resources": top,
        "unattributed_cycles": extraction["unattributed_cycles"],
    }


def partial_critpath_summary(graph: "EventGraph | None"
                             ) -> dict[str, Any] | None:
    """Best-effort attribution for an *unfinished* run.

    A killed or stuck run has no end node, so no path can be
    extracted; what the graph does hold is every timing constraint
    recorded so far.  Summing recorded edge weights per resource
    (and per profile leaf) says which resource had consumed the most
    constrained cycles when the run died -- the watchdog attaches
    this to its :class:`~repro.core.watchdog.DiagnosticBundle` so a
    livelock report names a suspect, not just a cycle count.
    """
    if graph is None or not getattr(graph, "edges", None):
        return None
    resources: dict[str, float] = {}
    leaves: dict[str, float] = {}
    top_edge = None
    for edge in graph.edges:
        resource = _edge_resource(edge)
        if resource is None:
            continue
        resources[resource] = (resources.get(resource, 0.0)
                               + edge.weight)
        for leaf, cycles in _edge_leaves(edge, edge.weight).items():
            leaves[leaf] = leaves.get(leaf, 0.0) + cycles
        if top_edge is None or edge.weight > top_edge.weight:
            top_edge = edge
    if not resources or top_edge is None:
        return None
    ranked = sorted(resources,
                    key=lambda name: (-resources[name], name))
    return {
        "kind": "partial",
        "edges": len(graph.edges),
        "binding_resource": ranked[0],
        "resource_cycles": {name: resources[name]
                            for name in ranked},
        "top_segment": {
            "type": top_edge.type,
            "weight": top_edge.weight,
            "resource": _edge_resource(top_edge),
        },
        "top_leaves": {
            leaf: leaves[leaf]
            for leaf in sorted(leaves,
                               key=lambda key: (-leaves[key],
                                                key))[:5]},
    }


def build_critpath(result: "RunResult") -> dict[str, Any]:
    """Full ``repro.critpath-report/1`` for a finished run, including
    the conservation and profile-bounds cross-checks.

    Deterministic for a given run: maps are emitted in sorted or
    rank order and nothing wall-clock dependent is included.
    """
    from repro.obs.profile import build_profile

    graph = getattr(result, "event_graph", None)
    if graph is None or not graph.nodes:
        raise CritpathError(
            f"run {result.name!r} carries no event graph (produced "
            f"by an older simulator build?)")
    extraction = _extract(graph)
    total = float(result.metrics.total_cycles)
    path_cycles = extraction["path_cycles"]
    residual = abs(path_cycles - total)
    conservation_ok = residual <= PATH_TOLERANCE * max(total, 1.0)

    profile = build_profile(result)
    bounds = _profile_bounds(extraction["critical_leaves"], profile,
                             total)

    manifest = result.manifest
    return {
        "schema": CRITPATH_SCHEMA,
        "kind": "run",
        "program": result.name,
        "board_mode": result.board.mode,
        "request_digest": (manifest.request_digest
                           if manifest is not None else None),
        "total_cycles": total,
        "path_cycles": path_cycles,
        "graph": {"nodes": len(graph.nodes),
                  "edges": len(graph.edges)},
        "segments": extraction["segments"],
        "critical_leaves": extraction["critical_leaves"],
        "critical_edge_types": extraction["critical_edge_types"],
        "memory_driver": extraction["memory_driver"],
        "resources": extraction["resources"],
        "top_resources": extraction["top_resources"],
        "unattributed_cycles": extraction["unattributed_cycles"],
        "checks": {
            "conservation": {
                "ok": conservation_ok,
                "path_cycles": path_cycles,
                "total_cycles": total,
                "residual": residual,
            },
            "profile_bounds": bounds,
        },
    }


def _profile_bounds(critical_leaves: dict[str, float],
                    profile: dict[str, Any], total: float
                    ) -> dict[str, Any]:
    """Cross-validate: critical cycles per leaf cannot exceed the
    cycles the profile tree attributes to that leaf."""
    components = profile["components"]
    tolerance = 1e-6 * max(total, 1.0) + 1e-6
    checked = 0
    violations = []
    for leaf, critical in critical_leaves.items():
        if leaf == UNATTRIBUTED_LEAF:
            continue
        component, side, name = leaf.split(".", 2)
        tree = components.get(component, {}).get(side, {})
        if name not in tree:
            violations.append({"leaf": leaf, "critical": critical,
                               "bound": None,
                               "reason": "leaf missing from profile"})
            continue
        checked += 1
        bound = float(tree[name])
        if critical > bound + tolerance:
            violations.append({"leaf": leaf, "critical": critical,
                               "bound": bound,
                               "reason": "critical exceeds profile"})
    return {"ok": not violations, "checked": checked,
            "violations": violations}


def validate_critpath(report: Any) -> None:
    """Schema + conservation check for a critpath report; raises
    :class:`CritpathError`."""
    if not isinstance(report, dict):
        raise CritpathError("critpath report must be an object")
    if report.get("schema") != CRITPATH_SCHEMA:
        raise CritpathError(
            f"schema is {report.get('schema')!r}, expected "
            f"{CRITPATH_SCHEMA!r}")
    for key in ("total_cycles", "path_cycles", "segments",
                "critical_leaves", "resources", "checks"):
        if key not in report:
            raise CritpathError(f"critpath report missing {key!r}")
    checks = report["checks"]
    if not checks.get("conservation", {}).get("ok"):
        raise CritpathError(
            f"conservation check failed: path "
            f"{report['path_cycles']} vs total "
            f"{report['total_cycles']}")
    attributed = sum(report["critical_leaves"].values())
    if abs(attributed - report["path_cycles"]) > 1e-6 * max(
            report["path_cycles"], 1.0) + 1e-6:
        raise CritpathError(
            f"critical leaves sum to {attributed}, path is "
            f"{report['path_cycles']}")


def render_critpath(report: dict[str, Any]) -> str:
    """Human-readable view: binding resources, leaves, checks."""
    from repro.analysis.report import render_table

    total = max(report["total_cycles"], 1e-30)
    lines = [
        f"critical path of {report['program']} "
        f"({report['board_mode']}): {report['path_cycles']:.0f} of "
        f"{report['total_cycles']:.0f} cycles over "
        f"{len(report['segments'])} segments",
    ]
    rows = [[entry["resource"],
             f"{entry['critical_cycles']:.0f}",
             f"{entry['share'] * 100:.1f}%",
             f"{entry['min_slack']:.0f}"]
            for entry in report["top_resources"]]
    lines.append(render_table(
        "Binding resources",
        ["resource", "critical cycles", "share", "min slack"], rows))
    leaf_rows = [[leaf, f"{cycles:.0f}",
                  f"{cycles / total * 100:.1f}%"]
                 for leaf, cycles
                 in report["critical_leaves"].items()]
    lines.append(render_table(
        "Critical cycles by cause leaf",
        ["leaf", "cycles", "of total"], leaf_rows))
    checks = report["checks"]
    conservation = checks["conservation"]
    lines.append(
        f"conservation: "
        f"{'ok' if conservation['ok'] else 'FAILED'} "
        f"(residual {conservation['residual']:.3g} cycles); "
        f"profile bounds: "
        f"{'ok' if checks['profile_bounds']['ok'] else 'VIOLATED'} "
        f"({checks['profile_bounds']['checked']} leaves checked)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# What-if projection.
# ----------------------------------------------------------------------
def parse_scales(spec: str) -> dict[str, float]:
    """Parse ``"dram=2x,ags=3"`` into ``{"dram": 2.0, "ags": 3.0}``.

    A trailing ``x`` marks a speed factor; for ``ags`` the value is a
    lane *count*.  Unknown resources raise :class:`CritpathError`.
    """
    scales: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        name = name.strip().lower()
        if not sep or not value.strip():
            raise CritpathError(
                f"bad scale {part!r}: expected NAME=FACTOR "
                f"(e.g. dram=2x)")
        try:
            factor = float(value.strip().lower().rstrip("x"))
        except ValueError:
            raise CritpathError(
                f"bad scale factor in {part!r}") from None
        if not math.isfinite(factor) or factor <= 0:
            raise CritpathError(
                f"scale factor must be positive, got {part!r}")
        if name not in KNOWN_SCALES:
            raise CritpathError(
                f"unknown resource {name!r}; choose from "
                f"{', '.join(KNOWN_SCALES)}")
        scales[name] = factor
    if not scales:
        raise CritpathError("empty scale spec")
    return scales


def _scaled_weight_fn(graph: EventGraph, scales: dict[str, float]
                      ) -> Callable[[GraphEdge], float | None]:
    """Per-edge scaled weight; ``None`` drops the edge entirely."""
    num_ags = int(graph.meta.get("num_ags", 0))
    host_rate = float(graph.meta.get("host_issue_cycles", 0.0))
    dram = scales.get("dram", 1.0)
    host = scales.get("host", 1.0)
    microcode = scales.get("microcode", 1.0)
    srf = scales.get("srf", 1.0)
    clusters = scales.get("clusters", 1.0)
    drop_ag_edges = scales.get("ags", 0.0) > num_ags > 0

    def weight(edge: GraphEdge) -> float | None:
        w = edge.weight
        if edge.type == EDGE_AG_BUSY and drop_ag_edges:
            return None
        if edge.type == EDGE_HOST_ISSUE:
            # Only the pure host-rate spacing scales with MIPS; any
            # excess in the gap is blocked/back-off time a faster
            # host cannot shrink.
            if host_rate > 0.0:
                pure = min(w, host_rate)
                return pure / host + (w - pure)
            return w / host
        if edge.type == EDGE_MICROCODE_LOAD:
            return w / microcode
        if edge.type == EDGE_KERNEL_EXEC:
            detail = edge.detail
            busy = (float(detail.get("operations", 0.0))
                    + float(detail.get("main_loop_overhead", 0.0))
                    + float(detail.get("non_main_loop", 0.0)))
            stall = float(detail.get("stall", 0.0))
            load = float(detail.get("microcode", 0.0))
            parts = busy + stall + load
            rest = max(w - parts, 0.0)
            return (busy / clusters + stall / srf + load / microcode
                    + rest)
        if edge.type == EDGE_MEM_STREAM and dram != 1.0:
            detail = edge.detail
            startup = min(float(detail.get("startup", 0.0)), w)
            d = float(detail.get("dram_cycles", 0.0))
            a = float(detail.get("ag_cycles", 0.0))
            # Scaling the DRAM clock also scales the controller port
            # (mem_peak_words_per_cycle = channels / clock_ratio).
            c = float(detail.get("controller_cycles", 0.0))
            base = max(d, a, c)
            if base <= 0.0:
                return w
            scaled = max(d / dram, a, c / dram)
            return startup + (w - startup) * scaled / base
        return w

    return weight


def _replay(graph: EventGraph,
            weight: Callable[[GraphEdge], float | None]) -> float:
    """Forward-propagate node times over the DAG under ``weight``."""
    incoming = _incoming(graph)
    times = [0.0] * len(graph.nodes)
    for node in graph.nodes:
        best = 0.0
        for edge in incoming[node.ident]:
            w = weight(edge)
            if w is None:
                continue
            arrival = times[edge.src] + w
            if arrival > best:
                best = arrival
        times[node.ident] = best
    return times[graph.end.ident]


def project_whatif(graph: EventGraph, scales: dict[str, float]
                   ) -> dict[str, Any]:
    """Replay the DAG with scaled weights and predict the speedup.

    The unscaled replay calibrates the projection: any structural
    error in the recorded constraints (shared-resource rate changes
    the replay cannot see) shows up as ``replay_fidelity`` != 1 and
    is divided out of the prediction.
    """
    unknown = set(scales) - set(KNOWN_SCALES)
    if unknown:
        raise CritpathError(
            f"unknown resource(s) {sorted(unknown)}; choose from "
            f"{', '.join(KNOWN_SCALES)}")
    total = float(graph.meta.get("total_cycles", graph.end.t))
    baseline = _replay(graph, lambda edge: edge.weight)
    scaled = _replay(graph, _scaled_weight_fn(graph, scales))
    calibration = total / baseline if baseline > 0 else 1.0
    predicted = scaled * calibration
    return {
        "baseline_cycles": total,
        "replay_cycles": baseline,
        "replay_fidelity": baseline / total if total > 0 else 1.0,
        "scaled_replay_cycles": scaled,
        "predicted_cycles": predicted,
        "predicted_speedup": (total / predicted
                              if predicted > 0 else math.inf),
    }


def whatif_configs(machine: "MachineConfig", board: "BoardConfig",
                   scales: dict[str, float]
                   ) -> "tuple[MachineConfig, BoardConfig]":
    """Map a scaling spec onto a real machine/board change for
    validation reruns.  Raises :class:`CritpathError` for scalings
    the simulator cannot realise (``clusters``, fractional DRAM
    ratios, AG counts below the recorded machine)."""
    from dataclasses import replace

    for name in sorted(scales):
        factor = scales[name]
        if name == "dram":
            ratio = machine.dram.clock_ratio / factor
            if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
                raise CritpathError(
                    f"dram={factor:g}x needs an integer clock ratio; "
                    f"{machine.dram.clock_ratio} / {factor:g} is not")
            machine = replace(
                machine,
                dram=replace(machine.dram,
                             clock_ratio=int(round(ratio))))
        elif name == "ags":
            count = int(round(factor))
            if count < 1 or abs(count - factor) > 1e-9:
                raise CritpathError(
                    f"ags={factor:g} must be a positive lane count")
            machine = replace(machine, num_ags=count)
        elif name == "host":
            board = board.with_host_mips(board.host_mips * factor)
        elif name == "microcode":
            machine = replace(
                machine,
                microcode_load_cycles_per_word=(
                    machine.microcode_load_cycles_per_word / factor))
        elif name == "srf":
            machine = replace(
                machine,
                srf_prime_cycles=max(
                    0, int(round(machine.srf_prime_cycles / factor))))
        else:
            raise CritpathError(
                f"a {name!r} scaling cannot be validated by rerun "
                f"(predict-only)")
    return machine, board


def build_whatif(result: "RunResult", scales: dict[str, float],
                 validated: "RunResult | None" = None
                 ) -> dict[str, Any]:
    """One ``repro.whatif-report/1`` document: the projection, plus
    measured speedup and prediction error when a validation rerun is
    supplied."""
    graph = getattr(result, "event_graph", None)
    if graph is None or not graph.nodes:
        raise CritpathError(
            f"run {result.name!r} carries no event graph")
    projection = project_whatif(graph, scales)
    report: dict[str, Any] = {
        "schema": WHATIF_SCHEMA,
        "program": result.name,
        "board_mode": result.board.mode,
        "request_digest": (result.manifest.request_digest
                           if result.manifest is not None else None),
        "scales": {name: scales[name] for name in sorted(scales)},
        **projection,
        "validated": False,
    }
    if validated is not None:
        actual = float(validated.metrics.total_cycles)
        report["validated"] = True
        report["actual_cycles"] = actual
        report["actual_speedup"] = (
            projection["baseline_cycles"] / actual if actual > 0
            else math.inf)
        report["prediction_error"] = (
            abs(projection["predicted_cycles"] - actual) / actual
            if actual > 0 else math.inf)
    return report


def render_whatif(report: dict[str, Any]) -> str:
    """One-paragraph human-readable projection summary."""
    scales = ", ".join(f"{name}={factor:g}"
                       for name, factor in report["scales"].items())
    lines = [
        f"what-if {scales} on {report['program']} "
        f"({report['board_mode']}): "
        f"{report['baseline_cycles']:.0f} -> "
        f"{report['predicted_cycles']:.0f} predicted cycles "
        f"(speedup {report['predicted_speedup']:.2f}x, replay "
        f"fidelity {report['replay_fidelity'] * 100:.2f}%)",
    ]
    if report["validated"]:
        lines.append(
            f"validated: {report['actual_cycles']:.0f} actual cycles "
            f"(speedup {report['actual_speedup']:.2f}x); prediction "
            f"error {report['prediction_error'] * 100:.2f}%")
    else:
        lines.append("not validated against a rerun (--validate)")
    return "\n".join(lines)


__all__ = [
    "CRITPATH_SCHEMA",
    "WHATIF_SCHEMA",
    "KNOWN_SCALES",
    "UNATTRIBUTED_LEAF",
    "CritpathError",
    "EventGraph",
    "GraphEdge",
    "GraphNode",
    "build_critpath",
    "build_whatif",
    "critpath_summary",
    "parse_scales",
    "partial_critpath_summary",
    "project_whatif",
    "render_critpath",
    "render_whatif",
    "validate_critpath",
    "whatif_configs",
]
