"""Observability: tracing, counter registry, run manifests, exports.

The paper's evaluation *is* observability -- every figure comes from
attributing cycles and reading instruction timelines.  This package
gives the reproduction the same instruments as first-class, exportable
artifacts:

* :mod:`repro.obs.tracer` -- zero-cost-when-disabled span/event
  tracer threaded through the stream controller, memory system,
  micro-controller and clusters;
* :mod:`repro.obs.export` -- Chrome/Perfetto ``trace_event`` JSON and
  counter CSV exporters, plus the trace schema validator;
* :mod:`repro.obs.registry` -- named, self-describing counters with
  units and paper-target (expected value + tolerance) annotations;
* :mod:`repro.obs.manifest` -- the provenance record attached to
  every :class:`~repro.core.RunResult`.
"""

from repro.obs.export import (
    TraceValidationError,
    counters_csv,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.manifest import (
    REPORT_SCHEMA,
    RunManifest,
    build_manifest,
    machine_summary,
)
from repro.obs.registry import (
    PAPER_TARGETS,
    PaperTarget,
    Probe,
    ProbeRegistry,
    registry_from_result,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CounterSample,
    InstantEvent,
    NullTracer,
    SpanEvent,
    Tracer,
)

__all__ = [
    "TraceValidationError",
    "counters_csv",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "REPORT_SCHEMA",
    "RunManifest",
    "build_manifest",
    "machine_summary",
    "PAPER_TARGETS",
    "PaperTarget",
    "Probe",
    "ProbeRegistry",
    "registry_from_result",
    "NULL_TRACER",
    "CounterSample",
    "InstantEvent",
    "NullTracer",
    "SpanEvent",
    "Tracer",
]
