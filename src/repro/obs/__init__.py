"""Observability: tracing, counter registry, run manifests, exports.

The paper's evaluation *is* observability -- every figure comes from
attributing cycles and reading instruction timelines.  This package
gives the reproduction the same instruments as first-class, exportable
artifacts:

* :mod:`repro.obs.tracer` -- zero-cost-when-disabled span/event
  tracer threaded through the stream controller, memory system,
  micro-controller and clusters;
* :mod:`repro.obs.export` -- Chrome/Perfetto ``trace_event`` JSON and
  counter CSV exporters, plus the trace schema validator;
* :mod:`repro.obs.registry` -- named, self-describing counters with
  units and paper-target (expected value + tolerance) annotations;
* :mod:`repro.obs.manifest` -- the provenance record attached to
  every :class:`~repro.core.RunResult`;
* :mod:`repro.obs.profile` -- hierarchical cycle-accounting profiler
  (``repro.profile-report/1``: exclusive busy/stall/idle trees per
  component, per-kernel and per-stream-op rollups);
* :mod:`repro.obs.diff` -- category-by-category comparison of two
  profile reports with significance thresholds;
* :mod:`repro.obs.history` -- the append-only perf-history store
  behind ``repro perf`` and the benchmark trajectory;
* :mod:`repro.obs.critpath` -- critical-path extraction over the
  simulator's recorded event DAG (``repro.critpath-report/1``) and
  the what-if speedup projector behind ``repro whatif``;
* :mod:`repro.obs.metrics` -- stdlib-only labeled Counter / Gauge /
  Histogram registry with deterministic Prometheus text exposition
  (v0.0.4) and a strict parser, the live telemetry plane behind
  ``GET /metrics``;
* :mod:`repro.obs.stitch` -- cross-process trace stitching: one
  Perfetto document per served job, HTTP accept -> queue wait ->
  engine execute -> per-component simulator spans.
"""

from repro.obs.critpath import (
    CRITPATH_SCHEMA,
    WHATIF_SCHEMA,
    CritpathError,
    EventGraph,
    build_critpath,
    build_whatif,
    critpath_summary,
    parse_scales,
    project_whatif,
    render_critpath,
    render_whatif,
    validate_critpath,
    whatif_configs,
)
from repro.obs.diff import (
    DIFF_SCHEMA,
    diff_profiles,
    render_diff,
)
from repro.obs.export import (
    TraceValidationError,
    counters_csv,
    finalize_events,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.history import (
    HISTORY_SCHEMA,
    append_history,
    history_entry,
    read_history,
)
from repro.obs.metrics import (
    CONTENT_TYPE,
    LATENCY_BUCKETS_MS,
    Counter,
    ExpositionError,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    counter_totals,
    parse_prometheus,
    probes_from_metrics,
    render_prometheus,
)
from repro.obs.stitch import (
    SERVICE_PID,
    SIMULATOR_PID,
    TraceContext,
    stitch_job_trace,
    validate_stitched_trace,
)
from repro.obs.manifest import (
    REPORT_SCHEMA,
    RunManifest,
    build_manifest,
    machine_summary,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    ProfileError,
    build_profile,
    kernel_catalog_profile,
    render_profile,
    validate_profile,
)
from repro.obs.registry import (
    COUNTER_UNITS,
    PAPER_TARGETS,
    PaperTarget,
    Probe,
    ProbeRegistry,
    registry_from_result,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CounterSample,
    InstantEvent,
    NullTracer,
    SpanEvent,
    Tracer,
)

__all__ = [
    "CRITPATH_SCHEMA",
    "WHATIF_SCHEMA",
    "CritpathError",
    "EventGraph",
    "build_critpath",
    "build_whatif",
    "critpath_summary",
    "parse_scales",
    "project_whatif",
    "render_critpath",
    "render_whatif",
    "validate_critpath",
    "whatif_configs",
    "DIFF_SCHEMA",
    "diff_profiles",
    "render_diff",
    "HISTORY_SCHEMA",
    "append_history",
    "history_entry",
    "read_history",
    "PROFILE_SCHEMA",
    "ProfileError",
    "build_profile",
    "kernel_catalog_profile",
    "render_profile",
    "validate_profile",
    "COUNTER_UNITS",
    "TraceValidationError",
    "counters_csv",
    "finalize_events",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "CONTENT_TYPE",
    "LATENCY_BUCKETS_MS",
    "Counter",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "counter_totals",
    "parse_prometheus",
    "probes_from_metrics",
    "render_prometheus",
    "SERVICE_PID",
    "SIMULATOR_PID",
    "TraceContext",
    "stitch_job_trace",
    "validate_stitched_trace",
    "REPORT_SCHEMA",
    "RunManifest",
    "build_manifest",
    "machine_summary",
    "PAPER_TARGETS",
    "PaperTarget",
    "Probe",
    "ProbeRegistry",
    "registry_from_result",
    "NULL_TRACER",
    "CounterSample",
    "InstantEvent",
    "NullTracer",
    "SpanEvent",
    "Tracer",
]
