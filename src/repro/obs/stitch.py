"""Cross-process trace stitching: one Perfetto file per job.

A job submitted over HTTP lives in two processes: the experiment
service (accept -> queue -> engine execute) and the pool worker that
runs the simulator.  Each side already has good telemetry -- the
service knows its admission/queue/execution wall times, the simulator
has a full per-component :class:`~repro.obs.tracer.Tracer` -- but
until now they exported as *separate* documents with no shared
timeline.

:func:`stitch_job_trace` merges them: service-side spans land on
:data:`SERVICE_PID`, the simulator document is rebased onto
:data:`SIMULATOR_PID` with its timestamps shifted to the start of the
service's ``engine execute`` span, and ``M``-phase process/thread
metadata names both tracks.  The result is a single Chrome
trace-event document where HTTP accept -> queue wait -> engine
execute -> per-component simulator spans read as one causal chain,
all carrying the same ``job_id``/``digest`` args.

The :class:`TraceContext` carried from the HTTP layer into the worker
is deliberately tiny (job id + request digest): it is the correlation
key, not a baggage bag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.export import (TraceValidationError, finalize_events,
                              validate_chrome_trace)

#: pid of the service-side track in a stitched document.
SERVICE_PID = 1
#: pid of the rebased simulator track in a stitched document.
SIMULATOR_PID = 2

#: Span names on the service track, in causal order.
SERVICE_SPANS = ("http accept", "queue wait", "engine execute")


@dataclass(frozen=True)
class TraceContext:
    """Correlation key carried from the HTTP layer into the worker."""

    job_id: str
    digest: str

    def args(self) -> dict[str, str]:
        return {"job_id": self.job_id, "digest": self.digest}


def _service_events(context: TraceContext, admit_us: float,
                    queue_us: float, execute_us: float
                    ) -> list[dict[str, Any]]:
    args = context.args()
    total_us = admit_us + queue_us + execute_us
    events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "ts": 0,
         "pid": SERVICE_PID, "tid": 0,
         "args": {"name": "experiment-service"}},
        {"name": "thread_name", "ph": "M", "ts": 0,
         "pid": SERVICE_PID, "tid": 0, "args": {"name": "job"}},
        {"name": "thread_name", "ph": "M", "ts": 0,
         "pid": SERVICE_PID, "tid": 1, "args": {"name": "lifecycle"}},
        {"name": f"job {context.job_id}", "cat": "serve", "ph": "X",
         "ts": 0.0, "dur": total_us, "pid": SERVICE_PID, "tid": 0,
         "args": args},
    ]
    starts = (0.0, admit_us, admit_us + queue_us)
    durations = (admit_us, queue_us, execute_us)
    for name, start, dur in zip(SERVICE_SPANS, starts, durations):
        events.append({
            "name": name, "cat": "serve", "ph": "X",
            "ts": start, "dur": dur,
            "pid": SERVICE_PID, "tid": 1, "args": args,
        })
    return events


def _rebase_simulator(document: dict[str, Any], offset_us: float,
                      context: TraceContext) -> list[dict[str, Any]]:
    """Shift a simulator document onto the stitched timeline.

    Events move to :data:`SIMULATOR_PID`; non-metadata timestamps are
    offset so cycle 0 aligns with the service's ``engine execute``
    start; the process is renamed so Perfetto shows both tracks.
    """
    events = []
    for source in document.get("traceEvents", []):
        event = dict(source)
        event["pid"] = SIMULATOR_PID
        if event["ph"] == "M":
            if event["name"] == "process_name":
                event["args"] = {"name": "imagine-simulator"}
        else:
            event["ts"] = event["ts"] + offset_us
            event["args"] = {**event.get("args", {}),
                             **context.args()}
            event.pop("id", None)
        events.append(event)
    return events


def stitch_job_trace(context: TraceContext, *, admit_s: float,
                     queue_s: float, execute_s: float,
                     simulator: dict[str, Any] | None = None
                     ) -> dict[str, Any]:
    """Merge service-side timings and a simulator trace document.

    ``admit_s``/``queue_s``/``execute_s`` are the wall-clock phase
    durations measured by the service (clamped at zero: clock skew
    chaos keeps the *offset* constant, but defensive clamping keeps
    the validator's non-negative-duration invariant safe regardless).
    ``simulator`` is a document from
    :func:`repro.obs.export.to_chrome_trace`, or ``None`` for jobs
    that ran untraced (cache hits, coalesced followers).
    """
    admit_us = max(admit_s, 0.0) * 1e6
    queue_us = max(queue_s, 0.0) * 1e6
    execute_us = max(execute_s, 0.0) * 1e6
    events = _service_events(context, admit_us, queue_us, execute_us)
    if simulator is not None:
        events.extend(_rebase_simulator(
            simulator, admit_us + queue_us, context))
    finalize_events(events)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"job_id": context.job_id,
                      "digest": context.digest,
                      "schema": "repro.job-trace/1"},
    }
    return document


def validate_stitched_trace(document: dict[str, Any]) -> dict[str, Any]:
    """Assert the full HTTP -> queue -> engine -> simulator chain.

    Runs the structural :func:`validate_chrome_trace` check first,
    then the stitching contract: the three service spans exist in
    causal order on :data:`SERVICE_PID`, each carrying the same
    ``job_id``/``digest``, and -- when a simulator track is present --
    every simulator span starts no earlier than ``engine execute``.
    Returns a summary ``{job_id, digest, tracks, simulator_spans}``.
    """
    tracks = validate_chrome_trace(document)
    events = document["traceEvents"]
    spans = {event["name"]: event for event in events
             if event["ph"] == "X" and event["pid"] == SERVICE_PID}
    missing = [name for name in SERVICE_SPANS if name not in spans]
    if missing:
        raise TraceValidationError(
            f"stitched trace is missing service spans {missing}")
    contexts = {(event["args"].get("job_id"),
                 event["args"].get("digest"))
                for name, event in spans.items()
                if name in SERVICE_SPANS}
    if len(contexts) != 1 or None in next(iter(contexts)):
        raise TraceValidationError(
            f"service spans disagree on job context: {sorted(contexts)}")
    job_id, digest = next(iter(contexts))
    clock = 0.0
    for name in SERVICE_SPANS:
        span = spans[name]
        if span["ts"] < clock:
            raise TraceValidationError(
                f"span {name!r} starts at {span['ts']} before the "
                f"previous phase ended at {clock}")
        clock = span["ts"] + span["dur"]
    exec_start = spans["engine execute"]["ts"]
    simulator_spans = [event for event in events
                       if event["ph"] == "X"
                       and event["pid"] == SIMULATOR_PID]
    for event in simulator_spans:
        if event["ts"] < exec_start:
            raise TraceValidationError(
                f"simulator span {event['name']!r} at {event['ts']} "
                f"precedes engine execute at {exec_start}")
        if event["args"].get("job_id") != job_id:
            raise TraceValidationError(
                f"simulator span {event['name']!r} lost the job "
                f"context")
    return {"job_id": job_id, "digest": digest, "tracks": tracks,
            "simulator_spans": len(simulator_spans)}
