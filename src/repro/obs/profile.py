"""Hierarchical cycle-accounting profiler (``repro.profile-report/1``).

Every figure in the paper is a cycle-attribution exercise: Figure 6
splits kernel run time into busy categories plus SRF stalls, Figure 11
splits whole-application time into the eight
:class:`~repro.core.metrics.CycleCategory` buckets, and Table 6
compares those splits across platform models.  This module folds one
finished :class:`~repro.core.RunResult` into a single deterministic
JSON artifact that answers all of those questions at once:

* a **component tree** -- for the cluster array, each address
  generator, each DRAM channel and the host interface, an *exclusive*
  busy / stall / idle decomposition whose leaves sum exactly to the
  run's total cycles (conservation is checked by
  :func:`validate_profile` and asserted in the test matrix);
* **per-kernel** and **per-stream-op rollups** -- the Figure 6 and
  Table 5 views, including the per-FU occupancy detail behind
  Figure 7 (inter-cluster COMM shows up here);
* the verbatim **figure6** / **figure11** blocks the benchmark
  ``.txt`` writers render, byte-identical to the pre-profiler output.

Category taxonomy (see docs/observability.md for the full story):

==============================  =====================================
profile leaf                    source :class:`CycleCategory`
==============================  =====================================
busy.operations                 OPERATIONS
busy.kernel_main_loop_overhead  KERNEL_MAIN_LOOP_OVERHEAD
busy.kernel_non_main_loop       KERNEL_NON_MAIN_LOOP
stall.srf_starve                CLUSTER_STALL
stall.microcode_load            MICROCODE_LOAD_STALL
stall.memory                    MEMORY_STALL
stall.scoreboard_dispatch       STREAM_CONTROLLER_OVERHEAD
stall.host_serialization        HOST_BANDWIDTH_STALL
idle                            exact residual (``total - busy - stall``)
==============================  =====================================

Per-FU busy cycles are *occupancy* (concurrent units overlap), so
they are reported as the ``fu_occupancy_cycles`` annotation next to
the exclusive tree, never inside it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.metrics import CycleCategory
from repro.isa.stream_ops import StreamOpType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import MachineConfig
    from repro.core.processor import RunResult

#: Version tag for the profile-report layout.
PROFILE_SCHEMA = "repro.profile-report/1"

#: Cluster busy leaves, in :class:`CycleCategory` declaration order.
BUSY_LEAVES: dict[str, CycleCategory] = {
    "operations": CycleCategory.OPERATIONS,
    "kernel_main_loop_overhead": CycleCategory.KERNEL_MAIN_LOOP_OVERHEAD,
    "kernel_non_main_loop": CycleCategory.KERNEL_NON_MAIN_LOOP,
}

#: Cluster stall leaves, in :class:`CycleCategory` declaration order.
STALL_LEAVES: dict[str, CycleCategory] = {
    "srf_starve": CycleCategory.CLUSTER_STALL,
    "microcode_load": CycleCategory.MICROCODE_LOAD_STALL,
    "memory": CycleCategory.MEMORY_STALL,
    "scoreboard_dispatch": CycleCategory.STREAM_CONTROLLER_OVERHEAD,
    "host_serialization": CycleCategory.HOST_BANDWIDTH_STALL,
}

#: CycleCategory -> profile leaf path (used to tag tracer accounting
#: spans so a Perfetto view and a profile report share vocabulary).
CATEGORY_LEAF: dict[CycleCategory, str] = {
    **{category: f"busy.{leaf}"
       for leaf, category in BUSY_LEAVES.items()},
    **{category: f"stall.{leaf}"
       for leaf, category in STALL_LEAVES.items()},
}

#: Conservation tolerance: the simulator asserts attribution to
#: 1e-3 of total cycles, so the cluster idle residual is bounded by
#: the same figure.
CONSERVATION_TOLERANCE = 1e-3


class ProfileError(ValueError):
    """The document is not a valid profile report."""


def _component(total: float, busy: dict[str, float],
               stall: dict[str, float]) -> dict[str, Any]:
    """One exclusive busy/stall/idle decomposition over ``total``.

    ``idle`` is computed as the exact residual, so
    ``busy_total + stall_total + idle == total`` holds by
    construction (to float addition error).
    """
    busy = {leaf: float(value) for leaf, value in busy.items()}
    stall = {leaf: float(value) for leaf, value in stall.items()}
    busy_total = sum(busy.values())
    stall_total = sum(stall.values())
    return {
        "total": float(total),
        "busy": busy,
        "busy_total": busy_total,
        "stall": stall,
        "stall_total": stall_total,
        "idle": float(total) - busy_total - stall_total,
    }


def _kernel_rollup(result: "RunResult") -> list[dict[str, Any]]:
    """Aggregate invocation records by kernel name (Figure 6 rows)."""
    totals: dict[str, dict[str, Any]] = {}
    for record in result.metrics.kernel_invocations:
        entry = totals.setdefault(record.kernel, {
            "invocations": 0, "stream_elements": 0,
            "busy_cycles": 0, "stall_cycles": 0,
            "fu_cycles": {}})
        entry["invocations"] += 1
        entry["stream_elements"] += record.stream_elements
        entry["busy_cycles"] += record.busy_cycles
        entry["stall_cycles"] += record.stall_cycles
        for unit, cycles in record.fu_cycles.items():
            entry["fu_cycles"][unit] = (
                entry["fu_cycles"].get(unit, 0) + cycles)
    rows = []
    for kernel in sorted(totals):
        entry = totals[kernel]
        cycles = max(entry["busy_cycles"] + entry["stall_cycles"], 1)
        rows.append({
            "kernel": kernel,
            "invocations": entry["invocations"],
            "stream_elements": entry["stream_elements"],
            "busy_cycles": entry["busy_cycles"],
            "stall_cycles": entry["stall_cycles"],
            "busy_fraction": entry["busy_cycles"] / cycles,
            "stall_fraction": entry["stall_cycles"] / cycles,
            "fu_cycles": {unit: entry["fu_cycles"][unit]
                          for unit in sorted(entry["fu_cycles"])},
        })
    return rows


def _stream_op_rollup(result: "RunResult") -> list[dict[str, Any]]:
    """Aggregate the instruction trace by stream-op type."""
    totals: dict[str, dict[str, float]] = {}
    for event in result.trace:
        entry = totals.setdefault(event.op, {
            "count": 0, "cycles": 0.0, "queue_cycles": 0.0})
        entry["count"] += 1
        entry["cycles"] += event.duration
        entry["queue_cycles"] += event.queue_delay
    return [{
        "op": op,
        "count": int(totals[op]["count"]),
        "cycles": totals[op]["cycles"],
        "queue_cycles": totals[op]["queue_cycles"],
    } for op in sorted(totals)]


def build_profile(result: "RunResult") -> dict[str, Any]:
    """Fold one finished run into a ``repro.profile-report/1`` dict.

    The document is deterministic for a given run: every map is
    emitted in declaration or sorted order and nothing wall-clock
    dependent is included, so serialising it with ``json.dumps`` is
    byte-stable across processes, job counts and hash seeds.
    """
    metrics = result.metrics
    total = float(metrics.total_cycles)
    cycles = {category: float(metrics.cycles.get(category, 0.0))
              for category in CycleCategory}

    components: dict[str, dict[str, Any]] = {}
    clusters = _component(
        total,
        busy={leaf: cycles[category]
              for leaf, category in BUSY_LEAVES.items()},
        stall={leaf: cycles[category]
               for leaf, category in STALL_LEAVES.items()})
    fu_occupancy: dict[str, int] = {}
    for record in metrics.kernel_invocations:
        for unit, busy in record.fu_cycles.items():
            fu_occupancy[unit] = fu_occupancy.get(unit, 0) + busy
    clusters["fu_occupancy_cycles"] = {
        unit: fu_occupancy[unit] for unit in sorted(fu_occupancy)}
    components["clusters"] = clusters

    for lane in range(metrics.machine.num_ags):
        busy = min(metrics.ag_busy_cycles.get(lane, 0.0), total)
        components[f"ag{lane}"] = _component(
            total, busy={"stream_transfer": busy}, stall={})
    for channel in range(metrics.machine.dram.channels):
        busy = min(metrics.dram_channel_busy.get(channel, 0.0), total)
        components[f"dram_ch{channel}"] = _component(
            total, busy={"access": busy}, stall={})
    host_busy = min(metrics.host_busy_cycles, total)
    # Round-trip waits never overlap issue transfers (the host does
    # one thing at a time), but clamp so busy can never exceed total.
    round_trip_busy = min(
        metrics.host_round_trips * result.board.host_round_trip_cycles,
        max(0.0, total - host_busy))
    components["host"] = _component(
        total, busy={"issue": host_busy,
                     "round_trip": round_trip_busy}, stall={})

    # Stream-controller occupancy: one disjoint issue window per
    # instruction, plus one dispatch cycle per register/misc op it
    # executes itself.  Dispatch can overlap the next issue window,
    # hence the nested clamp.
    issue_overhead = (metrics.machine.stream_controller_issue_cycles
                      + result.board.issue_pipeline_cycles)
    dispatched = sum(
        1 for event in result.trace
        if StreamOpType(event.op).is_register_op
        or StreamOpType(event.op).is_misc)
    controller_issue = min(issue_overhead * len(result.trace), total)
    components["controller"] = _component(
        total,
        busy={"issue": controller_issue,
              "dispatch": min(float(dispatched),
                              max(0.0, total - controller_issue))},
        stall={})

    components["microcontroller"] = _component(
        total,
        busy={"load": min(metrics.microcode_loader_busy_cycles,
                          total)},
        stall={})

    kernels = _kernel_rollup(result)
    figure6 = {row["kernel"]: {"busy": row["busy_fraction"],
                               "stall": row["stall_fraction"]}
               for row in kernels}
    # Figure 11 verbatim: CycleCategory declaration order, fractions
    # of total -- exactly what application_breakdown() reports, so
    # the benchmark .txt renders are byte-identical.
    fractions = metrics.cycle_fractions()
    figure11 = {category.value: fractions[category]
                for category in CycleCategory}

    from repro.obs.critpath import critpath_summary

    manifest = result.manifest
    return {
        "schema": PROFILE_SCHEMA,
        "kind": "run",
        "program": result.name,
        "board_mode": result.board.mode,
        "request_digest": (manifest.request_digest
                           if manifest is not None else None),
        "total_cycles": total,
        "critpath": critpath_summary(result),
        "summary": {
            "busy_fraction": clusters["busy_total"] / max(total, 1e-30),
            "stall_fraction": clusters["stall_total"] / max(total, 1e-30),
            "idle_fraction": clusters["idle"] / max(total, 1e-30),
            "gops": metrics.gops,
            "gflops": metrics.gflops,
            "watts": result.power.watts,
        },
        "components": components,
        "kernels": kernels,
        "stream_ops": _stream_op_rollup(result),
        "figure6": figure6,
        "figure11": figure11,
    }


def kernel_catalog_profile(machine: "MachineConfig | None" = None
                           ) -> dict[str, Any]:
    """Figure-6 profile of the standalone Table-2 kernel catalog.

    A ``kind: "kernel-catalog"`` sibling of :func:`build_profile` for
    the compiled-schedule view (no simulation): each kernel's
    :func:`~repro.analysis.breakdown.kernel_breakdown` fractions at
    its application-typical stream length.  The benchmark Figure-6
    writer renders from this single artifact.
    """
    from repro.analysis.breakdown import kernel_breakdown
    from repro.kernels import KERNEL_LIBRARY
    from repro.kernels.library import TABLE2_KERNELS

    return {
        "schema": PROFILE_SCHEMA,
        "kind": "kernel-catalog",
        "kernels": {name: kernel_breakdown(KERNEL_LIBRARY[name],
                                           machine=machine)
                    for name in TABLE2_KERNELS},
    }


def validate_profile(profile: Any,
                     tolerance: float = CONSERVATION_TOLERANCE) -> None:
    """Check schema and exact cycle conservation; raises
    :class:`ProfileError`.

    For every component, the busy and stall leaves must sum to their
    recorded totals and ``busy + stall + idle`` must equal the
    component total exactly (float addition error only); the cluster
    idle residual must stay within ``tolerance`` of total cycles,
    mirroring the simulator's own conservation assertion.
    """
    if not isinstance(profile, dict):
        raise ProfileError("profile must be an object")
    if profile.get("schema") != PROFILE_SCHEMA:
        raise ProfileError(
            f"schema is {profile.get('schema')!r}, "
            f"expected {PROFILE_SCHEMA!r}")
    if profile.get("kind") == "kernel-catalog":
        if not isinstance(profile.get("kernels"), dict):
            raise ProfileError("kernel-catalog profile missing kernels")
        return
    total = profile.get("total_cycles")
    components = profile.get("components")
    if not isinstance(total, (int, float)) or not isinstance(
            components, dict) or not components:
        raise ProfileError("profile missing total_cycles/components")
    scale = max(1.0, float(total))
    for name, component in components.items():
        for side in ("busy", "stall"):
            leaves = component.get(side, {})
            recorded = component.get(f"{side}_total", 0.0)
            if abs(sum(leaves.values()) - recorded) > 1e-6 * scale:
                raise ProfileError(
                    f"{name}: {side} leaves sum to "
                    f"{sum(leaves.values())}, recorded {recorded}")
        attributed = (component["busy_total"] + component["stall_total"]
                      + component["idle"])
        if abs(attributed - component["total"]) > 1e-6 * scale:
            raise ProfileError(
                f"{name}: busy+stall+idle = {attributed}, "
                f"total {component['total']}")
        if component["idle"] < -tolerance * scale:
            raise ProfileError(
                f"{name}: over-attributed by {-component['idle']} "
                f"cycles (idle residual below -{tolerance} * total)")


def render_profile(profile: dict[str, Any]) -> str:
    """Human-readable summary of a run profile."""
    from repro.analysis.report import render_table

    lines = [f"profile of {profile['program']} "
             f"({profile['board_mode']}): "
             f"{profile['total_cycles']:.0f} cycles, "
             f"busy {profile['summary']['busy_fraction'] * 100:.1f}% / "
             f"stall {profile['summary']['stall_fraction'] * 100:.1f}% / "
             f"idle {profile['summary']['idle_fraction'] * 100:.1f}%",
             ""]
    rows = []
    for name, component in profile["components"].items():
        total = max(component["total"], 1e-30)
        rows.append([
            name,
            f"{component['busy_total']:.0f}",
            f"{component['stall_total']:.0f}",
            f"{component['idle']:.0f}",
            f"{component['busy_total'] / total * 100:.1f}%",
        ])
    lines.append(render_table(
        "Component cycle accounting",
        ["component", "busy", "stall", "idle", "utilization"], rows))
    lines.append("")
    stall_rows = [
        [leaf, f"{cycles:.0f}",
         f"{cycles / max(profile['total_cycles'], 1e-30) * 100:.1f}%"]
        for leaf, cycles
        in profile["components"]["clusters"]["stall"].items()]
    lines.append(render_table(
        "Cluster stall causes",
        ["cause", "cycles", "of total"], stall_rows))
    if profile["kernels"]:
        lines.append("")
        kernel_rows = [
            [row["kernel"], row["invocations"],
             f"{row['busy_cycles']}",
             f"{row['busy_fraction'] * 100:.1f}%",
             f"{row['stall_fraction'] * 100:.1f}%"]
            for row in profile["kernels"]]
        lines.append(render_table(
            "Per-kernel busy/stall (Figure 6 view)",
            ["kernel", "calls", "busy cycles", "busy", "stall"],
            kernel_rows))
    return "\n".join(lines)


__all__ = [
    "PROFILE_SCHEMA",
    "BUSY_LEAVES",
    "STALL_LEAVES",
    "CATEGORY_LEAF",
    "CONSERVATION_TOLERANCE",
    "ProfileError",
    "build_profile",
    "kernel_catalog_profile",
    "validate_profile",
    "render_profile",
]
