"""Labeled metrics: Counter / Gauge / Histogram + Prometheus text.

The serving layer needs *live* observability: the PR 1 probe
registry describes one finished run, but a long-running
:class:`~repro.serve.service.ExperimentService` must be scrapeable
while load tests run.  This module is the stdlib-only metrics plane
under that:

* :class:`Counter`, :class:`Gauge` and :class:`Histogram` with
  **frozen label sets** -- the label *names* are declared at
  registration and every ``labels(...)`` call must bind exactly
  those names, so series cardinality is a reviewable constant;
* a thread-safe :class:`MetricsRegistry` with get-or-create
  registration (identical re-registration returns the same metric,
  a conflicting one raises), :meth:`~MetricsRegistry.snapshot` and
  :meth:`~MetricsRegistry.reset`;
* :func:`render_prometheus` -- Prometheus text exposition format
  v0.0.4, family names sorted and children ordered by label values,
  so two scrapes of identical state are **byte-identical**;
* :func:`parse_prometheus` -- the strict parser the tests and the CI
  soak job validate scrapes with;
* :func:`probes_from_metrics` -- the bridge into the PR 1
  :class:`~repro.obs.registry.ProbeRegistry` vocabulary.

Every metric carries a unit.  When none is passed explicitly the
name is looked up in :data:`repro.obs.registry.COUNTER_UNITS`; a
name missing from that vocabulary raises :class:`MetricError`, so an
unregistered unit fails tier-1 the moment the metric is built.

Histogram bucket boundaries are fixed at construction (defaults:
:data:`LATENCY_BUCKETS_MS`), so exposition output is deterministic
under seeded load -- the same observations always land in the same
buckets.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricError",
    "MetricsRegistry",
    "counter_totals",
    "parse_prometheus",
    "probes_from_metrics",
    "render_prometheus",
]

#: Content-Type for ``GET /metrics`` responses.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Fixed latency bucket upper bounds, in milliseconds.  Spanning
#: sub-millisecond artifact hits through multi-minute cold
#: simulations; fixed so seeded load produces deterministic bucket
#: assignment.
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0, 120000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"        # sample name
    r"(?:\{(.*)\})?"                       # optional label block
    r" (\S+)$")                            # value
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_KINDS = ("counter", "gauge", "histogram")


class MetricError(ValueError):
    """Bad metric name, label set, unit, or registration conflict."""


def _resolve_unit(name: str, unit: str | None) -> str:
    if unit is not None:
        return unit
    from repro.obs.registry import COUNTER_UNITS

    try:
        return COUNTER_UNITS[name]
    except KeyError:
        raise MetricError(
            f"metric {name!r} has no unit registered in "
            f"repro.obs.registry.COUNTER_UNITS and none was passed; "
            f"add one to the vocabulary") from None


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Deterministic sample formatting: integers bare, floats repr."""
    if value != value:                      # pragma: no cover - NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else _fmt(bound)


class _Child:
    """One labeled series of a metric."""

    __slots__ = ("_lock", "value", "buckets", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] | None) -> None:
        self._lock = threading.Lock()
        self.value = 0.0
        if bounds is not None:
            self.buckets = [0] * len(bounds)
            self.sum = 0.0
            self.count = 0

    # Counter / Gauge -------------------------------------------------
    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class _CounterChild(_Child):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counter series cannot decrease")
        super().inc(amount)


class _HistogramChild(_Child):
    __slots__ = ("_bounds",)

    def __init__(self, bounds: tuple[float, ...]) -> None:
        super().__init__(bounds)
        self._bounds = bounds

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self.buckets[index] += 1
                    break

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts, one per bound (last == count)."""
        total = 0
        out = []
        for n in self.buckets:
            total += n
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (the smallest
        bucket boundary whose cumulative count covers ``q`` of the
        observations); 0.0 on an empty series."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for bound, cum in zip(self._bounds, self.cumulative()):
            if cum >= rank:
                return bound
        return self._bounds[-1]


class Metric:
    """A named metric family with a frozen label-name set."""

    kind = "untyped"
    _child_cls: type = _Child

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = (),
                 unit: str | None = None,
                 buckets: Sequence[float] | None = None) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"bad metric name {name!r}")
        label_names = tuple(label_names)
        for label in label_names:
            if not _LABEL_RE.match(label) or label == "le":
                raise MetricError(
                    f"bad label name {label!r} on metric {name!r}")
        if len(set(label_names)) != len(label_names):
            raise MetricError(
                f"duplicate label names on metric {name!r}")
        self.name = name
        self.help = help
        self.unit = _resolve_unit(name, unit)
        self.label_names = label_names
        self._bounds: tuple[float, ...] | None = None
        if self.kind == "histogram":
            bounds = tuple(float(b) for b in
                           (buckets if buckets is not None
                            else LATENCY_BUCKETS_MS))
            if list(bounds) != sorted(bounds) or len(set(bounds)) \
                    != len(bounds):
                raise MetricError(
                    f"histogram {name!r} buckets must be strictly "
                    f"increasing")
            if not bounds or bounds[-1] != math.inf:
                bounds = bounds + (math.inf,)
            self._bounds = bounds
        elif buckets is not None:
            raise MetricError(
                f"buckets are only valid on histograms ({name!r})")
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}

    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        return (self.kind, self.label_names, self.unit, self._bounds)

    def labels(self, **labels: str) -> Any:
        """The child series for exactly this metric's label names."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}")
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = (_HistogramChild(self._bounds)
                             if self._bounds is not None
                             else self._child_cls(None))
                    self._children[key] = child
        return child

    def _default(self) -> Any:
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labeled "
                f"({list(self.label_names)}); call .labels(...)")
        return self.labels()

    def children(self) -> Iterator[tuple[tuple[str, ...], _Child]]:
        """Children sorted by label values (deterministic)."""
        with self._lock:
            items = sorted(self._children.items())
        return iter(items)

    def reset(self) -> None:
        with self._lock:
            self._children.clear()


class Counter(Metric):
    """Monotonically increasing count (enforced per child series)."""

    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)


class Histogram(Metric):
    """Observations bucketed at fixed boundaries."""

    kind = "histogram"

    def observe(self, value: float) -> None:
        self._default().observe(value)


class MetricsRegistry:
    """Thread-safe, name-unique collection of metric families.

    Registration is get-or-create: asking again with the same
    signature (kind, labels, unit, buckets) returns the existing
    family -- that is what lets every worker-thread engine session
    share the service's registry -- while a conflicting signature
    raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------
    def _register(self, cls: type, name: str, help: str,
                  labels: Sequence[str], unit: str | None,
                  buckets: Sequence[float] | None = None) -> Any:
        candidate = (cls(name, help, labels, unit, buckets)
                     if cls is Histogram
                     else cls(name, help, labels, unit))
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                self._metrics[name] = candidate
                return candidate
            if (type(existing) is cls
                    and existing.signature() == candidate.signature()):
                return existing
            raise MetricError(
                f"metric {name!r} already registered with a "
                f"different signature ({existing.signature()} vs "
                f"{candidate.signature()})")

    def counter(self, name: str, help: str,
                labels: Sequence[str] = (),
                unit: str | None = None) -> Counter:
        return self._register(Counter, name, help, labels, unit)

    def gauge(self, name: str, help: str,
              labels: Sequence[str] = (),
              unit: str | None = None) -> Gauge:
        return self._register(Gauge, name, help, labels, unit)

    def histogram(self, name: str, help: str,
                  labels: Sequence[str] = (),
                  unit: str | None = None,
                  buckets: Sequence[float] | None = None) -> Histogram:
        return self._register(Histogram, name, help, labels, unit,
                              buckets)

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def collect(self) -> Iterator[Metric]:
        """Families in name order (the exposition order)."""
        with self._lock:
            families = [self._metrics[name]
                        for name in sorted(self._metrics)]
        return iter(families)

    def snapshot(self) -> dict[str, dict]:
        """Deterministic ``name -> {type, help, unit, samples}``."""
        out: dict[str, dict] = {}
        for metric in self.collect():
            samples = []
            for key, child in metric.children():
                labels = dict(zip(metric.label_names, key))
                if metric.kind == "histogram":
                    assert isinstance(child, _HistogramChild)
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {
                            _fmt_le(bound): cum
                            for bound, cum in zip(child._bounds,
                                                  child.cumulative())},
                    })
                else:
                    samples.append({"labels": labels,
                                    "value": child.value})
            out[metric.name] = {"type": metric.kind,
                                "help": metric.help,
                                "unit": metric.unit,
                                "samples": samples}
        return out

    def reset(self) -> None:
        """Zero every family (registrations survive)."""
        for metric in self.collect():
            metric.reset()

    def render(self) -> str:
        return render_prometheus(self)


def _labels_text(names: Sequence[str], values: Sequence[str],
                 extra: str | None = None) -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(names, values)]
    if extra is not None:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format v0.0.4.

    Families are name-sorted and children label-sorted, so rendering
    the same registry state twice is byte-identical -- the contract
    the CI soak job's ``cmp`` of idle scrapes rests on.
    """
    lines: list[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} "
                     f"{_escape_help(metric.help)} "
                     f"(unit: {metric.unit})")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, child in metric.children():
            if metric.kind == "histogram":
                assert isinstance(child, _HistogramChild)
                for bound, cum in zip(child._bounds,
                                      child.cumulative()):
                    extra = f'le="{_fmt_le(bound)}"'
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_labels_text(metric.label_names, key, extra)}"
                        f" {_fmt(cum)}")
                base = _labels_text(metric.label_names, key)
                lines.append(f"{metric.name}_sum{base} "
                             f"{_fmt(child.sum)}")
                lines.append(f"{metric.name}_count{base} "
                             f"{_fmt(child.count)}")
            else:
                lines.append(
                    f"{metric.name}"
                    f"{_labels_text(metric.label_names, key)} "
                    f"{_fmt(child.value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Strict parsing (tests + the CI scrape validation).
# ----------------------------------------------------------------------
class ExpositionError(ValueError):
    """The text does not conform to the exposition format."""


def _parse_labels(blob: str | None) -> dict[str, str]:
    if not blob:
        return {}
    labels: dict[str, str] = {}
    rest = blob
    while rest:
        match = _LABEL_PAIR_RE.match(rest)
        if match is None:
            raise ExpositionError(f"bad label block {blob!r}")
        name, raw = match.groups()
        if name in labels:
            raise ExpositionError(f"duplicate label {name!r}")
        labels[name] = (raw.replace('\\"', '"')
                        .replace("\\n", "\n").replace("\\\\", "\\"))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ExpositionError(f"bad label block {blob!r}")
    return labels


def parse_prometheus(text: str) -> dict[str, dict]:
    """Strictly parse exposition text; raise :class:`ExpositionError`
    on anything malformed.

    Enforces the exporter's guarantees: every family announced by a
    ``# HELP`` + ``# TYPE`` pair before its samples, known types,
    family names in strictly sorted order, parseable finite values,
    and per-histogram coherence (cumulative buckets non-decreasing,
    ``+Inf`` bucket == ``_count``).  Returns
    ``name -> {type, help, samples: [{name, labels, value}]}``.
    """
    if not text.endswith("\n"):
        raise ExpositionError("exposition must end with a newline")
    families: dict[str, dict] = {}
    current: str | None = None
    pending_help: str | None = None
    last_name = ""
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            raise ExpositionError(f"line {number}: blank line")
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if name in families:
                raise ExpositionError(
                    f"line {number}: duplicate family {name!r}")
            if name <= last_name:
                raise ExpositionError(
                    f"line {number}: family {name!r} out of sorted "
                    f"order (after {last_name!r})")
            pending_help = parts[1] if len(parts) > 1 else ""
            current = name
            last_name = name
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2 or parts[0] != current:
                raise ExpositionError(
                    f"line {number}: TYPE must follow HELP for the "
                    f"same family")
            if parts[1] not in _KINDS:
                raise ExpositionError(
                    f"line {number}: unknown type {parts[1]!r}")
            families[parts[0]] = {"type": parts[1],
                                  "help": pending_help or "",
                                  "samples": []}
            pending_help = None
            continue
        if line.startswith("#"):
            raise ExpositionError(
                f"line {number}: unknown comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"line {number}: bad sample {line!r}")
        sample_name, label_blob, raw_value = match.groups()
        if current is None or current not in families:
            raise ExpositionError(
                f"line {number}: sample before any family header")
        family = families[current]
        allowed = {current}
        if family["type"] == "histogram":
            allowed = {current + "_bucket", current + "_sum",
                       current + "_count"}
        if sample_name not in allowed:
            raise ExpositionError(
                f"line {number}: sample {sample_name!r} does not "
                f"belong to family {current!r}")
        if raw_value == "+Inf":
            value = math.inf
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ExpositionError(
                    f"line {number}: bad value {raw_value!r}") from None
        if value != value:
            raise ExpositionError(f"line {number}: NaN value")
        family["samples"].append({"name": sample_name,
                                  "labels": _parse_labels(label_blob),
                                  "value": value})
    _check_histograms(families)
    return families


def _check_histograms(families: Mapping[str, dict]) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: dict[tuple, dict[str, float]] = {}
        counts: dict[tuple, float] = {}
        for sample in family["samples"]:
            labels = dict(sample["labels"])
            le = labels.pop("le", None)
            key = tuple(sorted(labels.items()))
            if sample["name"].endswith("_bucket"):
                if le is None:
                    raise ExpositionError(
                        f"{name}: bucket sample without 'le'")
                series.setdefault(key, {})[le] = sample["value"]
            elif sample["name"].endswith("_count"):
                counts[key] = sample["value"]
        for key, buckets in series.items():
            ordered = sorted(
                buckets.items(),
                key=lambda kv: (math.inf if kv[0] == "+Inf"
                                else float(kv[0])))
            values = [v for _, v in ordered]
            if values != sorted(values):
                raise ExpositionError(
                    f"{name}: cumulative buckets decrease")
            if "+Inf" not in buckets:
                raise ExpositionError(f"{name}: missing +Inf bucket")
            if key in counts and buckets["+Inf"] != counts[key]:
                raise ExpositionError(
                    f"{name}: +Inf bucket ({buckets['+Inf']}) != "
                    f"_count ({counts[key]})")


def counter_totals(families: Mapping[str, dict]) -> dict[str, float]:
    """Flatten a parsed exposition's counter samples to
    ``name{label="v",...} -> value`` -- the determinism surface the
    CI soak job compares across seeded reruns (counters are counted,
    not timed; histograms and gauges are excluded)."""
    totals: dict[str, float] = {}
    for name, family in sorted(families.items()):
        if family["type"] != "counter":
            continue
        for sample in family["samples"]:
            labels = ",".join(f'{k}="{v}"' for k, v in
                              sorted(sample["labels"].items()))
            totals[f"{name}{{{labels}}}"] = sample["value"]
    return totals


# ----------------------------------------------------------------------
# Bridge into the PR 1 probe registry.
# ----------------------------------------------------------------------
def probes_from_metrics(metrics: MetricsRegistry,
                        add: Callable[..., None] | None = None,
                        prefix: str = "") -> Any:
    """Export a metrics registry as PR 1 probes.

    Each counter/gauge child becomes one probe named
    ``<prefix><metric>{label=value,...}`` with the metric's unit
    (drawn from the shared ``COUNTER_UNITS`` vocabulary at
    registration time); histograms export their ``_count`` and
    ``_sum``.  Pass ``add`` to append into an existing registry
    builder; otherwise a fresh :class:`ProbeRegistry` is returned.
    """
    from repro.obs.registry import ProbeRegistry

    registry = None
    if add is None:
        registry = ProbeRegistry()
        add = registry.add
    for metric in metrics.collect():
        for key, child in metric.children():
            labels = ",".join(
                f"{name}={value}"
                for name, value in zip(metric.label_names, key))
            suffix = f"{{{labels}}}" if labels else ""
            base = f"{prefix}{metric.name}{suffix}"
            if metric.kind == "histogram":
                add(f"{base}.count", float(child.count),
                    "observations", metric.help)
                add(f"{base}.sum", float(child.sum), metric.unit,
                    metric.help)
            else:
                add(base, float(child.value), metric.unit,
                    metric.help)
    return registry
