"""Run manifest: the provenance record attached to every run.

Machine-readable reports are only comparable across machines and
commits if each one says exactly what produced it.  The manifest
captures the simulated machine configuration, the board model, the
package version, the Python/platform the simulation ran on, and the
host wall time the run took.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field

from repro.core.config import BoardConfig, MachineConfig

#: Version tag for the machine-readable report/manifest layout.
REPORT_SCHEMA = "repro.run-report/1"


@dataclass(frozen=True)
class RunManifest:
    """Provenance for one simulation run."""

    program: str
    board_mode: str
    host_mips: float
    machine: dict = field(default_factory=dict)
    seed: int | None = None
    package_version: str = ""
    python_version: str = ""
    platform: str = ""
    wall_time_s: float = 0.0
    created_at: str = ""
    #: Content digest of the engine RunRequest that produced this run
    #: (``None`` for runs made outside :class:`repro.engine.Session`).
    request_digest: str | None = None
    #: How the engine delivered the result: ``hit`` (from the
    #: content-addressed cache), ``miss`` (executed and stored) or
    #: ``uncached`` (executed outside the cache).
    cache: str = "uncached"
    #: Which simulation backend produced the result: ``event`` (the
    #: per-event reference model) or ``vector`` (the compiled backend).
    #: Provenance only -- backends are bit-identical by contract, so
    #: the backend is deliberately NOT part of the request digest
    #: (``docs/engine.md``); a cache hit reports the backend that
    #: originally executed the run.
    backend: str = "event"
    schema: str = REPORT_SCHEMA

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "program": self.program,
            "board_mode": self.board_mode,
            "host_mips": self.host_mips,
            "machine": dict(self.machine),
            "seed": self.seed,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "platform": self.platform,
            "wall_time_s": self.wall_time_s,
            "created_at": self.created_at,
            "request_digest": self.request_digest,
            "cache": self.cache,
            "backend": self.backend,
        }


def machine_summary(machine: MachineConfig) -> dict:
    """The machine parameters that determine simulated behaviour."""
    return {
        "clock_hz": machine.clock_hz,
        "num_clusters": machine.num_clusters,
        "lrf_kbytes": machine.lrf_kbytes,
        "srf_kbytes": machine.srf_kbytes,
        "microcode_store_words": machine.microcode_store_words,
        "scoreboard_slots": machine.scoreboard_slots,
        "num_sdrs": machine.num_sdrs,
        "num_mars": machine.num_mars,
        "num_ags": machine.num_ags,
        "dram_channels": machine.dram.channels,
        "dram_banks_per_channel": machine.dram.banks_per_channel,
        "dram_page_policy": machine.dram.page_policy,
    }


def build_manifest(program: str, machine: MachineConfig,
                   board: BoardConfig, wall_time_s: float,
                   seed: int | None = None,
                   backend: str = "event") -> RunManifest:
    """Assemble the manifest for one finished run."""
    from repro import __version__

    return RunManifest(
        program=program,
        board_mode=board.mode,
        host_mips=board.host_mips,
        machine=machine_summary(machine),
        seed=seed,
        package_version=__version__,
        python_version=sys.version.split()[0],
        platform=platform.platform(),
        wall_time_s=wall_time_s,
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        backend=backend,
    )
