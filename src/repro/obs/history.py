"""Append-only perf-history store (``repro.perf-history/1``).

One JSONL line per *distinct* engine run -- keyed by the request's
content digest -- capturing the profile summary, throughput, host
wall-clock and the session's cache counters at record time.  The store
is the repo's performance trajectory: ``repro perf`` appends to it on
every benchmark sweep and compares fresh numbers against a baseline
``BENCH_profile.json``, and ``benchmarks/`` records every simulation
it pays for.

Dedup is by ``request_digest``: appending an entry whose digest is
already present is a no-op, so re-running a warm-cache sweep leaves
the file byte-identical (asserted in CI).  Runs without a digest
(traced or hand-built bundles) are not recordable -- they have no
stable identity to key on.

Appends go through :func:`append_entries`, which holds an exclusive
``flock`` on the file for the whole dedup-scan-plus-write, so
concurrent writers (parallel benchmark jobs, the serve load harness)
cannot interleave partial lines or double-append the same digest.
The store is shared: serve-load lines (``repro.serve-load/1``) live
in the same file and :func:`read_history` skips them, exactly as it
skips any alien line.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.obs.profile import build_profile

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.processor import RunResult

#: Version tag for history entries.
HISTORY_SCHEMA = "repro.perf-history/1"

#: Where the benchmark suite keeps its trajectory.
DEFAULT_HISTORY_PATH = "benchmarks/results/history.jsonl"


def history_entry(result: "RunResult",
                  engine: dict[str, Any] | None = None
                  ) -> dict[str, Any] | None:
    """One history line for a finished engine run.

    Returns ``None`` for runs without a ``request_digest`` (nothing
    stable to key the append-only store on).
    """
    manifest = result.manifest
    digest = manifest.request_digest if manifest is not None else None
    if digest is None:
        return None
    profile = build_profile(result)
    clusters = profile["components"]["clusters"]
    critpath = profile.get("critpath") or {}
    return {
        "schema": HISTORY_SCHEMA,
        "digest": digest,
        "program": result.name,
        "board_mode": result.board.mode,
        "cycles": float(result.metrics.total_cycles),
        "gops": result.metrics.gops,
        "gflops": result.metrics.gflops,
        "watts": result.power.watts,
        "busy_fraction": profile["summary"]["busy_fraction"],
        "stall_fraction": profile["summary"]["stall_fraction"],
        "idle_fraction": profile["summary"]["idle_fraction"],
        "stall_cycles": dict(clusters["stall"]),
        "binding_resource": critpath.get("binding_resource"),
        "critpath_top": [entry["resource"] for entry
                         in critpath.get("top_resources", [])],
        "critpath_cycles": critpath.get("path_cycles"),
        "wall_time_s": manifest.wall_time_s,
        "cache": manifest.cache,
        "backend": getattr(manifest, "backend", "event"),
        "recorded_at": manifest.created_at,
        "engine": dict(engine) if engine is not None else None,
    }


def read_history(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """All well-formed entries, in file order; corrupt or alien lines
    are skipped (an append-only log must tolerate torn writes)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (isinstance(entry, dict)
                    and entry.get("schema") == HISTORY_SCHEMA
                    and isinstance(entry.get("digest"), str)):
                entries.append(entry)
    return entries


def recorded_digests(path: str | pathlib.Path) -> set[str]:
    """Digests already present in the store."""
    return {entry["digest"] for entry in read_history(path)}


def append_entries(path: str | pathlib.Path,
                   entries: Iterable[dict[str, Any] | None],
                   dedup: Callable[[dict[str, Any]], str | None]
                   | None = None) -> int:
    """Append JSONL entries under an exclusive file lock.

    The lock is held across the dedup scan *and* the write, so two
    concurrent appenders serialize: each sees the other's completed
    lines, no line is ever torn, and (with ``dedup``) no key is
    written twice.  ``dedup`` maps an entry to its identity key (or
    ``None`` for skip-dedup); existing lines that fail to parse are
    ignored, exactly as :func:`read_history` ignores them.  Returns
    the number of entries written.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # a+ so the file is created when absent; reads must rewind first.
    with path.open("a+", encoding="utf-8") as handle:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            seen: set[str] = set()
            if dedup is not None:
                handle.seek(0)
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        existing = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(existing, dict):
                        key = dedup(existing)
                        if key is not None:
                            seen.add(key)
            handle.seek(0, os.SEEK_END)
            written = 0
            for entry in entries:
                if entry is None:
                    continue
                if dedup is not None:
                    key = dedup(entry)
                    if key is not None:
                        if key in seen:
                            continue
                        seen.add(key)
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
                written += 1
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    return written


def _perf_digest(entry: dict[str, Any]) -> str | None:
    """Dedup key for perf-history lines: the request digest, scoped
    to this schema so serve-load lines never collide."""
    if (entry.get("schema") == HISTORY_SCHEMA
            and isinstance(entry.get("digest"), str)):
        return entry["digest"]
    return None


def append_history(path: str | pathlib.Path,
                   entries: Iterable[dict[str, Any] | None]) -> int:
    """Append new perf entries, deduplicated by digest under the file
    lock; returns the number actually written.  ``None`` entries
    (digest-less runs) are skipped."""
    return append_entries(path, entries, dedup=_perf_digest)


__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_HISTORY_PATH",
    "history_entry",
    "read_history",
    "recorded_digests",
    "append_entries",
    "append_history",
]
