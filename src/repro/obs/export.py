"""Chrome trace-event / Perfetto export and counter CSV dumps.

:func:`to_chrome_trace` turns a :class:`~repro.obs.tracer.Tracer` into
the Trace Event Format consumed by ``about://tracing`` and
https://ui.perfetto.dev: one process ("imagine"), one thread per
track, complete ("X") events for spans, instant ("i") events, and
counter ("C") events.  Timestamps are microseconds of simulated wall
time (cycles / clock); the original cycle timestamps are preserved in
each event's ``args``.

:func:`validate_chrome_trace` is the schema check used by the tests
and the CI smoke job; :func:`counters_csv` flattens counter samples
for spreadsheet-side analysis.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.tracer import Tracer

#: Fields every trace event must carry, per the Trace Event Format.
_REQUIRED_FIELDS = ("name", "ph", "ts", "pid", "tid")
_KNOWN_PHASES = {"X", "i", "I", "C", "M", "B", "E"}

_PID = 1

#: Phase sort rank within a timestamp tie: spans open before the
#: instants and counter samples that land inside them.
_PHASE_ORDER = {"M": 0, "B": 1, "X": 2, "E": 3, "i": 4, "I": 4, "C": 5}


def _us(cycles: float, clock_hz: float) -> float:
    return cycles / clock_hz * 1e6


def _event_key(event: dict[str, Any]) -> tuple:
    """Total deterministic order over trace events.

    Metadata (``M``-phase process/thread names) leads, ordered by
    (pid, tid, name), so multi-process documents from the stitcher
    announce every process before its events.  Ties on timestamp
    (common: zero-duration accounting spans at a shared event-loop
    instant) are broken by pid, tid, phase, name, duration and
    canonicalised args, so the exported byte stream never depends on
    tracer emission order.
    """
    return (
        0 if event["ph"] == "M" else 1,     # metadata leads
        event["ts"],
        event["pid"],
        event["tid"],
        _PHASE_ORDER.get(event["ph"], 9),
        event["name"],
        event.get("dur", -1.0),
        json.dumps(event.get("args", {}), sort_keys=True,
                   default=str),
    )


def finalize_events(events: list[dict[str, Any]]
                    ) -> list[dict[str, Any]]:
    """Deterministically order events and assign sequential span ids.

    Ids are assigned *after* the sort so two exports of the same
    events carry stable labels -- shared by :func:`to_chrome_trace`
    and the cross-process stitcher
    (:func:`repro.obs.stitch.stitch_job_trace`).
    """
    events.sort(key=_event_key)
    span_id = 0
    for event in events:
        if event["ph"] == "X":
            event["id"] = span_id
            span_id += 1
    return events


def to_chrome_trace(tracer: Tracer, clock_hz: float = 200e6,
                    label: str = "imagine") -> dict[str, Any]:
    """Render the tracer's events as a Chrome trace-event document."""
    tracks = tracer.tracks()
    tid_of = {track: tid for tid, track in enumerate(tracks)}
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "ts": 0,
        "pid": _PID, "tid": 0, "args": {"name": label},
    }]
    for track, tid in tid_of.items():
        events.append({
            "name": "thread_name", "ph": "M", "ts": 0,
            "pid": _PID, "tid": tid, "args": {"name": track},
        })
    for span in tracer.spans:
        events.append({
            "name": span.name,
            "cat": span.track,
            "ph": "X",
            "ts": _us(span.start, clock_hz),
            "dur": _us(span.duration, clock_hz),
            "pid": _PID,
            "tid": tid_of[span.track],
            "args": {"start_cycle": span.start,
                     "end_cycle": span.end, **span.args},
        })
    for instant in tracer.instants:
        events.append({
            "name": instant.name,
            "cat": instant.track,
            "ph": "i",
            "s": "t",
            "ts": _us(instant.ts, clock_hz),
            "pid": _PID,
            "tid": tid_of[instant.track],
            "args": {"cycle": instant.ts, **instant.args},
        })
    for sample in tracer.counters:
        events.append({
            "name": sample.name,
            "cat": sample.track,
            "ph": "C",
            "ts": _us(sample.ts, clock_hz),
            "pid": _PID,
            "tid": tid_of[sample.track],
            "args": dict(sample.values),
        })
    finalize_events(events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock_hz": clock_hz, "tracks": tracks},
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       clock_hz: float = 200e6,
                       label: str = "imagine") -> dict[str, Any]:
    """Export and write the trace JSON; returns the document."""
    document = to_chrome_trace(tracer, clock_hz, label)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return document


class TraceValidationError(ValueError):
    """The document does not conform to the trace-event format."""


def validate_chrome_trace(document: Any) -> list[str]:
    """Validate a trace-event document; return its track names.

    Checks the structural invariants the exporter guarantees: a
    ``traceEvents`` list whose entries carry name/ph/ts/pid/tid, known
    phase codes, finite non-negative timestamps, finite non-negative
    ``dur`` on complete events (zero-duration accounting spans are
    legal), unique ``id`` values across complete events that carry
    one, per-series monotonically non-decreasing counter timestamps,
    and thread-name metadata for every (pid, tid) referenced.

    Process/thread identity is keyed by the **(pid, tid) pair**, so
    multi-process documents from the cross-process stitcher are legal
    (the same tid may carry different names under different pids),
    while *conflicting* metadata -- two ``thread_name`` (or
    ``process_name``) events naming the same pid/tid differently --
    is rejected.
    """
    if not isinstance(document, dict):
        raise TraceValidationError("trace document must be an object")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise TraceValidationError("traceEvents must be a non-empty list")
    named_tids: dict[tuple[int, int], str] = {}
    named_pids: dict[int, str] = {}
    used_tids: set[tuple[int, int]] = set()
    counter_clock: dict[tuple[int, int, str], float] = {}
    span_ids: set[Any] = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceValidationError(f"event {i} is not an object")
        for fld in _REQUIRED_FIELDS:
            if fld not in event:
                raise TraceValidationError(f"event {i} missing {fld!r}")
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            raise TraceValidationError(
                f"event {i} has unknown phase {phase!r}")
        ts = event["ts"]
        # NaN fails every comparison, so `ts < 0` alone would let it
        # through; require a finite number explicitly.
        if (not isinstance(ts, (int, float)) or not math.isfinite(ts)
                or ts < 0):
            raise TraceValidationError(f"event {i} has bad ts {ts!r}")
        lane = (event["pid"], event["tid"])
        if phase == "X":
            dur = event.get("dur")
            if (not isinstance(dur, (int, float))
                    or not math.isfinite(dur) or dur < 0):
                raise TraceValidationError(
                    f"complete event {i} has bad dur {dur!r}")
            if "id" in event:
                if event["id"] in span_ids:
                    raise TraceValidationError(
                        f"complete event {i} reuses span id "
                        f"{event['id']!r}")
                span_ids.add(event["id"])
            used_tids.add(lane)
        elif phase == "C":
            key = (event["pid"], event["tid"], event["name"])
            if ts < counter_clock.get(key, 0.0):
                raise TraceValidationError(
                    f"counter event {i} ({event['name']!r}) has "
                    f"non-monotonic ts {ts!r} (previous "
                    f"{counter_clock[key]!r})")
            counter_clock[key] = ts
            used_tids.add(lane)
        elif phase in ("i", "I"):
            used_tids.add(lane)
        elif phase == "M" and event["name"] == "thread_name":
            name = event["args"]["name"]
            if named_tids.get(lane, name) != name:
                raise TraceValidationError(
                    f"metadata event {i} renames pid/tid {lane} "
                    f"from {named_tids[lane]!r} to {name!r}")
            named_tids[lane] = name
        elif phase == "M" and event["name"] == "process_name":
            pid = event["pid"]
            name = event["args"]["name"]
            if named_pids.get(pid, name) != name:
                raise TraceValidationError(
                    f"metadata event {i} renames pid {pid} from "
                    f"{named_pids[pid]!r} to {name!r}")
            named_pids[pid] = name
    unnamed = used_tids - set(named_tids)
    if unnamed:
        raise TraceValidationError(
            f"pid/tids {sorted(unnamed)} carry events but have no "
            f"thread_name metadata")
    return [named_tids[lane] for lane in sorted(named_tids)]


def counters_csv(tracer: Tracer) -> str:
    """Flatten counter samples to
    ``track,name,series,cycle,value,unit``.

    Rows are sorted (track, name, series, cycle, value) and each
    counter's unit comes from the probe-registry vocabulary
    (:data:`repro.obs.registry.COUNTER_UNITS`), so the CSV is
    byte-stable across ``PYTHONHASHSEED`` and emission order -- the
    same determinism contract the analysis reports carry (asserted in
    CI).
    """
    from repro.obs.registry import COUNTER_UNITS

    rows = []
    for sample in tracer.counters:
        unit = COUNTER_UNITS.get(sample.name, "")
        for series, value in sample.values.items():
            rows.append((sample.track, sample.name, series,
                         sample.ts, value, unit))
    rows.sort(key=lambda row: row[:5])
    lines = ["track,name,series,cycle,value,unit"]
    for track, name, series, ts, value, unit in rows:
        lines.append(f"{track},{name},{series},"
                     f"{ts:.6g},{value:.10g},{unit}")
    return "\n".join(lines) + "\n"
