"""Profile-report differ (``repro.profile-diff/1``).

Compares two ``repro.profile-report/1`` documents category by
category: every component leaf (``clusters.stall.memory``,
``dram_ch0.busy.access``, ...) plus the run totals, each with its
absolute and relative delta and a significance flag.  The paper's own
methodology is differential -- page policies, host bandwidths and
board-vs-ISIM splits are all read as "which category moved" -- and
``repro diff`` (or :meth:`repro.engine.Session.diff`) answers exactly
that question from two artifacts.

Significance is two-sided: a row is significant when its absolute
delta clears ``min_cycles`` (to ignore float dust on tiny categories)
*and* its relative delta clears ``threshold``.  ``regression`` is the
headline verdict: B's total cycles exceed A's by more than the
threshold.
"""

from __future__ import annotations

from typing import Any

from repro.obs.profile import PROFILE_SCHEMA, ProfileError

#: Version tag for the diff layout.
DIFF_SCHEMA = "repro.profile-diff/1"

#: Default relative-delta significance threshold.
DEFAULT_THRESHOLD = 0.02

#: Default absolute-delta floor, in cycles.
DEFAULT_MIN_CYCLES = 1.0


def _flatten(profile: dict[str, Any]) -> dict[str, float]:
    """Leaf path -> cycles for every component category."""
    rows: dict[str, float] = {
        "total_cycles": float(profile["total_cycles"])}
    for name, component in profile["components"].items():
        for side in ("busy", "stall"):
            for leaf, cycles in component[side].items():
                rows[f"{name}.{side}.{leaf}"] = float(cycles)
            rows[f"{name}.{side}_total"] = float(
                component[f"{side}_total"])
        rows[f"{name}.idle"] = float(component["idle"])
    return rows


def diff_profiles(a: dict[str, Any], b: dict[str, Any],
                  threshold: float = DEFAULT_THRESHOLD,
                  min_cycles: float = DEFAULT_MIN_CYCLES
                  ) -> dict[str, Any]:
    """Category-by-category comparison of two run profiles."""
    for side, profile in (("A", a), ("B", b)):
        if not isinstance(profile, dict) or profile.get(
                "schema") != PROFILE_SCHEMA:
            raise ProfileError(
                f"{side} is not a {PROFILE_SCHEMA} document")
        if profile.get("kind") != "run":
            raise ProfileError(
                f"{side} is a {profile.get('kind')!r} profile; only "
                f"run profiles can be diffed")
    flat_a, flat_b = _flatten(a), _flatten(b)
    rows = []
    for path in sorted(set(flat_a) | set(flat_b)):
        value_a = flat_a.get(path, 0.0)
        value_b = flat_b.get(path, 0.0)
        delta = value_b - value_a
        scale = max(abs(value_a), abs(value_b))
        relative = delta / scale if scale > 0 else 0.0
        rows.append({
            "path": path,
            "a": value_a,
            "b": value_b,
            "delta": delta,
            "relative": relative,
            "significant": (abs(delta) >= min_cycles
                            and abs(relative) >= threshold),
        })
    total_a = flat_a["total_cycles"]
    total_b = flat_b["total_cycles"]

    # One-line verdict material: the *leaf* (not rollup) with the
    # largest significant relative regression, and whether the
    # critical path moved to a different binding resource.
    worst = None
    for row in rows:
        if not row["significant"] or row["delta"] <= 0:
            continue
        if ".busy." not in row["path"] and ".stall." not in row["path"]:
            continue
        key = (row["relative"], row["delta"], row["path"])
        if worst is None or key > (worst["relative"], worst["delta"],
                                   worst["path"]):
            worst = row
    critpath_a = a.get("critpath") or {}
    critpath_b = b.get("critpath") or {}
    binding_a = critpath_a.get("binding_resource")
    binding_b = critpath_b.get("binding_resource")
    critical_path = None
    if binding_a is not None or binding_b is not None:
        critical_path = {
            "binding_resource_a": binding_a,
            "binding_resource_b": binding_b,
            "moved": binding_a != binding_b,
            "top_a": critpath_a.get("top_resources", []),
            "top_b": critpath_b.get("top_resources", []),
        }

    return {
        "schema": DIFF_SCHEMA,
        "a": {"program": a["program"], "board_mode": a["board_mode"],
              "request_digest": a.get("request_digest"),
              "total_cycles": total_a},
        "b": {"program": b["program"], "board_mode": b["board_mode"],
              "request_digest": b.get("request_digest"),
              "total_cycles": total_b},
        "threshold": threshold,
        "min_cycles": min_cycles,
        "categories": rows,
        "significant": [row["path"] for row in rows
                        if row["significant"]],
        #: Headline verdict: B is slower than A beyond the threshold.
        "regression": total_b > total_a * (1.0 + threshold),
        #: Leaf with the largest significant relative regression
        #: (None when nothing regressed).
        "worst_regression": (None if worst is None else {
            "path": worst["path"],
            "a": worst["a"],
            "b": worst["b"],
            "delta": worst["delta"],
            "relative": worst["relative"],
        }),
        #: Did the binding resource change between A and B?  None
        #: when neither profile carries a critpath summary.
        "critical_path": critical_path,
    }


def render_diff(diff: dict[str, Any]) -> str:
    """Human-readable view: significant rows, then the verdict."""
    from repro.analysis.report import render_table

    a, b = diff["a"], diff["b"]
    lines = [f"profile diff: {a['program']}/{a['board_mode']} "
             f"({a['total_cycles']:.0f} cycles) -> "
             f"{b['program']}/{b['board_mode']} "
             f"({b['total_cycles']:.0f} cycles)"]
    significant = [row for row in diff["categories"]
                   if row["significant"]]
    if significant:
        rows = [[row["path"], f"{row['a']:.0f}", f"{row['b']:.0f}",
                 f"{row['delta']:+.0f}",
                 f"{row['relative'] * 100:+.1f}%"]
                for row in significant]
        lines.append(render_table(
            f"Significant category deltas "
            f"(|rel| >= {diff['threshold'] * 100:.0f}%)",
            ["category", "A", "B", "delta", "relative"], rows))
    else:
        lines.append(f"no category moved by more than "
                     f"{diff['threshold'] * 100:.0f}% "
                     f"(and {diff['min_cycles']:.0f} cycles)")
    worst = diff.get("worst_regression")
    if worst is not None:
        lines.append(
            f"worst regression: {worst['path']} "
            f"{worst['relative'] * 100:+.1f}% "
            f"({worst['delta']:+.0f} cycles)")
    critical_path = diff.get("critical_path")
    if critical_path is not None:
        if critical_path["moved"]:
            lines.append(
                f"critical path: MOVED "
                f"{critical_path['binding_resource_a']} -> "
                f"{critical_path['binding_resource_b']}")
        else:
            lines.append(
                f"critical path: unchanged (binding resource "
                f"{critical_path['binding_resource_a']})")
    lines.append(
        "verdict: REGRESSION (B slower beyond threshold)"
        if diff["regression"] else "verdict: no total-cycle regression")
    return "\n".join(lines)


__all__ = [
    "DIFF_SCHEMA",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_CYCLES",
    "diff_profiles",
    "render_diff",
]
