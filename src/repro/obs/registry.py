"""Probe/counter registry: named, self-describing counters.

The scattered :class:`~repro.core.metrics.Metrics` fields become a
uniform set of :class:`Probe` entries -- each with a unit, a
description, and optionally a *paper target* (an expected value with a
relative tolerance, citing the paper table or figure it comes from) so
machine-readable reports can flag drift from the reproduced Tables 1-5
automatically.

:func:`registry_from_result` builds the registry for one finished
:class:`~repro.core.RunResult`; :meth:`ProbeRegistry.snapshot` /
:meth:`ProbeRegistry.diff` support before/after comparisons across
runs or code changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.metrics import CycleCategory

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.processor import RunResult


@dataclass(frozen=True)
class PaperTarget:
    """Expected value (relative tolerance) from the paper's tables."""

    expected: float
    rel_tolerance: float
    source: str

    def within(self, value: float) -> bool:
        scale = max(abs(self.expected), 1e-30)
        return abs(value - self.expected) / scale <= self.rel_tolerance


@dataclass(frozen=True)
class Probe:
    """One named counter with its unit and provenance."""

    name: str
    value: float
    unit: str
    description: str
    target: PaperTarget | None = None

    @property
    def within_target(self) -> bool | None:
        """True/False against the paper target; None when untargeted."""
        if self.target is None:
            return None
        return self.target.within(self.value)

    def as_dict(self) -> dict:
        entry: dict = {"value": self.value, "unit": self.unit,
                       "description": self.description}
        if self.target is not None:
            entry["target"] = {
                "expected": self.target.expected,
                "rel_tolerance": self.target.rel_tolerance,
                "source": self.target.source,
                "within": self.within_target,
            }
        return entry


class ProbeRegistry:
    """Ordered, name-unique collection of probes."""

    def __init__(self) -> None:
        self._probes: dict[str, Probe] = {}

    def add(self, name: str, value: float, unit: str,
            description: str, target: PaperTarget | None = None) -> None:
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = Probe(name, float(value), unit,
                                   description, target)

    def __iter__(self) -> Iterator[Probe]:
        return iter(self._probes.values())

    def __len__(self) -> int:
        return len(self._probes)

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def get(self, name: str) -> Probe:
        return self._probes[name]

    def names(self) -> list[str]:
        return list(self._probes)

    # ------------------------------------------------------------------
    # Snapshots and drift.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Self-describing name -> {value, unit, description, target}."""
        return {name: probe.as_dict()
                for name, probe in self._probes.items()}

    def diff(self, other: "ProbeRegistry") -> dict[str, float]:
        """Per-probe ``self - other`` for the shared probe names."""
        return {name: probe.value - other.get(name).value
                for name, probe in self._probes.items()
                if name in other}

    def drifted(self) -> list[Probe]:
        """Probes whose value falls outside their paper target."""
        return [probe for probe in self._probes.values()
                if probe.within_target is False]


#: Unit vocabulary, by series name.  Two consumers join on this:
#: the tracer's counter tracks (``counters_csv`` stamps each row's
#: unit column from here) and the live metrics plane
#: (:mod:`repro.obs.metrics` refuses to build a metric whose name has
#: no unit registered here unless one is passed explicitly) -- so an
#: unregistered unit fails tier-1, not a dashboard review.
COUNTER_UNITS: dict[str, str] = {
    # Tracer counter series (PR 1).
    "scoreboard": "slots",
    "cycles by category": "cycles",
    "channel busy (sampled mem cycles)": "mem cycles",
    # Service job lifecycle (repro.serve.service).
    "serve_jobs_submitted_total": "jobs",
    "serve_jobs_accepted_total": "jobs",
    "serve_jobs_rejected_total": "jobs",
    "serve_jobs_terminal_total": "jobs",
    "serve_jobs_coalesced_total": "jobs",
    "serve_jobs_recovered_total": "jobs",
    "serve_artifact_hits_total": "jobs",
    "serve_job_retries_total": "retries",
    "serve_job_executions_total": "executions",
    "serve_queue_depth": "jobs",
    "serve_breaker_state": "state",
    "serve_breaker_transitions_total": "transitions",
    "serve_job_latency_ms": "ms",
    # HTTP front end (repro.serve.http).
    "serve_http_requests_total": "requests",
    "serve_http_latency_ms": "ms",
    # Engine sessions (repro.engine.session).
    "engine_cache_requests_total": "runs",
    "engine_cache_evictions_total": "entries",
    "engine_inflight_dedup_total": "runs",
    "engine_worker_timeouts_total": "runs",
    "engine_worker_retries_total": "retries",
    "engine_backend_selected_total": "runs",
    "engine_runs_executed_total": "runs",
    "engine_runs_failed_total": "runs",
}


#: Table-3 paper values for the four applications at their default
#: (reproduction-scale) builds.  The reproduction criterion is *shape*
#: (EXPERIMENTS.md), so the tolerances are generous; a probe outside
#: them signals a real regression, not dataset-scale noise.
PAPER_TARGETS: dict[str, dict[str, PaperTarget]] = {
    "DEPTH": {
        "rate.gops": PaperTarget(4.91, 0.5, "Table 3"),
        "power.watts": PaperTarget(7.49, 0.5, "Table 3"),
    },
    "MPEG": {
        "rate.gops": PaperTarget(7.36, 0.5, "Table 3"),
        "power.watts": PaperTarget(6.80, 0.5, "Table 3"),
    },
    "QRD": {
        "rate.gflops": PaperTarget(4.81, 0.5, "Table 3"),
        "power.watts": PaperTarget(7.42, 0.5, "Table 3"),
    },
    "RTSL": {
        "rate.gops": PaperTarget(1.30, 0.5, "Table 3"),
        "power.watts": PaperTarget(5.91, 0.5, "Table 3"),
    },
}


def registry_from_result(result: "RunResult",
                         targets: dict[str, PaperTarget] | None = None
                         ) -> ProbeRegistry:
    """Build the full counter registry for one finished run.

    ``targets`` overrides the default :data:`PAPER_TARGETS` lookup by
    run name (pass ``{}`` to disable target annotation entirely).
    """
    metrics = result.metrics
    if targets is None:
        targets = PAPER_TARGETS.get(result.name, {})

    registry = ProbeRegistry()

    def add(name: str, value: float, unit: str, description: str) -> None:
        registry.add(name, value, unit, description,
                     target=targets.get(name))

    add("cycles.total", metrics.total_cycles, "cycles",
        "end-to-end execution time")
    for category in CycleCategory:
        key = category.value.replace(" ", "_")
        add(f"cycles.{key}", metrics.cycles.get(category, 0.0),
            "cycles", f"cycles attributed to '{category.value}' "
                      f"(Figure 11 category)")
    add("time.seconds", metrics.seconds, "s", "simulated wall time")
    add("ops.arith", metrics.arith_ops, "ops",
        "arithmetic operations executed across all clusters")
    add("ops.flops", metrics.flops, "ops",
        "floating-point operations executed")
    add("ops.comm", metrics.comm_ops, "ops",
        "inter-cluster communication operations")
    add("ops.dsq", metrics.dsq_ops, "ops",
        "divide/square-root unit operations (Table 2 power inputs)")
    add("ops.instructions", metrics.instructions, "instructions",
        "VLIW instructions issued across all clusters")
    add("words.lrf", metrics.lrf_words, "words",
        "local register file accesses (Figure 13 tier 1)")
    add("words.srf", metrics.srf_words, "words",
        "stream register file words transferred (Figure 13 tier 2)")
    add("words.mem", metrics.mem_words, "words",
        "DRAM stream words transferred (Figure 13 tier 3)")
    add("words.sp", metrics.sp_accesses, "words",
        "cluster scratchpad accesses (Figure 12 component traffic)")
    add("bandwidth.lrf_gbytes", metrics.lrf_gbytes, "GB/s",
        "sustained LRF bandwidth")
    add("bandwidth.srf_gbytes", metrics.srf_gbytes, "GB/s",
        "sustained SRF bandwidth")
    add("bandwidth.mem_gbytes", metrics.mem_gbytes, "GB/s",
        "sustained DRAM bandwidth")
    add("rate.gops", metrics.gops, "GOPS",
        "sustained arithmetic rate (Table 3)")
    add("rate.gflops", metrics.gflops, "GFLOPS",
        "sustained floating-point rate (Table 3)")
    add("rate.ipc", metrics.ipc, "instr/cycle",
        "sustained VLIW instructions per cycle (Table 3)")
    add("host.instructions", metrics.host_instructions, "instructions",
        "stream instructions delivered by the host")
    add("host.mips", metrics.host_mips, "MIPS",
        "sustained host-interface rate (Table 4)")
    add("kernel.invocations", len(metrics.kernel_invocations),
        "invocations", "kernel invocations executed")
    add("kernel.avg_duration", metrics.average_kernel_duration,
        "cycles", "average kernel invocation duration (Table 5)")
    add("kernel.avg_stream_elements",
        metrics.average_kernel_stream_length, "elements",
        "average kernel stream length (Table 5)")
    add("memory.avg_stream_words",
        metrics.average_memory_stream_length, "words",
        "average memory stream length (Table 5)")
    add("sdr.reuse", metrics.sdr_reuse, "refs/write",
        "stream descriptor register reuse (Table 4)")
    add("power.watts", result.power.watts, "W",
        "average power over the run (Table 3)")
    add("faults.events", len(result.fault_events), "events",
        "injected hardware-fault firings (repro.faults)")
    add("host.retries", result.host_retries, "retries",
        "host transfers retried after injected drops")
    return registry
