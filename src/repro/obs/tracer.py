"""Cross-layer span/event tracer.

The paper's methodology (Section 4.2) is built on attributing every
cycle and reading instruction-lifetime timelines; this module gives the
simulator the same instrument.  Components emit three kinds of
structured events onto named *tracks* (one track per hardware unit:
stream controller, clusters, micro-controller, each address generator,
the memory controller, the DRAM channels):

* :class:`SpanEvent` -- an interval of activity (a kernel invocation,
  a memory stream, a microcode load, a stream-controller issue window);
* :class:`InstantEvent` -- a point occurrence (a host issue, a
  microcode eviction, a stream measurement);
* :class:`CounterSample` -- named numeric series sampled over time
  (scoreboard occupancy, per-category cycle totals, DRAM channel
  cycles).

Tracing is strictly opt-in: the default :data:`NULL_TRACER` records
nothing and every instrumentation site is guarded by
``tracer.enabled``, so a normal run pays only an attribute read.

The simulator drives :attr:`Tracer.clock` forward as the event loop
advances; components that do not know the current simulation time emit
at the clock (e.g. the memory controller measuring a stream pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical track names used by the instrumented components.
TRACK_HOST = "host interface"
TRACK_CONTROLLER = "stream controller"
TRACK_MICRO = "micro-controller"
TRACK_CLUSTERS = "clusters"
TRACK_MEMCTRL = "memory controller"
TRACK_DRAM = "dram channels"
TRACK_ACCOUNTING = "cycle accounting"
TRACK_FAULTS = "faults"


def ag_track(ident: int) -> str:
    """Track name for one address generator (memory channel lane)."""
    return f"memory/AG{ident}"


@dataclass(frozen=True)
class SpanEvent:
    """An interval of activity on one track, in core cycles."""

    track: str
    name: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class InstantEvent:
    """A point occurrence on one track."""

    track: str
    name: str
    ts: float
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """A sample of one named counter series at one time."""

    track: str
    name: str
    ts: float
    values: dict[str, float] = field(default_factory=dict)


class Tracer:
    """Collects structured events from every instrumented component."""

    enabled: bool = True

    def __init__(self) -> None:
        self.spans: list[SpanEvent] = []
        self.instants: list[InstantEvent] = []
        self.counters: list[CounterSample] = []
        #: Current simulation time (core cycles); the event loop
        #: advances this so deep components can timestamp events.
        self.clock: float = 0.0

    # ------------------------------------------------------------------
    # Emission.
    # ------------------------------------------------------------------
    def span(self, track: str, name: str, start: float, end: float,
             **args) -> None:
        self.spans.append(SpanEvent(track, name, start, max(end, start),
                                    args))

    def instant(self, track: str, name: str, ts: float | None = None,
                **args) -> None:
        self.instants.append(InstantEvent(
            track, name, self.clock if ts is None else ts, args))

    def counter(self, track: str, name: str,
                values: dict[str, float],
                ts: float | None = None) -> None:
        self.counters.append(CounterSample(
            track, name, self.clock if ts is None else ts,
            dict(values)))

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------
    def tracks(self) -> list[str]:
        """Distinct track names, in first-emission order."""
        seen: dict[str, None] = {}
        for event in (*self.spans, *self.instants, *self.counters):
            seen.setdefault(event.track, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)


class NullTracer(Tracer):
    """Recording disabled; every emission is a no-op."""

    enabled = False

    def span(self, *args, **kwargs) -> None:  # pragma: no cover
        pass

    def instant(self, *args, **kwargs) -> None:  # pragma: no cover
        pass

    def counter(self, *args, **kwargs) -> None:  # pragma: no cover
        pass


#: Shared disabled tracer; the default for every component.
NULL_TRACER = NullTracer()
