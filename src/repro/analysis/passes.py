"""The static-analysis pass framework.

A *pass* is a named function that inspects one compiled artifact --
a :class:`~repro.isa.vliw.CompiledKernel` or a
:class:`~repro.streamc.compiler.StreamProgramImage` -- against the
machine's structural limits and yields
:class:`~repro.analysis.findings.Finding` records.  Passes register
themselves with :func:`analysis_pass` and declare a *scope*:

* ``"kernel"`` passes run once per compiled kernel;
* ``"image"`` passes run once per compiled stream program;
* ``"session"`` passes additionally get a live
  :class:`~repro.engine.Session` (the AnICA-style differential
  consistency pass that cross-checks static predictions against the
  simulator);
* ``"repo"`` passes inspect the source tree itself (the entry-point
  discipline lint).

The rule modules in :mod:`repro.analysis.rules` populate the
registry; :mod:`repro.analysis.lint` orchestrates full runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.analysis.findings import Finding
from repro.core.config import MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.session import Session
    from repro.isa.vliw import CompiledKernel
    from repro.streamc.compiler import StreamProgramImage

#: Valid pass scopes.
SCOPES = ("kernel", "image", "session", "repo")


@dataclass
class AnalysisContext:
    """Everything a pass may look at.

    ``machine`` is always set; ``kernel`` is set for kernel-scope
    passes, ``image`` for image-scope passes, ``session`` for
    session-scope passes.  ``subject`` names the artifact for finding
    locations.
    """

    machine: MachineConfig
    subject: str
    kernel: "CompiledKernel | None" = None
    image: "StreamProgramImage | None" = None
    session: "Session | None" = None
    #: Per-run scratch shared between passes (e.g. memoized wrap runs).
    scratch: dict = field(default_factory=dict)


#: A pass body: context in, findings out.
PassFn = Callable[[AnalysisContext], Iterable[Finding]]


@dataclass(frozen=True)
class AnalysisPass:
    """A registered pass: stable name, scope, rule-id prefix, body."""

    name: str
    scope: str
    fn: PassFn
    doc: str = ""

    def run(self, context: AnalysisContext) -> list[Finding]:
        return list(self.fn(context))


_REGISTRY: dict[str, AnalysisPass] = {}


def analysis_pass(name: str, scope: str
                  ) -> Callable[[PassFn], PassFn]:
    """Decorator registering a pass under ``name`` with ``scope``."""
    if scope not in SCOPES:
        raise ValueError(f"unknown pass scope {scope!r}; "
                         f"choose from {SCOPES}")

    def register(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ValueError(f"analysis pass {name!r} already registered")
        _REGISTRY[name] = AnalysisPass(
            name=name, scope=scope, fn=fn,
            doc=(fn.__doc__ or "").strip().splitlines()[0]
            if fn.__doc__ else "")
        return fn

    return register


def registered_passes(scope: str | None = None) -> list[AnalysisPass]:
    """All registered passes (optionally one scope), by name."""
    _load_rules()
    passes = sorted(_REGISTRY.values(), key=lambda p: p.name)
    if scope is not None:
        passes = [p for p in passes if p.scope == scope]
    return passes


def get_pass(name: str) -> AnalysisPass:
    _load_rules()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown analysis pass {name!r}; available: "
            f"{sorted(_REGISTRY)}")
    return _REGISTRY[name]


def run_scope(scope: str, context: AnalysisContext,
              only: set[str] | None = None) -> Iterator[Finding]:
    """Run every registered pass of ``scope`` over ``context``."""
    for entry in registered_passes(scope):
        if only is not None and entry.name not in only:
            continue
        yield from entry.run(context)


def _load_rules() -> None:
    """Import the rule modules so their passes self-register."""
    from repro.analysis import rules  # noqa: F401  (import side effect)


__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "SCOPES",
    "analysis_pass",
    "get_pass",
    "registered_passes",
    "run_scope",
]
