"""Orchestrators for the static verifier: one call, every pass.

``lint_kernel`` / ``lint_image`` / ``lint_bundle`` run the registered
passes over one artifact; ``lint_catalog`` sweeps every catalog
application and library kernel (the ``repro lint`` CLI and the CI
job); ``preflight_image`` is the engine's strict-mode hook, raising
:class:`~repro.analysis.findings.AnalysisError` instead of simulating
an artifact that is statically broken.

Reports are deterministic: artifacts are visited in sorted order,
findings are sorted, and the JSON serialization uses sorted keys, so
two runs over the same tree are byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import AnalysisReport
from repro.analysis.passes import (
    AnalysisContext,
    registered_passes,
    run_scope,
)
from repro.core.config import MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.common import AppBundle
    from repro.engine.session import Session
    from repro.isa.vliw import CompiledKernel
    from repro.streamc.compiler import StreamProgramImage


def lint_kernel(kernel: "CompiledKernel",
                machine: MachineConfig | None = None) -> AnalysisReport:
    """Run every kernel-scope pass over one compiled kernel."""
    machine = machine or MachineConfig()
    report = AnalysisReport(subject=f"kernel:{kernel.name}")
    report.passes = [p.name for p in registered_passes("kernel")]
    report.coverage = {"kernels": [kernel.name]}
    context = AnalysisContext(machine=machine,
                              subject=f"kernel:{kernel.name}",
                              kernel=kernel)
    report.extend(run_scope("kernel", context))
    return report


def lint_image(image: "StreamProgramImage",
               machine: MachineConfig | None = None,
               subject: str | None = None) -> AnalysisReport:
    """Run image-scope passes plus kernel-scope passes over the
    image's kernels."""
    machine = machine or MachineConfig()
    subject = subject or f"app:{image.name}"
    report = AnalysisReport(subject=subject)
    report.passes = [p.name for p in registered_passes("kernel")]
    report.passes += [p.name for p in registered_passes("image")]
    report.coverage = {"apps": [image.name],
                       "kernels": sorted(image.kernels)}
    for name in sorted(image.kernels):
        context = AnalysisContext(machine=machine,
                                  subject=f"kernel:{name}",
                                  kernel=image.kernels[name])
        report.extend(run_scope("kernel", context))
    context = AnalysisContext(machine=machine, subject=subject,
                              image=image)
    report.extend(run_scope("image", context))
    return report


def lint_bundle(bundle: "AppBundle",
                machine: MachineConfig | None = None) -> AnalysisReport:
    """Lint a built application bundle (its image + kernels)."""
    return lint_image(bundle.image, machine=machine,
                      subject=f"app:{bundle.name}")


def preflight_image(image: "StreamProgramImage",
                    machine: MachineConfig | None = None) -> None:
    """Strict-mode gate: raise ``AnalysisError`` on error findings."""
    lint_image(image, machine=machine).raise_on_errors()


#: Which rule families each pass scope can produce; drives the
#: scope-skipping fast path of ``lint_catalog(select=...)``.
_SCOPE_FAMILIES = {
    "kernel": frozenset({"MC"}),
    "image": frozenset({"SP", "BD", "ADV"}),
    "session": frozenset({"CX"}),
    "repo": frozenset({"EP"}),
}


def _rule_family(rule: str) -> str:
    """``"ADV001"`` -> ``"ADV"``: the alphabetic rule-id prefix."""
    return rule.rstrip("0123456789")


def lint_catalog(machine: MachineConfig | None = None,
                 apps: Iterable[str] | None = None,
                 kernels: Iterable[str] | None = None,
                 consistency: bool = True,
                 session: "Session | None" = None,
                 repo: bool = False,
                 select: Iterable[str] | None = None) -> AnalysisReport:
    """Sweep the whole corpus: catalog apps, library kernels, and
    (optionally) the differential consistency pass per kernel.

    ``repo=True`` additionally runs the repository-scope passes
    (entry-point discipline).  A ``session`` may be supplied to reuse
    an existing engine session for the consistency probes; otherwise a
    private in-process, uncached one is created and closed.

    ``select`` restricts the run to rule families (``MC``, ``SP``,
    ``BD``/``ADV``, ``CX``, ``EP``): scopes that cannot produce a
    selected family are skipped entirely -- ``select={"EP"}`` runs
    only the repository rules, without compiling a single kernel --
    and findings from shared scopes are filtered to the selection.
    """
    from repro.engine import catalog
    from repro.kernels.library import KERNEL_LIBRARY

    machine = machine or MachineConfig()
    families = ({family.upper() for family in select}
                if select is not None else None)

    def wants(scope: str) -> bool:
        return (families is None
                or bool(families & _SCOPE_FAMILIES[scope]))

    needs_kernel = wants("kernel")
    needs_image = wants("image")
    needs_session = consistency and wants("session")
    needs_repo = (repo if families is None
                  else bool(families & _SCOPE_FAMILIES["repo"]))

    app_names = sorted(apps if apps is not None else catalog.APP_NAMES)
    kernel_names = sorted(kernels if kernels is not None
                          else KERNEL_LIBRARY)

    report = AnalysisReport(subject="catalog")
    scopes = []
    if needs_kernel:
        scopes.append("kernel")
    if needs_image:
        scopes.append("image")
    if needs_session:
        scopes.append("session")
    if needs_repo:
        scopes.append("repo")
    report.passes = [p.name for scope in scopes
                     for p in registered_passes(scope)]

    # Every unique compiled kernel: the library's, plus any an app
    # carries under a name the library does not know.  Skipped
    # entirely for selections (like ``EP``) that never look at one.
    compiled: dict[str, "CompiledKernel"] = {}
    images: dict[str, "StreamProgramImage"] = {}
    if needs_kernel or needs_image or needs_session:
        compiled = {name: KERNEL_LIBRARY[name].compiled()
                    for name in kernel_names}
        for app in app_names:
            bundle = catalog.build_app(app)
            images[app] = bundle.image
            for name in sorted(bundle.image.kernels):
                compiled.setdefault(name, bundle.image.kernels[name])
        report.coverage = {"apps": app_names,
                           "kernels": sorted(compiled)}
    else:
        report.coverage = {"apps": [], "kernels": []}

    if needs_kernel:
        for name in sorted(compiled):
            context = AnalysisContext(machine=machine,
                                      subject=f"kernel:{name}",
                                      kernel=compiled[name])
            report.extend(run_scope("kernel", context))

    if needs_image:
        for app in app_names:
            context = AnalysisContext(machine=machine,
                                      subject=f"app:{app}",
                                      image=images[app])
            report.extend(run_scope("image", context))

    if needs_session:
        own_session = session is None
        if own_session:
            from repro.engine.session import Session, SessionConfig

            session = Session(config=SessionConfig(jobs=1, cache=False))
        try:
            for name in sorted(compiled):
                context = AnalysisContext(
                    machine=machine, subject=f"kernel:{name}",
                    kernel=compiled[name], session=session)
                report.extend(run_scope("session", context))
        finally:
            if own_session:
                session.close()

    if needs_repo:
        context = AnalysisContext(machine=machine, subject="repo")
        report.extend(run_scope("repo", context))

    if families is not None:
        report.findings = [f for f in report.findings
                           if _rule_family(f.rule) in families]
    return report


__all__ = [
    "lint_bundle",
    "lint_catalog",
    "lint_image",
    "lint_kernel",
    "preflight_image",
]
