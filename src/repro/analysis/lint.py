"""Orchestrators for the static verifier: one call, every pass.

``lint_kernel`` / ``lint_image`` / ``lint_bundle`` run the registered
passes over one artifact; ``lint_catalog`` sweeps every catalog
application and library kernel (the ``repro lint`` CLI and the CI
job); ``preflight_image`` is the engine's strict-mode hook, raising
:class:`~repro.analysis.findings.AnalysisError` instead of simulating
an artifact that is statically broken.

Reports are deterministic: artifacts are visited in sorted order,
findings are sorted, and the JSON serialization uses sorted keys, so
two runs over the same tree are byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import AnalysisReport
from repro.analysis.passes import (
    AnalysisContext,
    registered_passes,
    run_scope,
)
from repro.core.config import MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.common import AppBundle
    from repro.engine.session import Session
    from repro.isa.vliw import CompiledKernel
    from repro.streamc.compiler import StreamProgramImage


def lint_kernel(kernel: "CompiledKernel",
                machine: MachineConfig | None = None) -> AnalysisReport:
    """Run every kernel-scope pass over one compiled kernel."""
    machine = machine or MachineConfig()
    report = AnalysisReport(subject=f"kernel:{kernel.name}")
    report.passes = [p.name for p in registered_passes("kernel")]
    report.coverage = {"kernels": [kernel.name]}
    context = AnalysisContext(machine=machine,
                              subject=f"kernel:{kernel.name}",
                              kernel=kernel)
    report.extend(run_scope("kernel", context))
    return report


def lint_image(image: "StreamProgramImage",
               machine: MachineConfig | None = None,
               subject: str | None = None) -> AnalysisReport:
    """Run image-scope passes plus kernel-scope passes over the
    image's kernels."""
    machine = machine or MachineConfig()
    subject = subject or f"app:{image.name}"
    report = AnalysisReport(subject=subject)
    report.passes = [p.name for p in registered_passes("kernel")]
    report.passes += [p.name for p in registered_passes("image")]
    report.coverage = {"apps": [image.name],
                       "kernels": sorted(image.kernels)}
    for name in sorted(image.kernels):
        context = AnalysisContext(machine=machine,
                                  subject=f"kernel:{name}",
                                  kernel=image.kernels[name])
        report.extend(run_scope("kernel", context))
    context = AnalysisContext(machine=machine, subject=subject,
                              image=image)
    report.extend(run_scope("image", context))
    return report


def lint_bundle(bundle: "AppBundle",
                machine: MachineConfig | None = None) -> AnalysisReport:
    """Lint a built application bundle (its image + kernels)."""
    return lint_image(bundle.image, machine=machine,
                      subject=f"app:{bundle.name}")


def preflight_image(image: "StreamProgramImage",
                    machine: MachineConfig | None = None) -> None:
    """Strict-mode gate: raise ``AnalysisError`` on error findings."""
    lint_image(image, machine=machine).raise_on_errors()


def lint_catalog(machine: MachineConfig | None = None,
                 apps: Iterable[str] | None = None,
                 kernels: Iterable[str] | None = None,
                 consistency: bool = True,
                 session: "Session | None" = None,
                 repo: bool = False) -> AnalysisReport:
    """Sweep the whole corpus: catalog apps, library kernels, and
    (optionally) the differential consistency pass per kernel.

    ``repo=True`` additionally runs the repository-scope passes
    (entry-point discipline).  A ``session`` may be supplied to reuse
    an existing engine session for the consistency probes; otherwise a
    private in-process, uncached one is created and closed.
    """
    from repro.engine import catalog
    from repro.kernels.library import KERNEL_LIBRARY

    machine = machine or MachineConfig()
    app_names = sorted(apps if apps is not None else catalog.APP_NAMES)
    kernel_names = sorted(kernels if kernels is not None
                          else KERNEL_LIBRARY)

    report = AnalysisReport(subject="catalog")
    scopes = ["kernel", "image"]
    if consistency:
        scopes.append("session")
    if repo:
        scopes.append("repo")
    report.passes = [p.name for scope in scopes
                     for p in registered_passes(scope)]

    # Every unique compiled kernel: the library's, plus any an app
    # carries under a name the library does not know.
    compiled = {name: KERNEL_LIBRARY[name].compiled()
                for name in kernel_names}
    images = {}
    for app in app_names:
        bundle = catalog.build_app(app)
        images[app] = bundle.image
        for name in sorted(bundle.image.kernels):
            compiled.setdefault(name, bundle.image.kernels[name])

    report.coverage = {"apps": app_names,
                       "kernels": sorted(compiled)}

    for name in sorted(compiled):
        context = AnalysisContext(machine=machine,
                                  subject=f"kernel:{name}",
                                  kernel=compiled[name])
        report.extend(run_scope("kernel", context))

    for app in app_names:
        context = AnalysisContext(machine=machine,
                                  subject=f"app:{app}",
                                  image=images[app])
        report.extend(run_scope("image", context))

    if consistency:
        own_session = session is None
        if own_session:
            from repro.engine.session import Session, SessionConfig

            session = Session(config=SessionConfig(jobs=1, cache=False))
        try:
            for name in sorted(compiled):
                context = AnalysisContext(
                    machine=machine, subject=f"kernel:{name}",
                    kernel=compiled[name], session=session)
                report.extend(run_scope("session", context))
        finally:
            if own_session:
                session.close()

    if repo:
        context = AnalysisContext(machine=machine, subject="repo")
        report.extend(run_scope("repo", context))

    return report


__all__ = [
    "lint_bundle",
    "lint_catalog",
    "lint_image",
    "lint_kernel",
    "preflight_image",
]
