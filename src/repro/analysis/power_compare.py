"""Section 5.5: power-efficiency comparison across processors.

The paper normalizes Imagine's measured 862 pJ per floating-point
operation (1.16 GFLOPS/W at 1.8 V, 0.18 um) to a 0.13 um / 1.2 V
process (277 pJ/FLOP) and compares against the TI C67x DSP
(889 pJ/FLOP) and the Pentium M (3.6 nJ/FLOP) in that technology.
This module reruns the comparison using the *simulated* peak-GFLOPS
power from our energy model instead of the paper's measured watts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BoardConfig, MachineConfig
from repro.core.power import normalize_pj_per_flop
from repro.workloads.microbench import bench_cluster_flops

#: Published comparison points at 0.13 um / 1.2 V (paper Section 5.5).
PUBLISHED_PJ_PER_FLOP = {
    "TI C67x DSP (225 MHz)": 889.0,
    "Pentium M (1.2 GHz)": 3600.0,
}
#: The paper's own numbers for Imagine.
PAPER_IMAGINE_PJ = 862.0
PAPER_IMAGINE_PJ_NORMALIZED = 277.0


@dataclass(frozen=True)
class EfficiencyRow:
    processor: str
    pj_per_flop: float
    technology: str

    def advantage_over(self, other: "EfficiencyRow") -> float:
        return other.pj_per_flop / self.pj_per_flop


def imagine_pj_per_flop(machine: MachineConfig | None = None,
                        board: BoardConfig | None = None) -> float:
    """Measured pJ/FLOP on the peak-GFLOPS micro-benchmark."""
    machine = machine or MachineConfig()
    board = board or BoardConfig.hardware()
    result = bench_cluster_flops(machine, board)
    gflops_per_watt = result.achieved / result.power_watts
    return 1e3 / gflops_per_watt  # W / GFLOPS -> pJ/FLOP


def power_efficiency_comparison(machine: MachineConfig | None = None,
                                board: BoardConfig | None = None
                                ) -> list[EfficiencyRow]:
    """The Section-5.5 table: Imagine (raw + normalized) vs. others."""
    raw = imagine_pj_per_flop(machine, board)
    normalized = normalize_pj_per_flop(raw)
    rows = [
        EfficiencyRow("Imagine (measured)", raw, "0.18um 1.8V"),
        EfficiencyRow("Imagine (normalized)", normalized,
                      "0.13um 1.2V"),
    ]
    rows += [EfficiencyRow(name, pj, "0.13um 1.2V")
             for name, pj in PUBLISHED_PJ_PER_FLOP.items()]
    return rows
