"""Structured findings for the static verifier.

Every static-analysis rule reports :class:`Finding` records -- a rule
id, a severity, a location, a human message and a fix hint -- instead
of raising on first failure, so one ``repro lint`` run surfaces every
problem in a compiled artifact at once.  Findings aggregate into an
:class:`AnalysisReport` whose JSON form (schema
``repro.analysis-report/1``) is deterministic: findings are sorted by
(rule, location, severity, message) and serialized with sorted keys,
so two runs over the same tree are byte-identical
(``docs/analysis.md``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: Schema tag stamped on every machine-readable analysis report.
REPORT_SCHEMA = "repro.analysis-report/1"


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe artifacts the hardware could not
    execute correctly (structural-limit violations, broken
    dependences); they fail ``repro lint`` and strict-mode pre-flight.
    ``WARNING`` findings describe performance hazards the machine
    survives (e.g. aggregate microcode exceeding the store, which only
    costs reloads).  ``INFO`` findings are observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation (or observation) at one location.

    ``rule`` is a stable id (``MC004``, ``SP006``, ``CX001``, ...;
    catalogued in ``docs/analysis.md``); ``location`` names the
    artifact (``kernel:dct8x8``, ``app:mpeg#12`` for instruction 12).
    """

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""
    details: Mapping[str, Any] = field(default_factory=dict)

    def sort_key(self) -> tuple:
        """Rule id, then location: a stable order CI can byte-diff.

        Severity only breaks ties within a rule (rules have a fixed
        severity in practice, so the order reads grouped-by-rule).
        """
        return (self.rule, self.location, self.severity.rank,
                self.message)

    def as_dict(self) -> dict:
        document = {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            document["hint"] = self.hint
        if self.details:
            document["details"] = {
                str(k): self.details[k] for k in sorted(self.details)}
        return document

    def __str__(self) -> str:
        text = (f"{self.severity.value}[{self.rule}] "
                f"{self.location}: {self.message}")
        if self.hint:
            text += f" ({self.hint})"
        return text


class AnalysisError(Exception):
    """Raised when error-severity findings block execution.

    Carries the blocking findings so callers (the engine's strict-mode
    pre-flight, tests) can inspect them.
    """

    def __init__(self, findings: list[Finding]) -> None:
        self.findings = list(findings)
        lines = "; ".join(str(f) for f in findings[:5])
        more = len(findings) - 5
        if more > 0:
            lines += f"; ... and {more} more"
        super().__init__(
            f"{len(findings)} error-severity finding(s): {lines}")


@dataclass
class AnalysisReport:
    """All findings from one analysis run, plus what was analyzed."""

    subject: str
    findings: list[Finding] = field(default_factory=list)
    #: Pass names that ran, in execution order.
    passes: list[str] = field(default_factory=list)
    #: Artifacts covered, e.g. ``{"kernels": [...], "apps": [...]}``.
    coverage: dict[str, list[str]] = field(default_factory=dict)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings
                if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings
                if f.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        """Process exit status for ``repro lint``: 1 on any error."""
        return 0 if self.clean else 1

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def raise_on_errors(self) -> None:
        errors = self.errors
        if errors:
            raise AnalysisError(sorted(errors, key=Finding.sort_key))

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        counts = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return {
            "schema": REPORT_SCHEMA,
            "subject": self.subject,
            "passes": list(self.passes),
            "coverage": {key: sorted(values)
                         for key, values in self.coverage.items()},
            "counts": counts,
            "findings": [f.as_dict() for f in self.sorted_findings()],
        }

    def to_json(self) -> str:
        """Deterministic JSON text (byte-identical across runs)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary for the terminal."""
        lines = [f"analysis of {self.subject}: "
                 f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s), "
                 f"{len(self.findings)} finding(s) total "
                 f"from {len(self.passes)} pass(es)"]
        lines += [f"  {finding}" for finding in self.sorted_findings()]
        return "\n".join(lines)


__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Finding",
    "REPORT_SCHEMA",
    "Severity",
]
