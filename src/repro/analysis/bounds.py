"""Static cycle-bound analysis over compiled stream programs.

An abstract interpretation of a :class:`StreamProgramImage` against
one machine/board configuration that -- without simulating -- brackets
the simulated run time:

``lower_bound_cycles <= simulated total_cycles <= upper_bound_cycles``

The **lower bound** is the maximum of two families of sound limits:

* *Per-component serialization floors* -- each shared resource must be
  busy for at least the program's aggregate demand divided by that
  resource's peak bandwidth (cluster compute, SRF bandwidth, DRAM data
  bus, AG lanes, stream-controller issue slots, host-interface issue
  rate, microcode loader).
* *A dependence-DAG path bound* -- the static analogue of the dynamic
  critical path (``repro.obs.critpath``): instruction ``i`` cannot
  issue before the host has transferred its ``i`` predecessors, cannot
  begin until ``issue + issue_overhead`` and until every dependency has
  completed plus the controller pipeline, and cannot complete before
  ``begin + d_min``; a ``host_dependency`` additionally stalls the host
  for a full round trip after the instruction completes.

Each per-instruction minimum duration ``d_min`` reuses the simulator's
own closed-form timing models (``CompiledKernel.timing`` + the SRF
stall model, ``MemorySystem.measure`` under the DRAM page policy, the
microcode loader's cycles-per-word) evaluated at their best case: no
resource sharing, no reloads, no lane contention.  The **upper bound**
charges every instruction its worst-case serialized cost (host issue
slot + controller pipeline + worst-case duration + any round trip),
where the worst-case duration inflates memory streams by the maximum
bandwidth-sharing slowdown (``num_ags / bank-conflict factor``) and
kernels by a full microcode reload.

Soundness arguments for every formula live in ``docs/analysis.md``;
the bracketing gate (``repro bounds``, ``repro.engine.bounds_gate``)
enforces them empirically against both simulation backends on the app
matrix and the fuzzed streamc corpus.  Bounds model fault-free runs
only: fault injection adds retries and backoff outside any static
limit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.config import BoardConfig, MachineConfig
from repro.core.srf import StreamRegisterFile
from repro.isa.stream_ops import StreamInstruction, StreamOpType
from repro.isa.vliw import CompiledKernel
from repro.memsys.controller import MemorySystem
from repro.streamc.compiler import StreamProgramImage

#: Schema stamp of the serialized report document.
BOUNDS_SCHEMA = "repro.bounds-report/1"

#: RESTART continues a running kernel (no prologue/epilogue); the
#: simulator charges this flat overhead instead
#: (``repro.core.processor._RESTART_OVERHEAD_CYCLES``).
_RESTART_OVERHEAD_CYCLES = 16

#: Worst-case shared-memory slowdown: the processor-sharing server
#: never scales a stream below ``bank_conflict_factor / active``
#: of its isolated rate, and at most ``num_ags`` streams are active
#: (``repro.memsys.controller.SharedMemoryServer.current_rates``).
_BANK_CONFLICT_FACTOR = 0.9

#: Static resource names, aligned with the dynamic critical-path
#: vocabulary (``repro.obs.critpath``) so predicted and measured
#: bottlenecks are directly comparable.
RESOURCES = ("ags", "clusters", "controller", "dram", "host",
             "microcontroller", "srf")

#: Resources considered equivalent when comparing a static prediction
#: against a dynamic critpath binding resource: the static model
#: cannot know AG lane assignment, and SRF bandwidth throttling
#: surfaces dynamically as cluster (stall) time.
_EQUIVALENT = (
    frozenset({"ags", "ag0", "ag1", "dram"}),
    frozenset({"clusters", "srf"}),
    frozenset({"host", "scoreboard"}),
)


@dataclass(frozen=True)
class InstructionBounds:
    """Static duration window of one stream instruction."""

    index: int
    op: str
    tag: str | None
    resource: str
    min_cycles: float
    max_cycles: float
    detail: dict = field(default_factory=dict)


@dataclass
class BoundsAnalysis:
    """Everything ``compute_bounds`` derives from one image."""

    program: str
    board_mode: str
    instructions: list[InstructionBounds]
    components: dict[str, float]
    path_cycles: float
    path_resources: dict[str, float]
    schedule_resources: dict[str, float]
    lower_bound_cycles: float
    upper_bound_cycles: float
    bottleneck: str
    bottleneck_source: str          # "path" or "component"
    image: StreamProgramImage | None = None

    def brackets(self, simulated_cycles: float) -> bool:
        """Does the bracketing invariant hold for this run?"""
        return (self.lower_bound_cycles - 1e-6 <= simulated_cycles
                <= self.upper_bound_cycles + 1e-6)

    def tightness(self, simulated_cycles: float) -> float:
        """Lower-bound tightness ratio ``simulated / lower`` (>= 1
        whenever the bound is sound; 1.0 is a perfect prediction)."""
        if self.lower_bound_cycles <= 0:
            return float("inf")
        return simulated_cycles / self.lower_bound_cycles

    def report(self) -> dict:
        """The deterministic ``repro.bounds-report/1`` document."""
        per_op: dict[str, dict[str, float]] = {}
        for row in self.instructions:
            slot = per_op.setdefault(
                row.op, {"count": 0, "min_cycles": 0.0,
                         "max_cycles": 0.0})
            slot["count"] += 1
            slot["min_cycles"] += row.min_cycles
            slot["max_cycles"] += row.max_cycles
        return {
            "schema": BOUNDS_SCHEMA,
            "program": self.program,
            "board_mode": self.board_mode,
            "instructions": len(self.instructions),
            "lower_bound_cycles": self.lower_bound_cycles,
            "upper_bound_cycles": self.upper_bound_cycles,
            "path_cycles": self.path_cycles,
            "path_resources": dict(sorted(
                self.path_resources.items())),
            "schedule_resources": dict(sorted(
                self.schedule_resources.items())),
            "components": dict(sorted(self.components.items())),
            "bottleneck": {"resource": self.bottleneck,
                           "source": self.bottleneck_source},
            "per_op": {op: per_op[op] for op in sorted(per_op)},
        }

    def to_json(self) -> str:
        return json.dumps(self.report(), indent=2, sort_keys=True)


def normalize_resource(resource: str) -> str:
    """Collapse lane-level names onto their static component."""
    if resource.startswith("ag") and resource[2:].isdigit():
        return "ags"
    return resource


def resources_match(static: str, dynamic: str) -> bool:
    """Is the dynamic critpath binding resource the one the static
    model predicted, up to vocabulary the static model cannot see?"""
    static = normalize_resource(static)
    dynamic = normalize_resource(dynamic)
    if static == dynamic:
        return True
    return any(static in group and dynamic in group
               for group in _EQUIVALENT)


def _kernel_bounds(instr: StreamInstruction, kernel: CompiledKernel,
                   machine: MachineConfig,
                   srf: StreamRegisterFile) -> tuple[float, float, dict]:
    """Min/max duration of one kernel (or RESTART) invocation.

    The minimum is the simulator's exact invocation cost -- modulo
    schedule II x iterations plus fixed overheads plus the SRF stall
    model -- which the event loop never undercuts.  The maximum adds a
    full microcode reload (the safety-net load path when the kernel
    was evicted between invocations).
    """
    timing = kernel.timing(instr.stream_elements, machine.num_clusters,
                           machine.cluster.fpus)
    if instr.op is StreamOpType.RESTART:
        busy = (timing.operations + timing.main_loop_overhead
                + _RESTART_OVERHEAD_CYCLES)
        stall = 0
    else:
        busy = timing.busy_cycles
        stall = srf.kernel_stall_cycles(kernel, timing.iterations)
    minimum = float(busy + stall)
    reload_cycles = (kernel.microcode_words
                     * machine.microcode_load_cycles_per_word)
    detail = {
        "kernel": kernel.name,
        "iterations": timing.iterations,
        "ii": kernel.ii,
        "steady_cycles": float(timing.operations
                               + timing.main_loop_overhead),
        "overhead_cycles": float(busy + stall) - float(
            timing.operations + timing.main_loop_overhead),
        "srf_words": float(
            (kernel.words_in_per_iteration
             + kernel.words_out_per_iteration)
            * timing.iterations * machine.num_clusters),
    }
    return minimum, minimum + reload_cycles, detail


def _memory_bounds(instr: StreamInstruction, memory: MemorySystem,
                   machine: MachineConfig) -> tuple[float, float, dict]:
    """Min/max duration of one memory stream transfer.

    Minimum: the stream alone at its measured page-policy rate
    (``exclusive_cycles``); the sharing server only ever scales rates
    *down*.  Maximum: the same transfer at the worst sustained shared
    rate, ``bank_conflict_factor / num_ags`` of isolated.
    """
    measurement = memory.measure(instr.pattern)
    steady = measurement.words / measurement.rate_words_per_cycle
    sharing = (1.0 if machine.num_ags <= 1
               else machine.num_ags / _BANK_CONFLICT_FACTOR)
    detail = {
        "kind": instr.pattern.kind,
        "words": float(measurement.words),
        "dram_words": float(measurement.dram_words),
        "startup_cycles": float(measurement.startup_cycles),
        "dram_core_cycles": float(measurement.dram_core_cycles),
    }
    return (float(measurement.exclusive_cycles),
            float(measurement.startup_cycles + steady * sharing),
            detail)


def _instruction_bounds(image: StreamProgramImage,
                        machine: MachineConfig) -> list[InstructionBounds]:
    srf = StreamRegisterFile(machine)
    memory = MemorySystem(machine)
    referenced: set[str] = set()
    rows: list[InstructionBounds] = []
    for instr in image.instructions:
        if instr.op.is_kernel:
            kernel = image.kernels[instr.kernel]
            minimum, maximum, detail = _kernel_bounds(
                instr, kernel, machine, srf)
            resource = "clusters"
        elif instr.op.is_memory:
            minimum, maximum, detail = _memory_bounds(
                instr, memory, machine)
            resource = "ags"
        elif instr.op is StreamOpType.MICROCODE_LOAD:
            kernel = image.kernels[instr.kernel]
            full = max(kernel.microcode_words
                       * machine.microcode_load_cycles_per_word, 1.0)
            # Only the first reference to a kernel is guaranteed a
            # cold store; later explicit loads may hit residency and
            # collapse to the 1-cycle floor.
            minimum = full if instr.kernel not in referenced else 1.0
            maximum = full
            detail = {"kernel": kernel.name,
                      "words": float(kernel.microcode_words)}
            resource = "microcontroller"
        else:
            minimum = maximum = 1.0
            detail = {}
            resource = "controller"
        if instr.kernel:
            referenced.add(instr.kernel)
        rows.append(InstructionBounds(
            index=instr.index, op=instr.op.value,
            tag=instr.tag or None, resource=resource,
            min_cycles=minimum, max_cycles=maximum, detail=detail))
    return rows


def _component_bounds(rows: list[InstructionBounds],
                      machine: MachineConfig,
                      board: BoardConfig) -> dict[str, float]:
    """Per-resource serialization floors (each alone bounds the run).

    Every formula is aggregate demand over peak service rate; each
    resource serves at most its peak no matter how instructions
    overlap, so the busiest one bounds the makespan from below.
    """
    issue_cycles = board.host_issue_cycles(machine)
    issue_overhead = (machine.stream_controller_issue_cycles
                      + board.issue_pipeline_cycles)
    kernel_rows = [r for r in rows if r.resource == "clusters"]
    mem_rows = [r for r in rows if r.resource == "ags"]
    load_rows = [r for r in rows if r.resource == "microcontroller"]
    components = {
        # Kernels serialize on the cluster array.
        "clusters": sum(r.min_cycles for r in kernel_rows),
        # Kernel SRF traffic at the full 16 words/cycle array port.
        "srf": sum(r.detail.get("srf_words", 0.0)
                   for r in kernel_rows)
               / machine.srf_peak_words_per_cycle,
        # DRAM data bus: total off-chip words at the bus peak (the
        # sharing server admits at most this aggregate rate).
        "dram": sum(r.detail.get("dram_words", 0.0)
                    for r in mem_rows)
                / machine.mem_peak_words_per_cycle,
        # Each stream holds one AG lane for >= its exclusive time.
        "ags": sum(r.min_cycles for r in mem_rows)
               / max(1, machine.num_ags),
        # The controller pipelines one begin per issue_overhead.
        "controller": float(len(rows) * issue_overhead),
        # The host transfers instructions at one per issue_cycles;
        # the last one still has to cross the controller and run.
        "host": ((len(rows) - 1) * issue_cycles + issue_overhead + 1.0
                 if rows else 0.0),
        # Explicit microcode loads serialize on the loader.
        "microcontroller": sum(r.min_cycles for r in load_rows),
    }
    return components


def _path_bound(image: StreamProgramImage,
                rows: list[InstructionBounds],
                machine: MachineConfig,
                board: BoardConfig) -> tuple[float, dict[str, float]]:
    """Dependence-DAG lower bound with per-resource attribution.

    A relaxation of the event loop: ignore every finite resource
    (scoreboard, cluster/loader/AG serialization, controller
    back-pressure) and keep only program-order host issue, dependency
    edges, the controller pipeline latency and host round trips.
    Every kept constraint is one the simulator also enforces, so each
    ``complete[i]`` lower-bounds the simulated completion time.
    """
    issue_cycles = board.host_issue_cycles(machine)
    issue_overhead = (machine.stream_controller_issue_cycles
                      + board.issue_pipeline_cycles)
    round_trip = board.host_round_trip_cycles

    instructions = image.instructions
    n = len(instructions)
    if n == 0:
        return 0.0, {}
    issue_at = [0.0] * n
    complete = [0.0] * n
    # Attribution back-pointers: what produced each issue/begin time.
    issue_cause: list[tuple[str, int]] = [("start", -1)] * n
    begin_cause: list[tuple[str, int]] = [("issue", -1)] * n

    host_ready = 0.0
    host_cause: tuple[str, int] = ("start", -1)
    for i, instr in enumerate(instructions):
        issue_at[i] = host_ready
        issue_cause[i] = host_cause
        # Memory streams start at the controller's *decision* time --
        # ``server.start`` runs before the pipeline latency elapses --
        # so they overlap the issue overhead; everything else begins
        # ``issue_overhead`` after its decision.
        overhead = 0.0 if instr.op.is_memory else issue_overhead
        begin = issue_at[i] + overhead
        cause = ("issue", i)
        for dep in instr.deps:
            candidate = complete[dep] + overhead
            if candidate > begin:
                begin = candidate
                cause = ("dep", dep)
        begin_cause[i] = cause
        complete[i] = begin + rows[i].min_cycles
        next_ready = issue_at[i] + issue_cycles
        host_cause = ("rate", i)
        if instr.host_dependency:
            blocked = complete[i] + round_trip
            if blocked > next_ready:
                next_ready = blocked
                host_cause = ("round_trip", i)
        host_ready = next_ready

    path_cycles = max(complete)
    tail = max(range(n), key=lambda i: (complete[i], i))

    # Walk the binding chain backwards, attributing every segment to
    # a resource in the critical-path vocabulary: instruction
    # durations to their resource, controller pipeline latencies to
    # the controller, issue-rate gaps and round trips to the host.
    attributed: dict[str, float] = {}

    def charge(resource: str, cycles: float) -> None:
        if cycles > 0:
            attributed[resource] = (attributed.get(resource, 0.0)
                                    + cycles)

    state, index = "complete", tail
    while index >= 0:
        if state == "complete":
            charge(rows[index].resource, rows[index].min_cycles)
            if not instructions[index].op.is_memory:
                charge("controller", issue_overhead)
            kind, source = begin_cause[index]
            if kind == "dep":
                state, index = "complete", source
            else:
                state, index = "issue", index
        else:                                    # state == "issue"
            kind, source = issue_cause[index]
            if kind == "round_trip":
                charge("host", issue_at[index] - complete[source])
                state, index = "complete", source
            elif kind == "rate":
                charge("host", issue_at[index] - issue_at[source])
                state, index = "issue", source
            else:                                # program start
                break
    return path_cycles, attributed


def _abstract_schedule(image: StreamProgramImage,
                       rows: list[InstructionBounds],
                       machine: MachineConfig,
                       board: BoardConfig) -> dict[str, float]:
    """Greedy in-order schedule of the abstract machine, for
    bottleneck *attribution* only.

    The path relaxation (:func:`_path_bound`) must stay sound, so it
    drops every finite-resource constraint -- which also makes its
    attribution blind to serialization: a program whose dynamic
    critical path chains kernels through the busy cluster array looks
    host-limited to the relaxation.  This pass replays the program
    through the abstract machine *with* the arbitration the event loop
    applies -- scoreboard window, one kernel / one loader at a time,
    ``num_ags`` memory lanes, the controller pipeline, host issue rate
    and round trips -- using the static minimum durations, then walks
    the binding chain backwards exactly like the dynamic critical-path
    extractor, charging execution segments to their resource and
    issue-chain segments (including scoreboard back-pressure, which
    the dynamic extractor also books against the host interface) to
    the host.  Its begin-in-order assumption is *not* a sound
    relaxation, so its completion times are never used as bounds.
    """
    issue_cycles = board.host_issue_cycles(machine)
    issue_overhead = (machine.stream_controller_issue_cycles
                      + board.issue_pipeline_cycles)
    round_trip = board.host_round_trip_cycles
    slots = machine.scoreboard_slots

    instructions = image.instructions
    n = len(instructions)
    if n == 0:
        return {}
    issue_at = [0.0] * n
    begin_at = [0.0] * n
    complete = [0.0] * n
    duration = [row.min_cycles for row in rows]
    #: completion index that round-trip-gated this issue, if any.
    issue_block: list[int | None] = [None] * n
    #: (kind, source): "dep"/"busy" -> complete[source],
    #: "ctrl" -> begin[source], "issue" -> issue_at[index].
    begin_cause: list[tuple[str, int]] = [("issue", -1)] * n

    host_ready = 0.0
    blocked_by: int | None = None
    cluster = (0.0, -1)       # (free at, previous occupant)
    loader = (0.0, -1)
    lanes = [(0.0, -1)] * max(1, machine.num_ags)
    last_begin = (0.0, -1)

    for i, instr in enumerate(instructions):
        slot_free = 0.0
        if i >= slots:
            slot_free = sorted(complete[:i])[i - slots]
        issue_at[i] = max(host_ready, slot_free)
        issue_block[i] = blocked_by
        blocked_by = None

        # Candidates in tie-break priority order (later entries win
        # ties): issue window < controller pipeline < resource
        # serialization < data dependency -- mirroring the dynamic
        # extractor's preference for the most specific cause.
        # Memory streams start at the controller decision (the server
        # is started before the pipeline latency elapses), so their
        # candidates carry no issue overhead.
        overhead = 0.0 if instr.op.is_memory else issue_overhead
        candidates: list[tuple[float, str, int]] = [
            (issue_at[i] + overhead, "issue", i),
            (last_begin[0] + issue_overhead, "ctrl", last_begin[1]),
        ]
        lane = 0
        if instr.op.is_kernel:
            candidates.append(
                (cluster[0] + overhead, "busy", cluster[1]))
        elif instr.op.is_memory:
            lane = min(range(len(lanes)),
                       key=lambda index: lanes[index][0])
            candidates.append(
                (lanes[lane][0] + overhead, "busy",
                 lanes[lane][1]))
        elif instr.op is StreamOpType.MICROCODE_LOAD:
            candidates.append(
                (loader[0] + overhead, "busy", loader[1]))
        for dep in instr.deps:
            candidates.append(
                (complete[dep] + overhead, "dep", dep))
        begin, kind, source = max(
            enumerate(candidates),
            key=lambda item: (item[1][0], item[0]))[1]
        begin_at[i] = begin
        begin_cause[i] = (kind, source)
        if instr.op.is_memory:
            # Approximate the shared-memory server: a stream that
            # overlaps k busy lanes progresses at ~1/k of its
            # isolated rate (the minimum duration assumes isolation).
            active = 1 + sum(1 for free_at, _ in lanes
                             if free_at > begin + 1e-9)
            startup = rows[i].detail.get("startup_cycles", 0.0)
            duration[i] = (startup
                           + (rows[i].min_cycles - startup) * active)
        complete[i] = begin + duration[i]
        last_begin = (begin, i)
        if instr.op.is_kernel:
            cluster = (complete[i], i)
        elif instr.op.is_memory:
            lanes[lane] = (complete[i], i)
        elif instr.op is StreamOpType.MICROCODE_LOAD:
            loader = (complete[i], i)

        host_ready = issue_at[i] + issue_cycles
        if instr.host_dependency:
            blocked = complete[i] + round_trip
            if blocked > host_ready:
                host_ready = blocked
                blocked_by = i

    attributed: dict[str, float] = {}

    def charge(resource: str, cycles: float) -> None:
        if cycles > 0:
            attributed[resource] = (attributed.get(resource, 0.0)
                                    + cycles)

    state, index = "complete", max(range(n),
                                   key=lambda i: (complete[i], i))
    guard = 4 * n + 4
    while index >= 0 and guard > 0:
        guard -= 1
        if state == "complete":
            charge(rows[index].resource, duration[index])
            state = "begin"
        elif state == "begin":
            kind, source = begin_cause[index]
            if not instructions[index].op.is_memory:
                charge("controller", issue_overhead)
            if kind in ("dep", "busy") and source >= 0:
                state, index = "complete", source
            elif kind == "ctrl" and source >= 0:
                state, index = "begin", source
            else:
                state = "issue"
        else:                                    # state == "issue"
            blocker = issue_block[index]
            if blocker is not None:
                charge("host", issue_at[index] - complete[blocker])
                state, index = "complete", blocker
            elif index > 0:
                charge("host",
                       issue_at[index] - issue_at[index - 1])
                state, index = "issue", index - 1
            else:
                break
    return attributed


def _upper_bound(rows: list[InstructionBounds],
                 image: StreamProgramImage,
                 machine: MachineConfig,
                 board: BoardConfig) -> float:
    """Worst-case full serialization.

    At any moment of a fault-free run at least one of these windows is
    open: the host waiting out an issue slot or a round trip, the
    controller pipelining a begin, or an instruction executing.  Each
    window is charged to exactly one instruction at its worst-case
    width, so the sum covers the whole run.
    """
    issue_cycles = board.host_issue_cycles(machine)
    issue_overhead = (machine.stream_controller_issue_cycles
                      + board.issue_pipeline_cycles)
    round_trip = board.host_round_trip_cycles
    total = 0.0
    for row, instr in zip(rows, image.instructions):
        total += issue_cycles + issue_overhead + row.max_cycles
        if instr.host_dependency:
            total += round_trip
    return total


def compute_bounds(image: StreamProgramImage,
                   machine: MachineConfig | None = None,
                   board: BoardConfig | None = None) -> BoundsAnalysis:
    """Statically bracket one compiled image on one configuration."""
    machine = machine or MachineConfig()
    board = board or BoardConfig.hardware()
    rows = _instruction_bounds(image, machine)
    components = _component_bounds(rows, machine, board)
    path_cycles, path_resources = _path_bound(image, rows, machine,
                                              board)
    lower = max([path_cycles] + list(components.values()))
    upper = max(_upper_bound(rows, image, machine, board), lower)

    # Predicted bottleneck: the heaviest resource along the abstract
    # schedule's binding chain (the static analogue of the dynamic
    # critpath binding resource); empty schedules fall back to the
    # saturated component.
    schedule = _abstract_schedule(image, rows, machine, board)
    if schedule:
        source = "schedule"
        bottleneck = sorted(schedule.items(),
                            key=lambda item: (-item[1], item[0]))[0][0]
    elif components:
        source = "component"
        bottleneck = sorted(components.items(),
                            key=lambda item: (-item[1], item[0]))[0][0]
    else:
        source = "component"
        bottleneck = "host"

    return BoundsAnalysis(
        program=image.name,
        board_mode=board.mode,
        instructions=rows,
        components=components,
        path_cycles=path_cycles,
        path_resources=path_resources,
        schedule_resources=schedule,
        lower_bound_cycles=lower,
        upper_bound_cycles=upper,
        bottleneck=bottleneck,
        bottleneck_source=source,
        image=image,
    )


def validate_bounds_report(document: dict) -> None:
    """Structural checks for a serialized bounds report."""
    if document.get("schema") != BOUNDS_SCHEMA:
        raise ValueError(f"not a bounds report: "
                         f"{document.get('schema')!r}")
    lower = document["lower_bound_cycles"]
    upper = document["upper_bound_cycles"]
    if not lower <= upper:
        raise ValueError(
            f"inconsistent bounds: lower {lower} > upper {upper}")
    if document["path_cycles"] > lower + 1e-6:
        raise ValueError("path bound exceeds the lower bound")
    for name, cycles in document["components"].items():
        if cycles > lower + 1e-6:
            raise ValueError(
                f"component {name} ({cycles}) exceeds the lower "
                f"bound ({lower})")
    if document["bottleneck"]["resource"] not in RESOURCES:
        raise ValueError(
            f"unknown bottleneck resource "
            f"{document['bottleneck']['resource']!r}")


def render_bounds(document: dict) -> str:
    """Human-readable one-program summary."""
    lines = [
        f"{document['program']} on {document['board_mode']}: "
        f"{document['instructions']} instruction(s)",
        f"  lower bound {document['lower_bound_cycles']:.0f} cycles "
        f"({document['bottleneck']['resource']} via "
        f"{document['bottleneck']['source']}), "
        f"upper bound {document['upper_bound_cycles']:.0f}",
        f"  dependence path {document['path_cycles']:.0f} cycles",
        "  component floors: " + ", ".join(
            f"{name}={cycles:.0f}" for name, cycles
            in sorted(document["components"].items(),
                      key=lambda item: (-item[1], item[0]))),
    ]
    return "\n".join(lines)


__all__ = [
    "BOUNDS_SCHEMA",
    "BoundsAnalysis",
    "InstructionBounds",
    "RESOURCES",
    "compute_bounds",
    "normalize_resource",
    "render_bounds",
    "resources_match",
    "validate_bounds_report",
]
