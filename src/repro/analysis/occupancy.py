"""Functional-unit occupancy: quantifying load imbalance.

Figure 6 attributes main-loop overhead to "limited ILP and load
imbalance between the types of arithmetic units in a cluster"; this
module makes that concrete by reporting, per kernel, the fraction of
each unit class's issue slots the scheduled main loop actually fills.
``update2`` shows the signature imbalance: multipliers ~100% busy,
adders far below -- the paper's worked example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.kernel_ir import FuClass, OPCODES
from repro.isa.vliw import CompiledKernel
from repro.kernelc.scheduling import ClusterResources

#: Unit classes reported, in cluster order.
REPORTED_CLASSES = (FuClass.ADD, FuClass.MUL, FuClass.DSQ, FuClass.SP,
                    FuClass.COMM, FuClass.SB)


@dataclass(frozen=True)
class OccupancyReport:
    """Per-class busy fractions of one kernel's main loop."""

    kernel: str
    ii: int
    busy_fraction: dict[FuClass, float]

    @property
    def bottleneck(self) -> FuClass:
        return max(self.busy_fraction, key=self.busy_fraction.get)

    @property
    def imbalance(self) -> float:
        """Bottleneck-class occupancy minus the FPU-average occupancy.

        0 means perfectly balanced FPUs; large values mean one unit
        class gates the loop while others idle (update2's profile).
        """
        fpu_classes = (FuClass.ADD, FuClass.MUL, FuClass.DSQ)
        average = sum(self.busy_fraction[c] for c in fpu_classes) / 3
        return self.busy_fraction[self.bottleneck] - average


def fu_occupancy(kernel: CompiledKernel,
                 resources: ClusterResources | None = None
                 ) -> OccupancyReport:
    """Busy fraction of each unit class over the main-loop II."""
    resources = resources or ClusterResources()
    busy = {cls: 0 for cls in REPORTED_CLASSES}
    for word in kernel.schedule:
        for slot in word.slots:
            spec = OPCODES[slot.opcode]
            if slot.fu in busy:
                busy[slot.fu] += min(spec.issue_interval, kernel.ii)
    fractions = {
        cls: busy[cls] / (kernel.ii * resources.units(cls))
        for cls in REPORTED_CLASSES
    }
    return OccupancyReport(kernel=kernel.name, ii=kernel.ii,
                           busy_fraction=fractions)


def render_occupancy(kernels: list[CompiledKernel]) -> str:
    from repro.analysis.report import render_table

    rows = []
    for kernel in kernels:
        report = fu_occupancy(kernel)
        rows.append(
            [kernel.name]
            + [f"{report.busy_fraction[c] * 100:.0f}%"
               for c in REPORTED_CLASSES]
            + [report.bottleneck.value,
               f"{report.imbalance * 100:.0f}%"])
    return render_table(
        "Functional-unit occupancy of kernel main loops",
        ["kernel"] + [c.value.upper() for c in REPORTED_CLASSES]
        + ["bottleneck", "imbalance"],
        rows)
