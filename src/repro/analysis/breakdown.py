"""Kernel- and application-level run-time breakdowns.

* :func:`kernel_breakdown` reproduces Figure 6: for one kernel at a
  given stream length, how run time divides into the operations
  floor, main-loop overhead (ILP limits and FU-type load imbalance),
  non-main-loop cycles (prologue/epilogue/outer blocks), and cluster
  stalls (SRF readiness).
* :func:`measure_kernel` reproduces a Table-2 row: sustained
  arithmetic rate, LRF and SRF bandwidth, IPC and power, all derived
  from the kernel's compiled schedule at an application-typical
  stream length.
* :func:`application_breakdown` extracts Figure 11's eight categories
  from a finished simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MachineConfig, RunResult
from repro.core.metrics import CycleCategory
from repro.core.power import EnergyConstants
from repro.core.srf import StreamRegisterFile
from repro.isa.kernel_ir import FuClass
from repro.streamc.program import KernelSpec

#: Average stream lengths (elements) observed during application
#: execution, used for Figure 6 / Table 2 as the paper specifies.
APPLICATION_STREAM_ELEMENTS: dict[str, int] = {
    "dct8x8": 2816,       # MPEG strip (words / 4 per iteration)
    "blocksearch": 1408,  # MPEG half-strip
    "rle": 2816,          # MPEG quantized coefficients
    "conv7x7": 160,       # DEPTH image row (packed pairs)
    "blocksad": 1408,     # MPEG residual strip
    "house": 1024,        # QRD panel columns
    "update2": 2048,      # QRD trailing blocks
    "gromacs": 1024,      # molecule-pair batch
}


def kernel_breakdown(spec: KernelSpec, stream_elements: int | None = None,
                     machine: MachineConfig | None = None
                     ) -> dict[str, float]:
    """Figure-6 fractions for one kernel invocation."""
    machine = machine or MachineConfig()
    elements = (stream_elements
                or APPLICATION_STREAM_ELEMENTS.get(spec.name, 1024))
    kernel = spec.compiled()
    timing = kernel.timing(elements, machine.num_clusters,
                           machine.cluster.fpus)
    srf = StreamRegisterFile(machine)
    stalls = srf.kernel_stall_cycles(kernel, timing.iterations)
    total = timing.busy_cycles + stalls
    return {
        "operations": timing.operations / total,
        "kernel main loop overhead": timing.main_loop_overhead / total,
        "kernel non-main loop overhead": timing.non_main_loop / total,
        "cluster stall": stalls / total,
    }


@dataclass(frozen=True)
class KernelRow:
    """One Table-2 row."""

    kernel: str
    rate: float
    rate_unit: str
    lrf_gbytes: float
    srf_gbytes: float
    ipc: float
    power_watts: float
    description: str


def measure_kernel(spec: KernelSpec, stream_elements: int | None = None,
                   machine: MachineConfig | None = None,
                   constants: EnergyConstants | None = None) -> KernelRow:
    """Table-2 metrics for one kernel at an app-typical length."""
    machine = machine or MachineConfig()
    constants = constants or EnergyConstants()
    elements = (stream_elements
                or APPLICATION_STREAM_ELEMENTS.get(spec.name, 1024))
    kernel = spec.compiled()
    timing = kernel.timing(elements, machine.num_clusters,
                           machine.cluster.fpus)
    srf = StreamRegisterFile(machine)
    stalls = srf.kernel_stall_cycles(kernel, timing.iterations)
    cycles = timing.busy_cycles + stalls
    scale = timing.iterations * machine.num_clusters

    flops = kernel.flops_per_iteration * scale
    ops = kernel.arith_ops_per_iteration * scale
    instructions = kernel.instructions_per_iteration * scale
    lrf_words = kernel.lrf_accesses_per_iteration * scale
    srf_words = (kernel.words_in_per_iteration
                 + kernel.words_out_per_iteration) * scale
    seconds = cycles / machine.clock_hz

    if flops >= ops * 0.9:
        rate, unit = flops / seconds / 1e9, "GFLOPS"
    else:
        rate, unit = ops / seconds / 1e9, "GOPS"

    pico = 1e-12
    dsq_ops = kernel.graph.fu_count(FuClass.DSQ) * scale
    int_ops = max(0, ops - flops)
    dynamic = (int_ops * constants.int_op + flops * constants.flop
               + dsq_ops * constants.dsq_op
               + lrf_words * constants.lrf_word
               + srf_words * constants.srf_word
               + kernel.comm_ops_per_iteration * scale * constants.comm_op
               + kernel.sp_accesses_per_iteration * scale
               * constants.sp_access
               + timing.busy_cycles * constants.vliw_issue_cycle) * pico
    watts = constants.idle_watts + dynamic / seconds

    return KernelRow(
        kernel=spec.name,
        rate=rate,
        rate_unit=unit,
        lrf_gbytes=machine.gbytes_per_sec(lrf_words, cycles),
        srf_gbytes=machine.gbytes_per_sec(srf_words, cycles),
        ipc=instructions / cycles,
        power_watts=watts,
        description=spec.description,
    )


def application_breakdown(result: RunResult) -> dict[str, float]:
    """Figure-11 fractions (the eight categories, summing to 1)."""
    fractions = result.metrics.cycle_fractions()
    return {category.value: fraction
            for category, fraction in fractions.items()}


def application_overhead(result: RunResult) -> float:
    """Non-kernel overhead fraction (the paper's <10% / >30% claim)."""
    fractions = result.metrics.cycle_fractions()
    return sum(fractions[c] for c in (
        CycleCategory.MICROCODE_LOAD_STALL,
        CycleCategory.MEMORY_STALL,
        CycleCategory.STREAM_CONTROLLER_OVERHEAD,
        CycleCategory.HOST_BANDWIDTH_STALL,
    ))
