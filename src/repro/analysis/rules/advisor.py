"""Bound-model rules and the optimization advisor (BD###, ADV###).

Image-scope passes over the static cycle-bound analysis
(:mod:`repro.analysis.bounds`).  ``BD`` rules report properties of the
bound model itself (internal consistency, microcode-store pressure,
host-interface-bound programs); ``ADV`` rules are the optimization
advisor from the paper's Figures 7-8 discussion: each finding names a
restructuring opportunity and carries an *estimated* cycle saving
derived from the static minimum durations.  Advisor findings are
``INFO`` severity -- they describe performance left on the table, not
defects -- and every estimate is an upper bound on the benefit (the
cycles are real, but overlap after restructuring is assumed perfect).

The advisor is deliberately silent on steady-state probe programs
(one microcode load + one kernel invocation): every rule requires
either memory streams or repeated kernel invocations, so the
differential-consistency probes of :mod:`.consistency` never trip it.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.bounds import compute_bounds
from repro.analysis.findings import Finding, Severity
from repro.analysis.passes import AnalysisContext, analysis_pass

#: An advisor rule only fires when its estimated saving is at least
#: this fraction of the whole-program lower bound: advice about noise
#: is worse than no advice.
SAVINGS_FLOOR = 0.05
#: A stream is "startup dominated" when fixed startup latency is at
#: least this fraction of its minimum duration (paper Figure 7: short
#: streams cannot amortize the memory-access setup).
STARTUP_SHARE = 0.25
#: AG-serialization advice needs at least this fraction of the lower
#: bound tied up in dependency-chained memory streams.
AG_CHAIN_FLOOR = 0.10


def _ancestors(image) -> list[int]:
    """Transitive-dependency bitmask per instruction.

    Bit ``j`` of entry ``i`` is set when instruction ``i`` depends on
    instruction ``j``, directly or through intermediaries.  Programs
    are dependency-acyclic in program order (SP002 flags the rest), so
    one forward sweep suffices.
    """
    masks = [0] * len(image.instructions)
    for i, instr in enumerate(image.instructions):
        mask = 0
        for dep in instr.deps:
            if 0 <= dep < i:
                mask |= masks[dep] | (1 << dep)
        masks[i] = mask
    return masks


@analysis_pass("image.bounds", "image")
def check_bounds(context: AnalysisContext) -> Iterator[Finding]:
    """Static cycle-bound consistency and optimization advice."""
    image = context.image
    assert image is not None
    where = context.subject
    try:
        analysis = compute_bounds(image, machine=context.machine)
    except Exception as error:  # broken images are SP/MC territory
        yield Finding(
            "BD004", Severity.INFO, where,
            f"cycle-bound analysis unavailable: {error}",
            hint="fix the structural findings first; the bound model "
                 "only covers images the simulator would accept")
        return

    lower = analysis.lower_bound_cycles
    upper = analysis.upper_bound_cycles
    rows = analysis.instructions

    # ------------------------------------------------------------------
    # BD: properties of the bound model.
    # ------------------------------------------------------------------
    if lower > upper + 1e-6:
        yield Finding(
            "BD001", Severity.ERROR, where,
            f"static lower bound {lower:.0f} exceeds upper bound "
            f"{upper:.0f}",
            hint="the bound model is internally inconsistent for "
                 "this image; report it as a discrepancy seed")

    machine = context.machine
    store = machine.microcode_store_words
    resident = sorted(image.kernels)
    words = {name: image.kernels[name].microcode_words
             for name in resident}
    total_words = sum(words.values())
    if store and total_words > store:
        yield Finding(
            "BD002", Severity.WARNING, where,
            f"aggregate microcode ({total_words} words across "
            f"{len(resident)} kernels) exceeds the "
            f"{store}-word store; reloads will evict working set",
            hint="split the program or shrink kernels; every evicted "
                 "kernel pays the full microcode reload on reuse",
            details={"microcode_words": total_words,
                     "store_words": store,
                     "kernels": {k: words[k] for k in resident}})

    components = analysis.components
    if components:
        top = max(sorted(components), key=lambda k: components[k])
        if top == "host" and len(image.instructions) > 1:
            yield Finding(
                "BD003", Severity.INFO, where,
                f"statically host-interface bound: the host issue "
                f"floor ({components['host']:.0f} cycles) exceeds "
                f"every datapath floor",
                hint="batch work into fewer, longer stream "
                     "instructions; the host interface caps "
                     "throughput regardless of datapath speed",
                details={"host_floor": round(components["host"], 1),
                         "cluster_floor": round(
                             components.get("clusters", 0.0), 1)})

    if lower <= 0:
        return

    # ------------------------------------------------------------------
    # ADV: the optimization advisor.
    # ------------------------------------------------------------------
    masks = _ancestors(image)
    kernel_positions = [i for i, instr in enumerate(image.instructions)
                        if instr.op.is_kernel]
    kernel_mask = 0
    for i in kernel_positions:
        kernel_mask |= 1 << i

    # ADV001 -- memory streams that no kernel can overlap: every
    # kernel either feeds the stream or consumes it, so its whole
    # duration is exposed latency the clusters sit out.
    exposed = []
    for i, instr in enumerate(image.instructions):
        if not instr.op.is_memory or not kernel_positions:
            continue
        concurrent = kernel_mask
        concurrent &= ~masks[i]            # kernels this stream needs
        for k in kernel_positions:         # kernels needing this stream
            if masks[k] & (1 << i):
                concurrent &= ~(1 << k)
        if concurrent == 0:
            exposed.append(i)
    saving = sum(rows[i].min_cycles for i in exposed)
    if exposed and saving >= SAVINGS_FLOOR * lower:
        spots = ", ".join(f"#{i}" for i in exposed[:6])
        yield Finding(
            "ADV001", Severity.INFO, where,
            f"{len(exposed)} memory stream(s) ({spots}"
            f"{', ...' if len(exposed) > 6 else ''}) cannot overlap "
            f"any kernel; up to {saving:.0f} cycles of exposed "
            f"memory latency ({100 * saving / lower:.0f}% of the "
            f"lower bound)",
            hint="software-pipeline the loop: double-buffer the "
                 "streams so iteration i's loads run under "
                 "iteration i-1's kernels",
            details={"instructions": exposed,
                     "estimated_saving_cycles": round(saving, 1)})

    # ADV002 -- short, startup-dominated streams (paper Figure 7).
    short = [i for i, instr in enumerate(image.instructions)
             if instr.op.is_memory
             and rows[i].min_cycles > 0
             and (rows[i].detail.get("startup_cycles", 0.0)
                  >= STARTUP_SHARE * rows[i].min_cycles)]
    startup_total = sum(rows[i].detail["startup_cycles"] for i in short)
    if len(short) >= 2 and startup_total >= SAVINGS_FLOOR * lower:
        saving = startup_total * (len(short) - 1) / len(short)
        yield Finding(
            "ADV002", Severity.INFO, where,
            f"{len(short)} short memory stream(s) pay "
            f"{startup_total:.0f} cycles of access setup "
            f"({100 * startup_total / lower:.0f}% of the lower "
            f"bound); batching them could save ~{saving:.0f}",
            hint="merge short transfers into longer streams; startup "
                 "latency amortizes only over stream length",
            details={"instructions": short,
                     "startup_cycles": round(startup_total, 1),
                     "estimated_saving_cycles": round(saving, 1)})

    # ADV003 -- kernel prologue domination (paper Figure 8): repeated
    # short invocations of the same kernel each pay the loop prologue
    # and epilogue; one batched invocation pays it once.
    by_kernel: dict[str, list[int]] = {}
    for i, instr in enumerate(image.instructions):
        if instr.op.is_kernel and rows[i].detail.get("kernel"):
            by_kernel.setdefault(rows[i].detail["kernel"], []).append(i)
    for name in sorted(by_kernel):
        calls = by_kernel[name]
        if len(calls) < 2:
            continue
        overhead = sum(rows[i].detail.get("overhead_cycles", 0.0)
                       for i in calls)
        if overhead < SAVINGS_FLOOR * lower:
            continue
        saving = overhead * (len(calls) - 1) / len(calls)
        yield Finding(
            "ADV003", Severity.INFO, where,
            f"kernel {name!r} is invoked {len(calls)} times and "
            f"spends {overhead:.0f} cycles in prologue/epilogue "
            f"({100 * overhead / lower:.0f}% of the lower bound); "
            f"batching invocations could save ~{saving:.0f}",
            hint="lengthen streams so each invocation runs more "
                 "main-loop iterations (strip-mine less aggressively)",
            details={"kernel": name, "invocations": len(calls),
                     "overhead_cycles": round(overhead, 1),
                     "estimated_saving_cycles": round(saving, 1)})

    # ADV004 -- AG serialization: dependency-chained memory streams
    # cannot use the machine's parallel address generators.
    if machine.num_ags >= 2:
        chained = [
            i for i, instr in enumerate(image.instructions)
            if instr.op.is_memory
            and any(image.instructions[j].op.is_memory
                    for j in range(i)
                    if masks[i] & (1 << j))
        ]
        chain_cycles = sum(rows[i].min_cycles for i in chained)
        if chained and chain_cycles >= AG_CHAIN_FLOOR * lower:
            saving = chain_cycles * (1 - 1 / machine.num_ags)
            yield Finding(
                "ADV004", Severity.INFO, where,
                f"{len(chained)} memory stream(s) are dependency-"
                f"chained behind other streams, serializing "
                f"{chain_cycles:.0f} cycles on one address generator "
                f"path; overlapping them could save ~{saving:.0f}",
                hint=f"break the dependence (separate buffers) so "
                     f"independent streams spread across the "
                     f"{machine.num_ags} AGs",
                details={"instructions": chained,
                         "chained_cycles": round(chain_cycles, 1),
                         "estimated_saving_cycles": round(saving, 1)})


__all__ = ["check_bounds", "SAVINGS_FLOOR", "STARTUP_SHARE",
           "AG_CHAIN_FLOOR"]
