"""Microcode rules: VLIW-schedule legality and store pressure (MC###).

Kernel-scope passes inspect one :class:`~repro.isa.vliw.CompiledKernel`
against the cluster's structural limits; the image-scope footprint
pass checks the aggregate microcode-store pressure of a whole
application.  ``MC005`` is deliberately *independent* of the
scheduler's own ``_verify``: it reconstructs dependence feasibility
from the VLIW words alone (a second opinion on
``kernelc/scheduling.py``), so a bug in the scheduler's bookkeeping
cannot hide a broken schedule.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.passes import AnalysisContext, analysis_pass
from repro.isa.kernel_ir import OPCODES
from repro.isa.vliw import CLUSTER_ISSUE_SLOTS, CompiledKernel
from repro.kernelc.scheduling import dependence_edges, resource_mii


@analysis_pass("microcode.slots", "kernel")
def check_slots(context: AnalysisContext) -> Iterator[Finding]:
    """VLIW slot legality: FU classes, unit indices, occupancy."""
    kernel = context.kernel
    assert kernel is not None
    where = context.subject

    if kernel.ii < 1 or len(kernel.schedule) != kernel.ii:
        yield Finding(
            "MC001", Severity.ERROR, where,
            f"malformed schedule: {len(kernel.schedule)} word(s) for "
            f"II={kernel.ii}",
            hint="the schedule must hold exactly II VLIW words")
        return

    slot_budget = sum(CLUSTER_ISSUE_SLOTS.values())
    seen: dict[tuple, int] = {}
    for word in kernel.schedule:
        if word.occupancy() > slot_budget:
            yield Finding(
                "MC004", Severity.ERROR, where,
                f"word at cycle {word.cycle} issues "
                f"{word.occupancy()} operations but a cluster has "
                f"only {slot_budget} issue slots",
                hint="split the word or raise the II",
                details={"cycle": word.cycle,
                         "occupancy": word.occupancy(),
                         "slots": slot_budget})
        for slot in word.slots:
            spec = OPCODES.get(slot.opcode)
            if spec is None:
                yield Finding(
                    "MC001", Severity.ERROR, where,
                    f"op {slot.op} uses unknown opcode "
                    f"{slot.opcode!r} at cycle {word.cycle}")
                continue
            if spec.fu is not slot.fu:
                yield Finding(
                    "MC001", Severity.ERROR, where,
                    f"op {slot.op} ({slot.opcode}) scheduled on "
                    f"{slot.fu.name} but the opcode needs "
                    f"{spec.fu.name}",
                    hint="the scheduler placed the op on the wrong "
                         "unit class",
                    details={"cycle": word.cycle})
            limit = CLUSTER_ISSUE_SLOTS.get(slot.fu, 0)
            if not 0 <= slot.unit < limit:
                yield Finding(
                    "MC003", Severity.ERROR, where,
                    f"op {slot.op} ({slot.opcode}) on {slot.fu.name} "
                    f"unit {slot.unit}, but a cluster has {limit} "
                    f"{slot.fu.name} unit(s)",
                    details={"cycle": word.cycle, "unit": slot.unit,
                             "units_available": limit})
            key = (slot.fu, slot.unit, word.cycle)
            if key in seen:
                yield Finding(
                    "MC002", Severity.ERROR, where,
                    f"{slot.fu.name} unit {slot.unit} double-booked "
                    f"at cycle {word.cycle} (ops {seen[key]} and "
                    f"{slot.op})",
                    hint="two operations cannot issue on one unit in "
                         "the same cycle",
                    details={"cycle": word.cycle})
            else:
                seen[key] = slot.op


@analysis_pass("microcode.schedule", "kernel")
def check_schedule(context: AnalysisContext) -> Iterator[Finding]:
    """Modulo-schedule feasibility, re-derived from the VLIW words."""
    kernel = context.kernel
    assert kernel is not None
    where = context.subject
    if kernel.ii < 1 or len(kernel.schedule) != kernel.ii:
        return  # MC001 already fired; nothing to re-derive.

    machine = context.machine
    mii = resource_mii(kernel.graph, machine.cluster)
    if kernel.ii < mii:
        yield Finding(
            "MC006", Severity.ERROR, where,
            f"II={kernel.ii} is below the resource lower bound "
            f"{mii} for this FU mix",
            hint="the schedule cannot issue this many operations "
                 "per II on the cluster's units",
            details={"ii": kernel.ii, "resource_mii": mii})

    # Reconstruct each op's modulo issue slot from the words.
    slot_of: dict[int, int] = {}
    for word in kernel.schedule:
        for slot in word.slots:
            slot_of[slot.op] = word.cycle
    missing = [op.ident for op in kernel.graph.schedulable_ops
               if op.ident not in slot_of]
    if missing:
        yield Finding(
            "MC005", Severity.ERROR, where,
            f"{len(missing)} schedulable op(s) absent from the VLIW "
            f"words: {missing[:8]}",
            hint="every schedulable op must appear in exactly one "
                 "word of the main loop")
        return

    yield from _dependence_feasibility(kernel, slot_of, where)


def _dependence_feasibility(kernel: CompiledKernel,
                            slot_of: dict[int, int],
                            where: str) -> Iterator[Finding]:
    """Difference-constraint check that some stage assignment makes
    every dependence hold.

    An op issued in modulo slot ``s`` at pipeline stage ``k`` runs at
    absolute time ``s + II*k``.  A dependence ``src -> dst`` with
    latency ``L`` and iteration distance ``d`` requires
    ``slot_dst + II*k_dst + II*d >= slot_src + II*k_src + L``, i.e.
    ``k_dst - k_src >= ceil((L - II*d - (slot_dst - slot_src))/II)``.
    The system is feasible iff the constraint graph has no
    positive-weight cycle (Bellman-Ford longest path); the longest
    path also lower-bounds the pipeline depth the schedule needs.
    """
    ii = kernel.ii
    edges = [
        (edge.src, edge.dst,
         math.ceil((edge.latency - ii * edge.distance
                    - (slot_of[edge.dst] - slot_of[edge.src])) / ii))
        for edge in dependence_edges(kernel.graph)
    ]
    stage = {ident: 0 for ident in slot_of}
    for _ in range(len(stage)):
        changed = False
        for src, dst, weight in edges:
            candidate = stage[src] + weight
            if candidate > stage[dst]:
                stage[dst] = candidate
                changed = True
        if not changed:
            break
    else:
        for src, dst, weight in edges:
            if stage[src] + weight > stage[dst]:
                yield Finding(
                    "MC005", Severity.ERROR, where,
                    f"no stage assignment satisfies the dependences "
                    f"at II={ii} (positive cycle through "
                    f"{src}->{dst})",
                    hint="a loop-carried recurrence is tighter than "
                         "this II allows; the schedule is infeasible",
                    details={"ii": ii})
                return
    needed = max(stage.values(), default=0) + 1
    if kernel.stages < needed:
        yield Finding(
            "MC005", Severity.ERROR, where,
            f"declared {kernel.stages} pipeline stage(s) but the "
            f"dependences need at least {needed}",
            hint="the microcode footprint and prologue/epilogue are "
                 "derived from the stage count; an understated count "
                 "corrupts both",
            details={"declared_stages": kernel.stages,
                     "required_stages": needed})


@analysis_pass("microcode.lrf", "kernel")
def check_lrf_pressure(context: AnalysisContext) -> Iterator[Finding]:
    """LRF port pressure against the 272 words/cycle chip budget."""
    kernel = context.kernel
    assert kernel is not None
    if kernel.ii < 1:
        return
    machine = context.machine
    per_cluster = kernel.lrf_accesses_per_iteration / kernel.ii
    budget = machine.lrf_peak_words_per_cluster_cycle
    if per_cluster > budget:
        yield Finding(
            "MC007", Severity.ERROR, context.subject,
            f"main loop moves {per_cluster:.1f} LRF words per cluster "
            f"per cycle, above the {budget:.1f} words/cycle port "
            f"budget ({machine.lrf_peak_words_per_cycle} chip-wide)",
            hint="the register files cannot sustain this schedule; "
                 "raise the II or reduce operand traffic",
            details={"words_per_cluster_cycle": round(per_cluster, 3),
                     "budget": budget})


@analysis_pass("microcode.store", "kernel")
def check_store_fit(context: AnalysisContext) -> Iterator[Finding]:
    """A single kernel must fit the 2K-word microcode store."""
    kernel = context.kernel
    assert kernel is not None
    store = context.machine.microcode_store_words
    if kernel.microcode_words > store:
        yield Finding(
            "MC008", Severity.ERROR, context.subject,
            f"kernel needs {kernel.microcode_words} microcode words "
            f"but the store holds {store}",
            hint="the microcontroller can never load this kernel; "
                 "reduce unrolling or split the kernel",
            details={"microcode_words": kernel.microcode_words,
                     "store_words": store})


@analysis_pass("microcode.footprint", "image")
def check_aggregate_footprint(context: AnalysisContext
                              ) -> Iterator[Finding]:
    """Aggregate microcode pressure of one application (warning).

    Exceeding the store across *all* kernels is survivable -- the
    microcontroller evicts LRU entries and reloads (the paper measures
    under 6% degradation from reloads) -- so this is a performance
    hazard, not an error.
    """
    image = context.image
    assert image is not None
    store = context.machine.microcode_store_words
    total = sum(kernel.microcode_words
                for kernel in image.kernels.values())
    if total > store:
        yield Finding(
            "MC009", Severity.WARNING, context.subject,
            f"kernels total {total} microcode words against a "
            f"{store}-word store; expect eviction/reload stalls",
            hint="kernel working sets above the store cost microcode "
                 "reload time on each recurrence",
            details={"total_words": total, "store_words": store,
                     "kernels": len(image.kernels)})
