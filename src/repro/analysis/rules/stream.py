"""Stream-program rules: scoreboard, SRF and descriptor limits (SP###).

Image-scope passes over a :class:`~repro.streamc.compiler.StreamProgramImage`:
dependency-graph sanity (including the static deadlock detection the
runtime watchdog would otherwise only diagnose mid-run), SRF
allocation legality against the 128 KB capacity, SDR/MAR descriptor
bounds, and strided load/store bounds against the declared memory
arrays.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.passes import AnalysisContext, analysis_pass
from repro.isa.stream_ops import StreamOpType
from repro.streamc.program import _pattern_range


@analysis_pass("stream.scoreboard", "image")
def check_scoreboard(context: AnalysisContext) -> Iterator[Finding]:
    """Dependency references: dangling, forward/self, cycles, kernels."""
    image = context.image
    assert image is not None
    where = context.subject
    count = len(image.instructions)

    for position, instr in enumerate(image.instructions):
        spot = f"{where}#{position}"
        if instr.index != position:
            yield Finding(
                "SP001", Severity.ERROR, spot,
                f"instruction mis-indexed as {instr.index} at "
                f"position {position}",
                hint="scoreboard dependencies address instructions "
                     "by position; a wrong index breaks them")
        for dep in instr.deps:
            if not 0 <= dep < count:
                yield Finding(
                    "SP001", Severity.ERROR, spot,
                    f"{instr.op.value} depends on instruction {dep}, "
                    f"which does not exist (program has {count})",
                    hint="the dependency can never be satisfied; the "
                         "scoreboard would hold this slot forever")
            elif dep == position:
                yield Finding(
                    "SP002", Severity.ERROR, spot,
                    f"{instr.op.value} depends on itself",
                    hint="a self-dependency deadlocks the scoreboard")
            elif dep > position:
                yield Finding(
                    "SP002", Severity.ERROR, spot,
                    f"{instr.op.value} depends on later instruction "
                    f"{dep}",
                    hint="the host issues in program order; forward "
                         "dependencies stall the scoreboard until the "
                         "watchdog fires")
        if (instr.op.is_kernel
                or instr.op is StreamOpType.MICROCODE_LOAD):
            if instr.kernel not in image.kernels:
                yield Finding(
                    "SP004", Severity.ERROR, spot,
                    f"{instr.op.value} references kernel "
                    f"{instr.kernel!r}, which the image does not carry",
                    hint="the simulator raises SimulationError at "
                         "issue time; bundle the compiled kernel")

    yield from _dependency_cycles(image, where)


def _dependency_cycles(image, where: str) -> Iterator[Finding]:
    """Flag genuine dependency cycles (mutual forward references)."""
    count = len(image.instructions)
    graph = {
        position: [dep for dep in instr.deps if 0 <= dep < count]
        for position, instr in enumerate(image.instructions)
    }
    state: dict[int, int] = {}
    reported: set[frozenset] = set()

    for root in graph:
        if state.get(root, 0):
            continue
        stack = [(root, iter(graph[root]))]
        state[root] = 1
        path = [root]
        while stack:
            node, deps = stack[-1]
            advanced = False
            for dep in deps:
                mark = state.get(dep, 0)
                if mark == 1:
                    cycle = path[path.index(dep):]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        yield Finding(
                            "SP003", Severity.ERROR,
                            f"{where}#{min(cycle)}",
                            f"dependency cycle through instructions "
                            f"{sorted(cycle)}",
                            hint="every instruction in the cycle "
                                 "waits on another; the scoreboard "
                                 "deadlocks at run time")
                elif mark == 0:
                    state[dep] = 1
                    stack.append((dep, iter(graph[dep])))
                    path.append(dep)
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()
                path.pop()


@analysis_pass("stream.srf", "image")
def check_srf(context: AnalysisContext) -> Iterator[Finding]:
    """SRF capacity and allocation-overlap legality."""
    image = context.image
    assert image is not None
    where = context.subject
    capacity = context.machine.srf_words

    records = list(image.srf_allocations)
    for record in records:
        if record.start < 0 or record.end > capacity:
            yield Finding(
                "SP005", Severity.ERROR, where,
                f"stream {record.stream} allocated at SRF words "
                f"[{record.start}, {record.end}) outside the "
                f"{capacity}-word SRF",
                hint="the stream does not fit; shorten it or free "
                     "earlier streams first",
                details={"start": record.start, "words": record.words,
                         "srf_words": capacity})
    ordered = sorted(records, key=lambda r: (r.start, r.allocated_at))
    for i, first in enumerate(ordered):
        for second in ordered[i + 1:]:
            if second.start >= first.end:
                break
            if first.overlaps(second):
                yield Finding(
                    "SP006", Severity.ERROR, where,
                    f"streams {first.stream} and {second.stream} "
                    f"overlap in the SRF (words "
                    f"[{max(first.start, second.start)}, "
                    f"{min(first.end, second.end)})) while both live",
                    hint="one stream would silently corrupt the "
                         "other; the allocator double-booked the SRF",
                    details={"first": first.stream,
                             "second": second.stream})


@analysis_pass("stream.descriptors", "image")
def check_descriptors(context: AnalysisContext) -> Iterator[Finding]:
    """SDR / MAR indices within the descriptor files (32 / 8)."""
    image = context.image
    assert image is not None
    machine = context.machine
    for position, instr in enumerate(image.instructions):
        spot = f"{context.subject}#{position}"
        if instr.sdr is not None and not (
                0 <= instr.sdr < machine.num_sdrs):
            yield Finding(
                "SP007", Severity.ERROR, spot,
                f"{instr.op.value} writes SDR {instr.sdr}, but the "
                f"machine has {machine.num_sdrs} SDRs",
                details={"sdr": instr.sdr,
                         "num_sdrs": machine.num_sdrs})
        if instr.mar is not None and not (
                0 <= instr.mar < machine.num_mars):
            yield Finding(
                "SP008", Severity.ERROR, spot,
                f"{instr.op.value} writes MAR {instr.mar}, but the "
                f"machine has {machine.num_mars} MARs",
                details={"mar": instr.mar,
                         "num_mars": machine.num_mars})


@analysis_pass("stream.memory", "image")
def check_memory_bounds(context: AnalysisContext) -> Iterator[Finding]:
    """Strided load/store word ranges within a declared array.

    Indexed patterns wrap modulo the array length at run time, so only
    strided transfers have a statically checkable range.  Images built
    by hand or restored from playback records carry no array extents
    and are skipped.
    """
    image = context.image
    assert image is not None
    if not image.arrays:
        return
    extents = sorted(image.arrays, key=lambda a: a.base)
    for position, instr in enumerate(image.instructions):
        if not instr.op.is_memory or instr.pattern is None:
            continue
        if getattr(instr.pattern, "kind", None) != "strided":
            continue
        lo, hi = _pattern_range(instr.pattern)
        if any(array.base <= lo and hi <= array.end
               for array in extents):
            continue
        yield Finding(
            "SP009", Severity.ERROR, f"{context.subject}#{position}",
            f"{instr.op.value} touches words [{lo}, {hi}), outside "
            f"every declared array",
            hint="the transfer reads or clobbers memory no array "
                 "owns; check the pattern's start/stride/length",
            details={"lo": lo, "hi": hi,
                     "arrays": [[a.name, a.base, a.end]
                                for a in extents]})
