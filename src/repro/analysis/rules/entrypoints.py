"""API-discipline rule (EP001): one sanctioned simulation entry point.

Every simulation is supposed to flow through
:class:`repro.engine.Session`, whose single processor construction
site lives in ``src/repro/engine/session.py``.  Code that builds and
runs a processor directly bypasses the engine -- no result caching,
no process sharding, no run manifests -- so this rule reports a
finding when a *new* file grows a direct construction call site.

Pre-engine call sites are grandfathered in :data:`ALLOWED`: the
core's own unit tests, the micro-workloads that sweep processor
parameters no ``RunRequest`` exposes, and the ablation benchmarks
that construct deliberately misconfigured machines.  Shrinking the
list is progress; growing it needs a reason in review.

``tools/check_entrypoints.py`` is a thin shim over :func:`main`.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.passes import AnalysisContext, analysis_pass

#: Directories scanned for Python call sites.
SCANNED = ("src", "tests", "benchmarks", "examples", "tools")

#: The one directory allowed to construct processors.
ENGINE = "src/repro/engine"

#: Grandfathered files (repo-relative, sorted).  Everything here
#: predates the engine; new simulation code must use Session.
ALLOWED = frozenset({
    # Component microbenchmarks and stream-length sweeps drive the
    # processor with per-run machine variations the catalog does not
    # (and should not) expose.
    "src/repro/workloads/microbench.py",
    "src/repro/workloads/streamlen.py",
    # Core unit tests exercise the processor itself.
    "tests/test_failure_injection.py",
    "tests/test_faults.py",
    "tests/test_observability.py",
    "tests/test_processor.py",
    # Wedges a processor mid-run (hand-built instruction list with a
    # forward dependency) to assert watchdog diagnostics carry the
    # partial critical path; Session only runs well-formed images.
    "tests/test_serve.py",
    "tests/test_timeline_cli.py",
    # Ablation benchmarks simulate deliberately degraded machines.
    "benchmarks/bench_ablation_descriptors.py",
    "benchmarks/bench_ablation_dvfs.py",
    "benchmarks/bench_ablation_microcode.py",
    "benchmarks/bench_ablation_scoreboard.py",
    "benchmarks/bench_ablation_srf_policy.py",
    # Low-level tool-flow walkthrough, kept processor-explicit.
    "examples/molecular_dynamics.py",
})

#: A construction site: the class name followed by an open paren.
#: (A ``class`` statement and bare imports don't match.)
CALL = re.compile(r"\bImagineProcessor\s*\(")

#: Files that legitimately mention the pattern: this module and its
#: standalone shim.
_EXEMPT = ("src/repro/analysis/rules/entrypoints.py",
           "tools/check_entrypoints.py")


def default_root() -> pathlib.Path:
    """The repository root this module is installed under."""
    return pathlib.Path(__file__).resolve().parents[4]


def call_sites(path: pathlib.Path) -> list[int]:
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError):
        return []
    return [lineno for lineno, line in enumerate(text.splitlines(), 1)
            if CALL.search(line)]


def scan(root: pathlib.Path | None = None) -> list[Finding]:
    """All EP001 findings for the tree rooted at ``root``."""
    root = pathlib.Path(root) if root is not None else default_root()
    findings = []
    for top in SCANNED:
        if not (root / top).is_dir():
            continue
        for path in sorted((root / top).rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if (rel.startswith(ENGINE) or rel in ALLOWED
                    or rel in _EXEMPT):
                continue
            for lineno in call_sites(path):
                findings.append(Finding(
                    "EP001", Severity.ERROR, f"{rel}:{lineno}",
                    "direct ImagineProcessor construction outside "
                    "repro/engine/",
                    hint="run simulations through repro.engine."
                         "Session (docs/engine.md), or extend ALLOWED "
                         "in repro/analysis/rules/entrypoints.py with "
                         "a reviewed reason"))
    return findings


@analysis_pass("repo.entrypoints", "repo")
def check_entrypoints(context: AnalysisContext) -> Iterator[Finding]:
    """New direct processor call sites outside the engine."""
    yield from scan(context.scratch.get("repo_root"))


def main(root: pathlib.Path | None = None) -> int:
    """Standalone-script behaviour: print violations, exit 1 if any."""
    findings = scan(root)
    if findings:
        print("direct ImagineProcessor(...) call sites outside "
              "repro/engine/ (use repro.engine.Session; "
              "see docs/engine.md):", file=sys.stderr)
        for finding in findings:
            print(f"  {finding.location}", file=sys.stderr)
        print(f"{len(findings)} new call site(s); run simulations "
              "through the engine or (with a reviewed reason) extend "
              "ALLOWED in repro/analysis/rules/entrypoints.py",
              file=sys.stderr)
        return 1
    print("entry-point discipline OK: ImagineProcessor is only "
          "constructed inside repro/engine/")
    return 0
