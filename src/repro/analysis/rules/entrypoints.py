"""API-discipline rules (EP001/EP002): one sanctioned entry point.

Every simulation is supposed to flow through
:class:`repro.engine.Session`, whose single processor construction
site lives in ``src/repro/engine/``.  Code that builds and runs a
processor directly -- either the event-driven
``ImagineProcessor`` or the vectorized ``VectorProcessor`` --
bypasses the engine: no result caching, no process sharding, no run
manifests, no backend selection.  EP001 reports a finding when a
*new* file grows a direct construction call site.

EP002 keeps the long-removed ``run_app()`` convenience shim from
coming back: it went through a full deprecation cycle and every
caller now goes through the Session API (``docs/api.md``), so any
fresh ``run_app(...)`` call is a finding, with no grandfather list.

Pre-engine EP001 call sites are grandfathered in :data:`ALLOWED`: the
core's own unit tests, the micro-workloads that sweep processor
parameters no ``RunRequest`` exposes, and the ablation benchmarks
that construct deliberately misconfigured machines.  Shrinking the
list is progress; growing it needs a reason in review.

CI and the tier-1 hook drive this family through
``repro lint --select EP`` (the former ``tools/check_entrypoints.py``
shim is gone).
"""

from __future__ import annotations

import pathlib
import re
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.passes import AnalysisContext, analysis_pass

#: Directories scanned for Python call sites.
SCANNED = ("src", "tests", "benchmarks", "examples", "tools")

#: The one directory allowed to construct processors.
ENGINE = "src/repro/engine"

#: Grandfathered files (repo-relative, sorted).  Everything here
#: predates the engine; new simulation code must use Session.
ALLOWED = frozenset({
    # Component microbenchmarks and stream-length sweeps drive the
    # processor with per-run machine variations the catalog does not
    # (and should not) expose.
    "src/repro/workloads/microbench.py",
    "src/repro/workloads/streamlen.py",
    # Core unit tests exercise the processor itself.
    "tests/test_failure_injection.py",
    "tests/test_faults.py",
    "tests/test_observability.py",
    "tests/test_processor.py",
    # Wedges a processor mid-run (hand-built instruction list with a
    # forward dependency) to assert watchdog diagnostics carry the
    # partial critical path; Session only runs well-formed images.
    "tests/test_serve.py",
    "tests/test_timeline_cli.py",
    # Ablation benchmarks simulate deliberately degraded machines.
    "benchmarks/bench_ablation_descriptors.py",
    "benchmarks/bench_ablation_dvfs.py",
    "benchmarks/bench_ablation_microcode.py",
    "benchmarks/bench_ablation_scoreboard.py",
    "benchmarks/bench_ablation_srf_policy.py",
    # Low-level tool-flow walkthrough, kept processor-explicit.
    "examples/molecular_dynamics.py",
})

#: A construction site: either processor class name followed by an
#: open paren.  (Both classes are defined without base-class parens,
#: so ``class`` statements and bare imports don't match.)
CALL = re.compile(r"\b(?:Imagine|Vector)Processor\s*\(")

#: EP002: a call to the removed ``run_app()`` shim.  Prose mentions
#: (docstrings, comments without the paren) stay legal.
RUN_APP = re.compile(r"\brun_app\s*\(")

#: Files that legitimately mention the patterns: this module only.
_EXEMPT = ("src/repro/analysis/rules/entrypoints.py",)


def default_root() -> pathlib.Path:
    """The repository root this module is installed under."""
    return pathlib.Path(__file__).resolve().parents[4]


def call_sites(path: pathlib.Path,
               pattern: re.Pattern = CALL) -> list[int]:
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError):
        return []
    return [lineno for lineno, line in enumerate(text.splitlines(), 1)
            if pattern.search(line)]


def _scanned_files(root: pathlib.Path) -> Iterator[tuple[str,
                                                         pathlib.Path]]:
    for top in SCANNED:
        if not (root / top).is_dir():
            continue
        for path in sorted((root / top).rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in _EXEMPT:
                continue
            yield rel, path


def scan(root: pathlib.Path | None = None) -> list[Finding]:
    """All EP001/EP002 findings for the tree rooted at ``root``."""
    root = pathlib.Path(root) if root is not None else default_root()
    findings = []
    for rel, path in _scanned_files(root):
        if not (rel.startswith(ENGINE) or rel in ALLOWED):
            for lineno in call_sites(path, CALL):
                findings.append(Finding(
                    "EP001", Severity.ERROR, f"{rel}:{lineno}",
                    "direct processor construction outside "
                    "repro/engine/",
                    hint="run simulations through repro.engine."
                         "Session (docs/engine.md), or extend ALLOWED "
                         "in repro/analysis/rules/entrypoints.py with "
                         "a reviewed reason"))
        for lineno in call_sites(path, RUN_APP):
            findings.append(Finding(
                "EP002", Severity.ERROR, f"{rel}:{lineno}",
                "call to the removed run_app() shim",
                hint="build a repro.engine.RunRequest and run it "
                     "through repro.engine.Session (docs/api.md); "
                     "run_app() finished its deprecation cycle and "
                     "must not return"))
    return findings


@analysis_pass("repo.entrypoints", "repo")
def check_entrypoints(context: AnalysisContext) -> Iterator[Finding]:
    """New direct processor call sites outside the engine, plus any
    resurrection of the removed ``run_app()`` shim."""
    yield from scan(context.scratch.get("repo_root"))
