"""Analysis-vs-simulator consistency (CX###), AnICA-style.

The static model and the cycle simulator each predict what one kernel
invocation does -- operation counts, SRF traffic, busy cycles.  This
pass runs every kernel under test through a real
:class:`~repro.engine.Session` simulation and cross-checks the
simulator's :class:`~repro.core.metrics.KernelInvocationRecord`
against predictions derived *only* from the compiled kernel.  A
divergence means one side is wrong -- exactly the class of bug
differential testing surfaces that neither side catches alone.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.passes import AnalysisContext, analysis_pass
from repro.isa.kernel_ir import FuClass
from repro.isa.stream_ops import StreamInstruction, StreamOpType
from repro.isa.vliw import CompiledKernel
from repro.streamc.compiler import StreamProgramImage

#: Main-loop iterations each probe invocation runs per cluster.
PROBE_ITERATIONS = 8


def probe_bundle(kernel: CompiledKernel, num_clusters: int):
    """A minimal runnable image: load microcode, invoke the kernel.

    The image is synthetic (no functional data, no memory traffic), so
    it exercises exactly the quantities the static model predicts.
    """
    from repro.apps.common import AppBundle

    elements = (kernel.elements_per_iteration * num_clusters
                * PROBE_ITERATIONS)
    instructions = [
        StreamInstruction(op=StreamOpType.MICROCODE_LOAD,
                          kernel=kernel.name,
                          words=kernel.microcode_words, index=0),
        StreamInstruction(op=StreamOpType.KERNEL, deps=[0],
                          kernel=kernel.name,
                          stream_elements=elements,
                          tag=kernel.name, index=1),
    ]
    image = StreamProgramImage(
        name=f"lint.{kernel.name}", instructions=instructions,
        kernels={kernel.name: kernel})
    return AppBundle(name=image.name, image=image), elements


#: Backends the probe is differentially replayed on.  The static
#: predictions are checked against the first (reference) backend; the
#: others must reproduce its invocation record exactly.
PROBE_BACKENDS = ("event", "vector")


@analysis_pass("consistency.simulator", "session")
def check_against_simulator(context: AnalysisContext
                            ) -> Iterator[Finding]:
    """Static per-invocation predictions vs simulated metrics."""
    kernel = context.kernel
    session = context.session
    assert kernel is not None and session is not None
    where = context.subject
    machine = context.machine

    bundle, elements = probe_bundle(kernel, machine.num_clusters)
    records_by_backend = {}
    for backend in PROBE_BACKENDS:
        handle = session.submit_bundle(bundle, machine=machine,
                                       backend=backend)
        outcome = handle.outcome()
        if not outcome.completed:
            yield Finding(
                "CX004", Severity.ERROR, where,
                f"probe simulation failed on the {backend} backend: "
                f"{outcome.error_type}: {outcome.error_message}",
                hint="the kernel cannot even run; fix the simulation "
                     "failure before trusting any static prediction")
            return
        records = outcome.result.metrics.kernel_invocations
        if len(records) != 1:
            yield Finding(
                "CX004", Severity.ERROR, where,
                f"probe expected exactly one kernel invocation, "
                f"{backend} backend recorded {len(records)}")
            return
        records_by_backend[backend] = records[0]

    # The differential gate itself: every backend must reproduce the
    # reference invocation record bit-for-bit, so a CX verdict holds
    # regardless of which backend a session happens to select.
    record = records_by_backend[PROBE_BACKENDS[0]]
    reference = vars(record)
    for backend in PROBE_BACKENDS[1:]:
        other = vars(records_by_backend[backend])
        diverged = sorted(field for field in reference
                          if reference[field] != other.get(field))
        if diverged:
            yield Finding(
                "CX005", Severity.ERROR, where,
                f"backend divergence on the probe: {backend} "
                f"disagrees with {PROBE_BACKENDS[0]} on "
                f"{', '.join(diverged)}",
                hint="the vector backend's contract is bit-identity; "
                     "run `repro verify-backend` for the full "
                     "differential report",
                details={field: {"event": reference[field],
                                 backend: other.get(field)}
                         for field in diverged})

    iterations = kernel.iterations_for(elements, machine.num_clusters)
    factor = iterations * machine.num_clusters
    graph = kernel.graph
    counts = {
        "instructions": (kernel.instructions_per_iteration * factor,
                         record.instructions),
        "arith_ops": (kernel.arith_ops_per_iteration * factor,
                      record.arith_ops),
        "flops": (kernel.flops_per_iteration * factor, record.flops),
    }
    for name, (static, simulated) in counts.items():
        if static != simulated:
            yield Finding(
                "CX001", Severity.ERROR, where,
                f"analysis-vs-sim divergence on {name}: static model "
                f"predicts {static}, simulator measured {simulated}",
                details={"quantity": name, "static": static,
                         "simulated": simulated,
                         "iterations": iterations})

    traffic = {
        "srf_words": ((kernel.words_in_per_iteration
                       + kernel.words_out_per_iteration) * factor,
                      record.srf_words),
        "sp_accesses": (kernel.sp_accesses_per_iteration * factor,
                        record.sp_accesses),
        "comm_ops": (kernel.comm_ops_per_iteration * factor,
                     record.comm_ops),
        "dsq_ops": (graph.fu_count(FuClass.DSQ) * factor,
                    record.dsq_ops),
    }
    for name, (static, simulated) in traffic.items():
        if static != simulated:
            yield Finding(
                "CX002", Severity.ERROR, where,
                f"analysis-vs-sim divergence on {name}: static model "
                f"predicts {static}, simulator measured {simulated}",
                details={"quantity": name, "static": static,
                         "simulated": simulated})

    static_busy = (iterations * kernel.ii + kernel.prologue_cycles
                   + kernel.epilogue_cycles
                   + kernel.outer_overhead_cycles)
    if record.busy_cycles != static_busy:
        yield Finding(
            "CX003", Severity.ERROR, where,
            f"analysis-vs-sim divergence on busy cycles: "
            f"II={kernel.ii} over {iterations} iteration(s) plus "
            f"overheads predicts {static_busy}, simulator charged "
            f"{record.busy_cycles}",
            details={"static": static_busy,
                     "simulated": record.busy_cycles,
                     "ii": kernel.ii, "iterations": iterations})
