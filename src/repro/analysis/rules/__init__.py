"""Rule modules for the static verifier.

Importing this package registers every analysis pass with the
framework in :mod:`repro.analysis.passes`.  Rule-id prefixes:

* ``MC###`` -- microcode / VLIW-schedule rules (:mod:`.microcode`);
* ``SP###`` -- stream-program rules (:mod:`.stream`);
* ``CX###`` -- analysis-vs-simulator consistency (:mod:`.consistency`);
* ``EP###`` -- repository entry-point discipline (:mod:`.entrypoints`).

The full catalogue lives in ``docs/analysis.md``.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    consistency,
    entrypoints,
    microcode,
    stream,
)

__all__ = ["consistency", "entrypoints", "microcode", "stream"]
