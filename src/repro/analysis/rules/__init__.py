"""Rule modules for the static verifier.

Importing this package registers every analysis pass with the
framework in :mod:`repro.analysis.passes`.  Rule-id prefixes:

* ``MC###`` -- microcode / VLIW-schedule rules (:mod:`.microcode`);
* ``SP###`` -- stream-program rules (:mod:`.stream`);
* ``CX###`` -- analysis-vs-simulator consistency (:mod:`.consistency`);
* ``EP###`` -- repository entry-point discipline (:mod:`.entrypoints`);
* ``BD###`` / ``ADV###`` -- static cycle-bound model and the
  optimization advisor (:mod:`.advisor`).

The full catalogue lives in ``docs/analysis.md``.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    advisor,
    consistency,
    entrypoints,
    microcode,
    stream,
)

__all__ = ["advisor", "consistency", "entrypoints", "microcode",
           "stream"]
