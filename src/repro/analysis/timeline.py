"""Execution-timeline rendering and per-kernel profiling.

Two post-mortem views over a :class:`~repro.core.RunResult`:

* :func:`render_timeline` -- a text Gantt chart of stream-instruction
  lifetimes (residency in the scoreboard vs. execution), the view the
  paper's authors used to diagnose load/kernel overlap.
* :func:`kernel_profile` -- per-kernel aggregation of invocation
  records (calls, cycles, ops, sustained rate), i.e. Table 2 measured
  *inside* an application run instead of standalone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MachineConfig, RunResult


def render_timeline(result: RunResult, width: int = 72,
                    limit: int = 40,
                    kinds: tuple[str, ...] | None = None) -> str:
    """Text Gantt chart of the first ``limit`` matching instructions.

    ``.`` marks scoreboard residency (issued, waiting), ``=`` marks
    execution.  ``kinds`` filters by instruction category (e.g.
    ``("kernel", "mem_load")``).
    """
    events = [e for e in result.trace
              if kinds is None or e.op in kinds][:limit]
    if not events:
        return "(no matching instructions)"
    span = max(e.finished_at for e in events) or 1.0
    scale = (width - 1) / span

    def column(t: float) -> int:
        return min(width - 1, int(t * scale))

    lines = [f"timeline of {result.name} "
             f"(0 .. {span:.0f} cycles; . = queued, = = executing)"]
    for event in events:
        bar = [" "] * width
        start_col = column(event.started_at)
        # Clamp so every event renders at least one execution cell,
        # even when started_at == finished_at (zero-duration ops) or
        # the columns collapse at this resolution.
        end_col = max(column(event.finished_at), start_col)
        for i in range(column(event.resident_at), start_col):
            bar[i] = "."
        for i in range(start_col, end_col + 1):
            bar[i] = "="
        label = (event.tag or event.kernel or event.op)[:18]
        lines.append(f"{event.index:5d} {event.op[:9]:9s} "
                     f"{label:18s} |{''.join(bar)}|")
    return "\n".join(lines)


@dataclass(frozen=True)
class KernelProfileRow:
    """Per-kernel aggregate over one application run."""

    kernel: str
    invocations: int
    busy_cycles: int
    stall_cycles: int
    arith_ops: int
    flops: int
    share_of_busy: float
    sustained_rate: float
    rate_unit: str


def kernel_profile(result: RunResult,
                   machine: MachineConfig | None = None
                   ) -> list[KernelProfileRow]:
    """Aggregate invocation records by kernel, sorted by time spent."""
    machine = machine or result.metrics.machine
    totals: dict[str, dict] = {}
    for record in result.metrics.kernel_invocations:
        entry = totals.setdefault(record.kernel, {
            "invocations": 0, "busy": 0, "stall": 0,
            "ops": 0, "flops": 0})
        entry["invocations"] += 1
        entry["busy"] += record.busy_cycles
        entry["stall"] += record.stall_cycles
        entry["ops"] += record.arith_ops
        entry["flops"] += record.flops
    all_busy = sum(e["busy"] + e["stall"] for e in totals.values())
    rows = []
    for kernel, entry in totals.items():
        cycles = entry["busy"] + entry["stall"]
        seconds = cycles / machine.clock_hz
        is_float = entry["flops"] >= 0.9 * entry["ops"]
        numerator = entry["flops"] if is_float else entry["ops"]
        rows.append(KernelProfileRow(
            kernel=kernel,
            invocations=entry["invocations"],
            busy_cycles=entry["busy"],
            stall_cycles=entry["stall"],
            arith_ops=entry["ops"],
            flops=entry["flops"],
            share_of_busy=cycles / max(all_busy, 1),
            sustained_rate=numerator / max(seconds, 1e-30) / 1e9,
            rate_unit="GFLOPS" if is_float else "GOPS",
        ))
    rows.sort(key=lambda r: -r.share_of_busy)
    return rows


def render_kernel_profile(result: RunResult) -> str:
    from repro.analysis.report import render_table

    rows = [
        [row.kernel, row.invocations, row.busy_cycles,
         f"{row.share_of_busy * 100:.1f}%",
         f"{row.sustained_rate:.2f} {row.rate_unit}"]
        for row in kernel_profile(result)
    ]
    return render_table(
        f"Kernel profile of {result.name}",
        ["kernel", "calls", "busy cycles", "share", "sustained"],
        rows)
