"""Analysis and reporting: breakdowns, renderers, static verifier.

Alongside the paper-table reporting helpers, this package hosts the
static verifier (``docs/analysis.md``): multi-pass checks over
compiled kernels and stream programs plus a differential consistency
gate against the simulator, surfaced as ``repro lint``, and the
static cycle-bound model (:mod:`repro.analysis.bounds`), surfaced as
``repro bounds``.
"""

from repro.analysis.bounds import (
    BOUNDS_SCHEMA,
    BoundsAnalysis,
    compute_bounds,
)
from repro.analysis.breakdown import (
    KernelRow,
    application_breakdown,
    kernel_breakdown,
    measure_kernel,
)
from repro.analysis.findings import (
    AnalysisError,
    AnalysisReport,
    Finding,
    REPORT_SCHEMA,
    Severity,
)
from repro.analysis.lint import (
    lint_bundle,
    lint_catalog,
    lint_image,
    lint_kernel,
    preflight_image,
)
from repro.analysis.power_compare import power_efficiency_comparison
from repro.analysis.report import render_table
from repro.analysis.timeline import (
    kernel_profile,
    render_kernel_profile,
    render_timeline,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BOUNDS_SCHEMA",
    "BoundsAnalysis",
    "Finding",
    "KernelRow",
    "REPORT_SCHEMA",
    "Severity",
    "application_breakdown",
    "compute_bounds",
    "kernel_breakdown",
    "kernel_profile",
    "lint_bundle",
    "lint_catalog",
    "lint_image",
    "lint_kernel",
    "measure_kernel",
    "power_efficiency_comparison",
    "preflight_image",
    "render_kernel_profile",
    "render_table",
    "render_timeline",
]
