"""Analysis and reporting: breakdowns, table renderers, power study."""

from repro.analysis.breakdown import (
    KernelRow,
    application_breakdown,
    kernel_breakdown,
    measure_kernel,
)
from repro.analysis.power_compare import power_efficiency_comparison
from repro.analysis.report import render_table
from repro.analysis.timeline import (
    kernel_profile,
    render_kernel_profile,
    render_timeline,
)

__all__ = [
    "KernelRow",
    "application_breakdown",
    "kernel_breakdown",
    "measure_kernel",
    "power_efficiency_comparison",
    "render_table",
    "kernel_profile",
    "render_kernel_profile",
    "render_timeline",
]
