"""Fixed-width text table rendering for benchmark output.

Every benchmark prints its table/figure through :func:`render_table`
so the regenerated evaluation reads like the paper's tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 floatfmt: str = "{:.2f}") -> str:
    """Render rows as an aligned monospace table with a title."""
    materialized = [[_format(cell, floatfmt) for cell in row]
                    for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.rjust(w) if _numeric(cell) else cell.ljust(w)
                  for cell, w in zip(row, widths))
        for row in materialized
    ]
    return "\n".join([title, rule, line, rule, *body, rule])


def render_breakdown(title: str,
                     breakdowns: dict[str, dict[str, float]]) -> str:
    """Render named stacked-percentage breakdowns (Figs 6, 11, 14)."""
    categories: list[str] = []
    for fractions in breakdowns.values():
        for key in fractions:
            if key not in categories:
                categories.append(key)
    headers = ["case"] + categories
    rows = [
        [name] + [f"{fractions.get(c, 0.0) * 100:.1f}%"
                  for c in categories]
        for name, fractions in breakdowns.items()
    ]
    return render_table(title, headers, rows)


def _format(cell: object, floatfmt: str) -> str:
    if isinstance(cell, float):
        return floatfmt.format(cell)
    return str(cell)


def _numeric(cell: str) -> bool:
    stripped = cell.rstrip("%x")
    try:
        float(stripped)
    except ValueError:
        return False
    return True
