"""Benchmark output rendering: text tables and JSON run reports.

Every benchmark prints its table/figure through :func:`render_table`
so the regenerated evaluation reads like the paper's tables;
:func:`run_report` is the machine-readable equivalent for one
application run (the ``--json`` CLI surface), documented in
``docs/observability.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.processor import RunResult


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 floatfmt: str = "{:.2f}") -> str:
    """Render rows as an aligned monospace table with a title."""
    materialized = [[_format(cell, floatfmt) for cell in row]
                    for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.rjust(w) if _numeric(cell) else cell.ljust(w)
                  for cell, w in zip(row, widths))
        for row in materialized
    ]
    return "\n".join([title, rule, line, rule, *body, rule])


def render_breakdown(title: str,
                     breakdowns: dict[str, dict[str, float]]) -> str:
    """Render named stacked-percentage breakdowns (Figs 6, 11, 14)."""
    categories: list[str] = []
    for fractions in breakdowns.values():
        for key in fractions:
            if key not in categories:
                categories.append(key)
    headers = ["case"] + categories
    rows = [
        [name] + [f"{fractions.get(c, 0.0) * 100:.1f}%"
                  for c in categories]
        for name, fractions in breakdowns.items()
    ]
    return render_table(title, headers, rows)


def run_report(result: "RunResult", bundle=None) -> dict:
    """Machine-readable report for one finished run.

    The document (schema ``repro.run-report/1``) contains the run
    manifest, a summary block, per-category cycle fractions
    (normalised over attributed cycles, so they sum to exactly 1.0),
    the full counter-registry snapshot with paper-target drift flags,
    the per-kernel profile, and the stream-instruction histogram.
    """
    from repro.analysis.timeline import kernel_profile
    from repro.obs.manifest import REPORT_SCHEMA
    from repro.obs.registry import registry_from_result

    metrics = result.metrics
    registry = registry_from_result(result)
    report = {
        "schema": REPORT_SCHEMA,
        "name": result.name,
        "manifest": (result.manifest.as_dict()
                     if result.manifest is not None else None),
        "summary": {
            "cycles": metrics.total_cycles,
            "seconds": metrics.seconds,
            "gops": metrics.gops,
            "gflops": metrics.gflops,
            "ipc": metrics.ipc,
            "watts": result.power.watts,
            "host_instructions": metrics.host_instructions,
        },
        "cycle_fractions": {
            category.value: fraction
            for category, fraction
            in metrics.attributed_fractions().items()
        },
        "counters": registry.snapshot(),
        "drift": [probe.name for probe in registry.drifted()],
        "instruction_histogram": dict(result.instruction_histogram),
        "kernel_profile": [
            {"kernel": row.kernel,
             "invocations": row.invocations,
             "busy_cycles": row.busy_cycles,
             "stall_cycles": row.stall_cycles,
             "share_of_busy": row.share_of_busy,
             "sustained_rate": row.sustained_rate,
             "rate_unit": row.rate_unit}
            for row in kernel_profile(result)
        ],
    }
    if bundle is not None:
        report["throughput"] = {
            "value": bundle.throughput(result.seconds),
            "unit": f"{bundle.work_name}/s",
        }
    return report


def _format(cell: object, floatfmt: str) -> str:
    if isinstance(cell, float):
        return floatfmt.format(cell)
    return str(cell)


def _numeric(cell: str) -> bool:
    stripped = cell.rstrip("%x")
    try:
        float(stripped)
    except ValueError:
        return False
    return True
