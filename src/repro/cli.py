"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper's evaluation flow from a shell:

* ``microbench`` -- Table 1 component peaks;
* ``kernels``    -- Table 2 kernel rates and the Figure 6 breakdown;
* ``app NAME``   -- run DEPTH / MPEG / QRD / RTSL and print the
  Table-3 summary, Figure-11 breakdown and per-kernel profile;
* ``trace NAME`` -- run one application with the cross-layer tracer
  and export a Chrome/Perfetto ``trace_event`` JSON;
* ``faults NAME`` -- run a degraded-mode resilience campaign under a
  seeded fault plan and emit the resilience report
  (see ``docs/robustness.md``);
* ``memory``     -- Figure 9/10 pattern sweep;
* ``power``      -- the Section 5.5 efficiency comparison;
* ``lint``       -- statically verify every catalog app/kernel and
  cross-check the static model against the simulator
  (``docs/analysis.md``);
* ``profile NAME`` -- hierarchical cycle-accounting profile of one
  run (``repro.profile-report/1``, ``docs/observability.md``);
* ``diff A B``   -- compare two profile reports category by category;
* ``perf``       -- profile the whole catalog, append to the
  perf-history store and flag regressions against a baseline;
* ``serve``      -- the resilient async HTTP/JSON experiment service
  (submit/poll/fetch), or ``--soak`` for the seeded chaos load
  harness (``docs/serving.md``); exposes Prometheus text metrics at
  ``GET /metrics`` and stitched cross-process traces at
  ``GET /v1/jobs/ID/trace``;
* ``slo``        -- pass/fail the SLO block of a soak report
  (availability, error budget, conservation, cold p99;
  ``docs/observability.md``);
* ``verify-backend`` -- byte-compare the event-driven and vectorized
  simulation backends over the app matrix plus a seeded fuzzed
  ``streamc`` corpus, and record the speedup
  (``repro.backend-bench/1``; see ``docs/engine.md``);
* ``bounds``     -- static cycle-bound analysis plus the simulator-
  bracketing gate: assert ``lower <= simulated <= upper`` on both
  backends over the matrix and fuzz corpus, and compare the static
  bottleneck to the dynamic critical path
  (``repro.bounds-verify/1``; see ``docs/analysis.md``);
* ``cache``      -- inspect or LRU-prune the content-addressed
  result cache.

``microbench``, ``kernels``, ``app`` and ``evaluate`` accept
``--json`` for machine-readable reports (see
``docs/observability.md``).

Simulation-backed commands (``app``, ``trace``, ``faults``,
``evaluate``, ``profile``, ``perf``) run through the
:mod:`repro.engine` session: ``--jobs N``
shards independent runs across worker processes, results are served
from the content-addressed cache under ``~/.cache/repro`` (disable
with ``--no-cache``, relocate with ``--cache-dir``), and the engine's
hit/miss counters are printed to stderr.  Output is byte-identical
whatever the job count or cache temperature (``docs/engine.md``).
One shared ``--backend {auto,event,vector}`` flag selects the
simulation backend everywhere a session is built (``app``,
``faults``, ``evaluate``, ``profile``, ``critpath``, ``whatif``,
``perf``, ``serve``); backends are bit-identical by contract, so the
flag changes wall-clock time only.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import BoardConfig


def _session(args):
    from repro.engine import Session, SessionConfig

    config = SessionConfig(
        backend=getattr(args, "backend", "event"),
        jobs=getattr(args, "jobs", 1),
        cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        history=getattr(args, "history", None) or None)
    return Session(config=config)


def _print_engine_stats(session) -> None:
    print(session.stats.describe(session.jobs), file=sys.stderr)


def _app_builders():
    from repro.engine.catalog import app_builders

    return app_builders()


def _cmd_microbench(args) -> int:
    from repro.analysis.report import render_table
    from repro.workloads.microbench import run_all_microbenchmarks

    results = run_all_microbenchmarks(board=_board(args))
    if args.json:
        print(json.dumps({
            "schema": "repro.microbench-report/1",
            "rows": [{"component": r.component,
                      "achieved": r.achieved,
                      "theoretical": r.theoretical,
                      "unit": r.unit,
                      "power_watts": r.power_watts,
                      "efficiency": r.efficiency}
                     for r in results],
        }, indent=2))
        return 0
    rows = [[r.component, r.achieved, r.theoretical, r.unit,
             r.power_watts, f"{r.efficiency * 100:.1f}%"]
            for r in results]
    print(render_table("Table 1: component peaks",
                       ["component", "achieved", "theoretical",
                        "unit", "W", "efficiency"], rows))
    return 0


def _cmd_kernels(args) -> int:
    from repro.analysis import kernel_breakdown, measure_kernel
    from repro.analysis.report import render_breakdown, render_table
    from repro.kernels import KERNEL_LIBRARY
    from repro.kernels.library import TABLE2_KERNELS

    measured = {name: measure_kernel(KERNEL_LIBRARY[name])
                for name in TABLE2_KERNELS}
    if args.json:
        print(json.dumps({
            "schema": "repro.kernels-report/1",
            "rows": [{"kernel": name,
                      "rate": row.rate,
                      "rate_unit": row.rate_unit,
                      "lrf_gbytes": row.lrf_gbytes,
                      "srf_gbytes": row.srf_gbytes,
                      "ipc": row.ipc,
                      "power_watts": row.power_watts,
                      "breakdown": kernel_breakdown(
                          KERNEL_LIBRARY[name])}
                     for name, row in measured.items()],
        }, indent=2))
        return 0
    rows = []
    for name, row in measured.items():
        rows.append([name, f"{row.rate:.2f} {row.rate_unit}",
                     row.lrf_gbytes, row.srf_gbytes,
                     f"{row.ipc:.1f}", row.power_watts])
    print(render_table("Table 2: kernels",
                       ["kernel", "ALU", "LRF GB/s", "SRF GB/s",
                        "IPC", "W"], rows))
    print()
    print(render_breakdown(
        "Figure 6: kernel run-time breakdown",
        {name: kernel_breakdown(KERNEL_LIBRARY[name])
         for name in TABLE2_KERNELS}))
    print()
    from repro.analysis.occupancy import render_occupancy

    print(render_occupancy(
        [KERNEL_LIBRARY[name].compiled() for name in TABLE2_KERNELS]))
    return 0


def _cmd_app(args) -> int:
    from repro.analysis import render_kernel_profile, render_timeline
    from repro.analysis.breakdown import application_breakdown
    from repro.analysis.report import render_breakdown, run_report
    from repro.engine import build_app

    builders = _app_builders()
    name = args.name.lower()
    if name not in builders:
        print(f"unknown application {args.name!r}; "
              f"choose from {sorted(builders)}", file=sys.stderr)
        return 2
    bundle = build_app(name)
    with _session(args) as session:
        result = session.run_bundle(bundle, board=_board(args))
        _print_engine_stats(session)
    if args.json:
        print(json.dumps(run_report(result, bundle=bundle), indent=2))
        return 0
    print(result.summary())
    print(f"throughput: {bundle.throughput(result.seconds):.1f} "
          f"{bundle.work_name}/s")
    print()
    print(render_breakdown(
        "execution-time breakdown",
        {bundle.name: application_breakdown(result)}))
    print()
    print(render_kernel_profile(result))
    if args.timeline:
        print()
        print(render_timeline(result, kinds=("kernel", "restart",
                                             "mem_load", "mem_store")))
    return 0


def _cmd_trace(args) -> int:
    from repro.engine import build_app
    from repro.obs import Tracer, counters_csv, write_chrome_trace

    builders = _app_builders()
    name = args.name.lower()
    if name not in builders:
        print(f"unknown application {args.name!r}; "
              f"choose from {sorted(builders)}", file=sys.stderr)
        return 2
    tracer = Tracer()
    bundle = build_app(name)
    with _session(args) as session:
        result = session.run_bundle(bundle, board=_board(args),
                                    tracer=tracer)
    try:
        document = write_chrome_trace(
            tracer, args.out,
            clock_hz=result.metrics.machine.clock_hz,
            label=f"imagine/{result.name}")
        if args.counters_csv:
            with open(args.counters_csv, "w") as handle:
                handle.write(counters_csv(tracer))
    except OSError as error:
        print(f"cannot write trace: {error}", file=sys.stderr)
        return 2
    print(result.summary())
    print(f"wrote {args.out}: {len(document['traceEvents'])} events "
          f"on {len(tracer.tracks())} tracks "
          f"({', '.join(tracer.tracks())})")
    print("open in https://ui.perfetto.dev or about://tracing")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import BUILTIN_PLANS, FaultPlanError, get_plan
    from repro.faults.campaign import run_campaign

    if args.list_plans:
        for name, plan in sorted(BUILTIN_PLANS.items()):
            kinds = ", ".join(spec.kind.value for spec in plan)
            print(f"{name}: {kinds}")
        return 0
    if not args.name:
        print("missing application name (or use --list-plans)",
              file=sys.stderr)
        return 2
    from repro.engine import build_app

    builders = _app_builders()
    name = args.name.lower()
    if name not in builders:
        print(f"unknown application {args.name!r}; "
              f"choose from {sorted(builders)}", file=sys.stderr)
        return 2
    try:
        plan = get_plan(args.plan)
    except FaultPlanError as error:
        print(f"bad fault plan: {error}", file=sys.stderr)
        print(f"builtin plans: {', '.join(sorted(BUILTIN_PLANS))}",
              file=sys.stderr)
        return 2
    bundle = build_app(name)
    with _session(args) as session:
        report = run_campaign(bundle, plan, trials=args.trials,
                              seed=args.seed, board=_board(args),
                              curves=not args.no_curves,
                              strict=args.strict, session=session)
        _print_engine_stats(session)
    text = json.dumps(report, indent=2)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        except OSError as error:
            print(f"cannot write report: {error}", file=sys.stderr)
            return 2
        completed = sum(row["completed"] for row in report["faults"])
        total = sum(len(row["trials"]) for row in report["faults"])
        print(f"wrote {args.out}: plan {plan.name!r}, "
              f"{completed}/{total} faulted trials completed, "
              f"baseline {report['baseline']['gops']:.2f} GOPS")
    else:
        print(text)
    return 0


def _cmd_memory(args) -> int:
    from repro.analysis.report import render_table
    from repro.workloads.streamlen import (
        MEMORY_PATTERNS,
        memory_length_sweep,
    )

    lengths = [64, 512, 4096]
    points = memory_length_sweep(lengths, args.ags,
                                 board=_board(args))
    table = {name: [] for name in MEMORY_PATTERNS}
    for point in points:
        table[point.pattern].append(point.gbytes_per_sec)
    print(render_table(
        f"Memory bandwidth (GB/s), {args.ags} AG(s)",
        ["pattern"] + [str(n) for n in lengths],
        [[name] + values for name, values in table.items()]))
    return 0


def _cmd_kernel(args) -> int:
    from repro.analysis import kernel_breakdown, measure_kernel
    from repro.analysis.report import render_breakdown
    from repro.kernelc.listing import render_listing
    from repro.kernels import KERNEL_LIBRARY

    if args.name not in KERNEL_LIBRARY:
        print(f"unknown kernel {args.name!r}; available: "
              f"{', '.join(sorted(KERNEL_LIBRARY))}", file=sys.stderr)
        return 2
    spec = KERNEL_LIBRARY[args.name]
    row = measure_kernel(spec)
    print(f"{spec.name}: {spec.description}")
    print(f"sustained {row.rate:.2f} {row.rate_unit}, "
          f"IPC {row.ipc:.1f}, LRF {row.lrf_gbytes:.1f} GB/s, "
          f"SRF {row.srf_gbytes:.2f} GB/s, {row.power_watts:.2f} W")
    print()
    print(render_breakdown("run-time breakdown",
                           {spec.name: kernel_breakdown(spec)}))
    if args.listing:
        print()
        print(render_listing(spec.compiled()))
    return 0


def _cmd_evaluate(args) -> int:
    from repro.evaluation import (
        SECTIONS,
        evaluation_report,
        run_full_evaluation,
    )

    sections = args.sections or None
    if args.list:
        for name in SECTIONS:
            print(name)
        return 0
    unknown = set(sections or []) - set(SECTIONS)
    if unknown:
        print(f"unknown section(s) {sorted(unknown)}; "
              f"choose from {sorted(SECTIONS)}", file=sys.stderr)
        return 2
    board = _board(args)
    with _session(args) as session:
        texts = run_full_evaluation(board=board, sections=sections,
                                    session=session)
        _print_engine_stats(session)
    if args.json or args.out:
        text = json.dumps(evaluation_report(texts, board=board),
                          indent=2)
        if args.out:
            try:
                with open(args.out, "w") as handle:
                    handle.write(text + "\n")
            except OSError as error:
                print(f"cannot write report: {error}", file=sys.stderr)
                return 2
            print(f"wrote {args.out}: {len(texts)} section(s)",
                  file=sys.stderr)
        else:
            print(text)
        return 0
    for text in texts.values():
        print(text)
        print()
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import lint_catalog

    select = {family.upper() for family in args.select} \
        if args.select else None
    report = lint_catalog(consistency=not args.no_consistency,
                          repo=args.repo, select=select)
    as_json = args.json or args.format == "json"
    if as_json or args.out:
        text = report.to_json()
        if args.out:
            try:
                with open(args.out, "w") as handle:
                    handle.write(text + "\n")
            except OSError as error:
                print(f"cannot write report: {error}", file=sys.stderr)
                return 2
            print(f"wrote {args.out}: {len(report.errors)} error(s), "
                  f"{len(report.warnings)} warning(s)",
                  file=sys.stderr)
        else:
            print(text)
    else:
        print(report.render())
    return report.exit_code


def _cmd_power(args) -> int:
    from repro.analysis import power_efficiency_comparison
    from repro.analysis.report import render_table

    rows = [[r.processor, r.pj_per_flop, r.technology]
            for r in power_efficiency_comparison(board=_board(args))]
    print(render_table("Power efficiency", ["processor", "pJ/FLOP",
                                            "technology"], rows,
                       floatfmt="{:.1f}"))
    return 0


def _cmd_profile(args) -> int:
    from repro.engine import RunRequest
    from repro.engine.catalog import APP_NAMES
    from repro.obs.profile import (
        build_profile,
        render_profile,
        validate_profile,
    )

    name = args.name.lower()
    if name not in APP_NAMES:
        print(f"unknown application {args.name!r}; "
              f"choose from {sorted(APP_NAMES)}", file=sys.stderr)
        return 2
    with _session(args) as session:
        result = session.run(RunRequest.for_app(name,
                                                board=_board(args)))
        _print_engine_stats(session)
    profile = build_profile(result)
    validate_profile(profile)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(json.dumps(profile, indent=2) + "\n")
        except OSError as error:
            print(f"cannot write profile: {error}", file=sys.stderr)
            return 2
        print(f"wrote {args.out}: "
              f"{len(profile['components'])} components, "
              f"{len(profile['kernels'])} kernels")
    elif args.json:
        print(json.dumps(profile, indent=2))
    else:
        print(render_profile(profile))
    return 0


def _cmd_critpath(args) -> int:
    from repro.engine import RunRequest
    from repro.engine.catalog import APP_NAMES
    from repro.obs.critpath import (
        render_critpath,
        validate_critpath,
    )

    name = args.name.lower()
    if name not in APP_NAMES:
        print(f"unknown application {args.name!r}; "
              f"choose from {sorted(APP_NAMES)}", file=sys.stderr)
        return 2
    with _session(args) as session:
        report = session.critpath(
            RunRequest.for_app(name, board=_board(args)))
        _print_engine_stats(session)
    validate_critpath(report)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(json.dumps(report, indent=2) + "\n")
        except OSError as error:
            print(f"cannot write critpath report: {error}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}: {len(report['segments'])} "
              f"segments, binding resource "
              f"{report['top_resources'][0]['resource']}")
    elif args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_critpath(report))
    return 0


def _cmd_whatif(args) -> int:
    from repro.engine import RunRequest
    from repro.engine.catalog import APP_NAMES
    from repro.obs.critpath import (
        CritpathError,
        parse_scales,
        render_whatif,
    )

    name = args.name.lower()
    if name not in APP_NAMES:
        print(f"unknown application {args.name!r}; "
              f"choose from {sorted(APP_NAMES)}", file=sys.stderr)
        return 2
    try:
        scales = parse_scales(args.scale)
    except CritpathError as error:
        print(f"bad --scale: {error}", file=sys.stderr)
        return 2
    with _session(args) as session:
        try:
            report = session.whatif(
                RunRequest.for_app(name, board=_board(args)),
                scales, validate=args.validate)
        except CritpathError as error:
            print(f"cannot project: {error}", file=sys.stderr)
            return 2
        _print_engine_stats(session)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(json.dumps(report, indent=2) + "\n")
        except OSError as error:
            print(f"cannot write whatif report: {error}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}: predicted speedup "
              f"{report['predicted_speedup']:.2f}x")
    elif args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_whatif(report))
    return 0


def _cmd_diff(args) -> int:
    from repro.obs.diff import diff_profiles, render_diff
    from repro.obs.profile import ProfileError

    profiles = []
    for path in (args.a, args.b):
        try:
            with open(path) as handle:
                profiles.append(json.load(handle))
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read profile {path!r}: {error}",
                  file=sys.stderr)
            return 2
    try:
        diff = diff_profiles(profiles[0], profiles[1],
                             threshold=args.threshold)
    except ProfileError as error:
        print(f"bad profile: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(render_diff(diff))
    if args.fail_on_regression and diff["regression"]:
        return 1
    return 0


def _cmd_perf(args) -> int:
    from repro.engine import RunRequest
    from repro.engine.catalog import APP_NAMES
    from repro.obs.critpath import build_critpath
    from repro.obs.profile import build_profile, validate_profile

    apps = [name.lower() for name in (args.apps or APP_NAMES)]
    unknown = set(apps) - set(APP_NAMES)
    if unknown:
        print(f"unknown application(s) {sorted(unknown)}; "
              f"choose from {sorted(APP_NAMES)}", file=sys.stderr)
        return 2
    modes = args.boards or ["hardware", "isim"]
    boards = {"hardware": BoardConfig.hardware(),
              "isim": BoardConfig.isim()}

    document = {"schema": "repro.bench-profile/1", "apps": {}}
    # Critical-path facts for the reference board only: which
    # resource binds each app, with how much slack.
    reference_mode = "hardware" if "hardware" in modes else modes[0]
    critpath_document = {"schema": "repro.bench-critpath/1",
                         "board_mode": reference_mode, "apps": {}}
    with _session(args) as session:
        handles = {(app, mode): session.submit(
                       RunRequest.for_app(app, board=boards[mode]))
                   for app in apps for mode in modes}
        for app in apps:
            rows = {}
            for mode in modes:
                result = handles[(app, mode)].result()
                profile = build_profile(result)
                validate_profile(profile)
                if mode == reference_mode:
                    report = build_critpath(result)
                    critpath_document["apps"][app.upper()] = {
                        "binding_resources": report["top_resources"],
                        "path_cycles": report["path_cycles"],
                        "conservation_ok":
                            report["checks"]["conservation"]["ok"],
                    }
                # Deterministic summary only: wall-clock and engine
                # counters live in the history store, never here, so
                # the document is byte-identical across --jobs and
                # cache temperature.
                rows[mode] = {
                    "request_digest": profile["request_digest"],
                    "cycles": profile["total_cycles"],
                    "gops": profile["summary"]["gops"],
                    "gflops": profile["summary"]["gflops"],
                    "watts": profile["summary"]["watts"],
                    "busy_fraction":
                        profile["summary"]["busy_fraction"],
                    "stall_fraction":
                        profile["summary"]["stall_fraction"],
                    "idle_fraction":
                        profile["summary"]["idle_fraction"],
                    "stall_cycles": dict(
                        profile["components"]["clusters"]["stall"]),
                }
            document["apps"][app.upper()] = rows
        _print_engine_stats(session)

    text = json.dumps(document, indent=2)
    try:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    except OSError as error:
        print(f"cannot write {args.out!r}: {error}", file=sys.stderr)
        return 2
    print(f"wrote {args.out}: {len(apps)} app(s) x "
          f"{len(modes)} board(s)"
          + (f"; history -> {args.history}" if args.history else ""))

    if args.critpath_out:
        try:
            with open(args.critpath_out, "w") as handle:
                handle.write(json.dumps(critpath_document, indent=2)
                             + "\n")
        except OSError as error:
            print(f"cannot write {args.critpath_out!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.critpath_out}: binding resources on "
              f"{reference_mode}")

    if not args.baseline:
        return 0
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read baseline {args.baseline!r}: {error}",
              file=sys.stderr)
        return 2
    regressions = []
    for app, rows in document["apps"].items():
        for mode, row in rows.items():
            base = baseline.get("apps", {}).get(app, {}).get(mode)
            if base is None or not base.get("cycles"):
                continue
            slowdown = row["cycles"] / base["cycles"] - 1.0
            marker = "REGRESSION" if slowdown > args.tolerance else "ok"
            print(f"{app}/{mode}: {base['cycles']:.0f} -> "
                  f"{row['cycles']:.0f} cycles "
                  f"({slowdown * 100:+.2f}%) {marker}")
            if slowdown > args.tolerance:
                regressions.append((app, mode, slowdown))
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.tolerance * 100:.0f}% vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"no regressions beyond {args.tolerance * 100:.0f}% "
          f"vs {args.baseline}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import (
        ChaosMonkey,
        ExperimentService,
        ServiceConfig,
        ServiceServer,
        get_chaos_plan,
    )
    from repro.serve.chaos import ChaosPlanError

    try:
        plan = get_chaos_plan(args.chaos).with_seed(args.seed)
    except ChaosPlanError as error:
        print(f"bad chaos plan: {error}", file=sys.stderr)
        return 2

    if args.soak:
        from repro.serve.load import run_soak, soak_report_bytes

        report = asyncio.run(run_soak(
            seed=args.seed, requests=args.soak,
            cold_digests=args.cold_digests,
            concurrency=args.concurrency, chaos=args.chaos,
            data_dir=args.data_dir, workers=args.workers,
            history=args.history or None,
            metrics_out=args.metrics_out or None,
            trace_out=args.trace_out or None))
        data = soak_report_bytes(report)
        invariants = report["invariants"]
        if args.report:
            try:
                with open(args.report, "wb") as handle:
                    handle.write(data)
            except OSError as error:
                print(f"cannot write report: {error}", file=sys.stderr)
                return 2
            print(f"wrote {args.report}: {args.soak} requests, "
                  f"plan {args.chaos!r}, "
                  f"{invariants['accepted_jobs']} accepted, "
                  f"lost={not invariants['no_lost_jobs']}, "
                  f"wrong_digest="
                  f"{invariants['wrong_digest_serves']}")
        else:
            sys.stdout.write(data.decode())
        healthy = (invariants["no_lost_jobs"]
                   and invariants["digest_integrity"])
        return 0 if healthy else 1

    config = ServiceConfig(data_dir=args.data_dir,
                           cache_dir=args.cache_dir,
                           workers=args.workers,
                           queue_limit=args.queue_limit,
                           history=args.history or None,
                           backend=args.backend,
                           trace_jobs=args.trace_jobs)
    service = ExperimentService(config, chaos=ChaosMonkey(plan))
    access_log = None
    if args.log_json:
        def access_log(entry: dict) -> None:
            json.dump(entry, sys.stdout, sort_keys=True)
            sys.stdout.write("\n")
            sys.stdout.flush()
    server = ServiceServer(service, host=args.host, port=args.port,
                           access_log=access_log)

    async def _serve() -> None:
        await server.start()
        print(f"serving on http://{server.host}:{server.port} "
              f"(data {service.data_dir}, {config.workers} workers"
              + (f", chaos plan {plan.name!r}" if plan.faults else "")
              + ")", file=sys.stderr)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_slo(args) -> int:
    from repro.serve.slo import SloError, evaluate_slo, render_slo

    try:
        with open(args.report) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read report: {error}", file=sys.stderr)
        return 2
    try:
        verdict = evaluate_slo(report,
                               availability=args.availability,
                               p99_ms=args.p99_ms)
    except SloError as error:
        print(f"bad report: {error}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(verdict, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(render_slo(verdict))
    return 0 if verdict["pass"] else 1


def _cmd_verify_backend(args) -> int:
    from repro.engine.catalog import APP_NAMES
    from repro.engine.verify import (
        BOARD_MODES,
        backend_bench_entries,
        verify_backends,
    )
    from repro.obs.history import append_entries

    apps = [name.lower() for name in (args.apps or APP_NAMES)]
    unknown = set(apps) - set(APP_NAMES)
    if unknown:
        print(f"unknown application(s) {sorted(unknown)}; "
              f"choose from {sorted(APP_NAMES)}", file=sys.stderr)
        return 2
    report = verify_backends(
        apps=apps, boards=args.boards or BOARD_MODES,
        best_of=args.best_of, fuzz=args.fuzz, fuzz_seed=args.seed,
        progress=lambda message: print(message, file=sys.stderr))

    text = json.dumps(report, indent=2)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        except OSError as error:
            print(f"cannot write {args.out!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json or not args.out:
        print(text)
    if args.history:
        written = append_entries(args.history,
                                 backend_bench_entries(report))
        print(f"history -> {args.history}: {written} line(s)",
              file=sys.stderr)

    aggregate = report["aggregate"]["speedup"]
    verdict = (f"{'IDENTICAL' if report['ok'] else 'MISMATCH'}: "
               f"{len(report['matrix'])} matrix cell(s), "
               f"{report['fuzz']['count']} fuzz program(s); "
               f"aggregate vector speedup {aggregate:.1f}x")
    print(verdict, file=sys.stderr)
    if not report["ok"]:
        return 1
    if args.min_speedup is not None and aggregate < args.min_speedup:
        print(f"aggregate speedup {aggregate:.2f}x is below the "
              f"--min-speedup {args.min_speedup:.2f}x floor",
              file=sys.stderr)
        return 1
    return 0


def _cmd_bounds(args) -> int:
    from repro.engine.bounds_gate import (
        bounds_bench_entries,
        verify_bounds,
    )
    from repro.engine.catalog import APP_NAMES
    from repro.engine.session import Session, SessionConfig
    from repro.engine.verify import BOARD_MODES
    from repro.obs.history import append_entries

    apps = [name.lower() for name in (args.apps or APP_NAMES)]
    unknown = set(apps) - set(APP_NAMES)
    if unknown:
        print(f"unknown application(s) {sorted(unknown)}; "
              f"choose from {sorted(APP_NAMES)}", file=sys.stderr)
        return 2
    # Uncached on purpose: the gate exists to bracket *fresh*
    # simulations; replaying a cached result would re-assert a verdict
    # instead of re-earning it.  Job count must not change a byte of
    # the report (CI compares --jobs 1 vs 4).
    session = Session(config=SessionConfig(jobs=args.jobs,
                                           cache=False))
    try:
        report = verify_bounds(
            apps=apps, boards=args.boards or BOARD_MODES,
            fuzz=args.fuzz, fuzz_seed=args.seed, session=session,
            progress=lambda message: print(message, file=sys.stderr))
    finally:
        session.close()

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        except OSError as error:
            print(f"cannot write {args.out!r}: {error}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json or not args.out:
        print(text)
    if args.history:
        written = append_entries(args.history,
                                 bounds_bench_entries(report))
        print(f"history -> {args.history}: {written} line(s)",
              file=sys.stderr)

    aggregate = report["aggregate"]
    verdict = (f"{'BRACKETED' if report['ok'] else 'BRACKET FAILURE'}"
               f": {len(report['matrix'])} matrix cell(s), "
               f"{report['fuzz']['count']} fuzz program(s); "
               f"mean tightness {aggregate['mean_tightness']:.3f}, "
               f"bottleneck match {report['bottleneck_matches']}/"
               f"{report['bottleneck_cells']}, "
               f"{len(report['discrepancy_seeds'])} discrepancy "
               f"seed(s)")
    print(verdict, file=sys.stderr)
    status = 0
    if not report["ok"]:
        status = 1
    if (args.max_mean_tightness is not None
            and aggregate["mean_tightness"] > args.max_mean_tightness):
        print(f"mean lower-bound tightness "
              f"{aggregate['mean_tightness']:.3f} exceeds the "
              f"--max-mean-tightness {args.max_mean_tightness:.3f} "
              f"ceiling", file=sys.stderr)
        status = 1
    if (args.min_bottleneck_matches is not None
            and report["bottleneck_matches"]
            < args.min_bottleneck_matches):
        print(f"static bottleneck matched the dynamic binding "
              f"resource on only {report['bottleneck_matches']} of "
              f"{report['bottleneck_cells']} cell(s); "
              f"--min-bottleneck-matches requires "
              f"{args.min_bottleneck_matches}", file=sys.stderr)
        status = 1
    return status


def _cmd_cache(args) -> int:
    from repro.engine.cache import ResultCache

    cache = ResultCache(args.cache_dir, max_bytes=args.max_bytes)
    if args.prune:
        report = cache.prune(args.max_bytes)
        print(f"{cache.root}: evicted {report['evicted']} entries "
              f"({report['freed']} bytes); {report['entries']} "
              f"entries / {report['bytes']} bytes remain"
              + (f" (budget {report['max_bytes']})"
                 if report["max_bytes"] is not None else ""))
        return 0
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    budget = (f"{stats['max_bytes']}" if stats["max_bytes"] is not None
              else "unbounded")
    print(f"{stats['root']}: {stats['entries']} entries, "
          f"{stats['bytes']} bytes (budget {budget}"
          + (", OVER BUDGET" if stats["over_budget"] else "") + ")")
    return 0


def _board(args) -> BoardConfig:
    board = (BoardConfig.isim() if getattr(args, "isim", False)
             else BoardConfig.hardware())
    if getattr(args, "host_mips", None):
        board = board.with_host_mips(args.host_mips)
    return board


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Imagine stream-architecture evaluation, "
                    "reproduced (ISCA 2004)")
    parser.add_argument("--isim", action="store_true",
                        help="use the cycle-accurate-simulator model "
                             "instead of the development board")
    parser.add_argument("--host-mips", type=float, default=None,
                        help="override host-interface bandwidth")
    # One backend flag, shared by every session-building command
    # (serve cannot reuse engine_opts -- it has its own --cache-dir /
    # --history -- so the backend selector lives in its own parent).
    backend_opts = argparse.ArgumentParser(add_help=False)
    backend_opts.add_argument(
        "--backend", default="event",
        choices=("auto", "event", "vector"),
        help="simulation backend: the event-driven reference model, "
             "the vectorized steady-state model, or auto (vector "
             "whenever the run qualifies; bit-identical either way "
             "-- see docs/engine.md)")
    engine_opts = argparse.ArgumentParser(add_help=False,
                                          parents=[backend_opts])
    engine_opts.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes for independent "
                                  "simulations (default 1; output is "
                                  "byte-identical at any job count)")
    engine_opts.add_argument("--no-cache", action="store_true",
                             help="bypass the content-addressed "
                                  "result cache")
    engine_opts.add_argument("--cache-dir", default=None, metavar="DIR",
                             help="result-cache root (default "
                                  "~/.cache/repro)")
    engine_opts.add_argument("--history", default=None, metavar="PATH",
                             help="append per-run profile summaries "
                                  "to this perf-history JSONL store "
                                  "(deduplicated by request digest)")
    sub = parser.add_subparsers(dest="command", required=True)

    microbench = sub.add_parser("microbench",
                                help="Table 1 component peaks")
    microbench.add_argument("--json", action="store_true",
                            help="emit a machine-readable report")
    kernels = sub.add_parser("kernels", help="Table 2 + Figure 6")
    kernels.add_argument("--json", action="store_true",
                         help="emit a machine-readable report")
    app = sub.add_parser("app", help="run one application",
                         parents=[engine_opts])
    app.add_argument("name", help="depth | mpeg | qrd | rtsl")
    app.add_argument("--timeline", action="store_true",
                     help="print the instruction timeline")
    app.add_argument("--json", action="store_true",
                     help="emit the machine-readable run report "
                          "(manifest + counter registry)")
    trace = sub.add_parser(
        "trace", help="run one application with the cross-layer "
                      "tracer and export a Chrome/Perfetto trace")
    trace.add_argument("name", help="depth | mpeg | qrd | rtsl")
    trace.add_argument("--out", required=True,
                       help="output path for the trace-event JSON")
    trace.add_argument("--counters-csv", default=None,
                       help="also dump counter samples as CSV")
    faults = sub.add_parser(
        "faults", help="run a degraded-mode resilience campaign "
                       "under a seeded fault plan",
        parents=[engine_opts])
    faults.add_argument("name", nargs="?", default=None,
                        help="depth | mpeg | qrd | rtsl")
    faults.add_argument("--plan", default="board",
                        help="builtin plan name or JSON plan file "
                             "(see --list-plans)")
    faults.add_argument("--trials", type=int, default=3,
                        help="seeded runs per fault (default 3)")
    faults.add_argument("--seed", type=int, default=0,
                        help="campaign seed; same seed => "
                             "byte-identical report")
    faults.add_argument("--out", default=None,
                        help="write the JSON resilience report here "
                             "instead of stdout")
    faults.add_argument("--no-curves", action="store_true",
                        help="skip the GOPS-vs-channels/clusters "
                             "degradation sweeps")
    faults.add_argument("--strict", action="store_true",
                        help="enforce runtime invariants during "
                             "every run")
    faults.add_argument("--list-plans", action="store_true",
                        help="list builtin fault plans and exit")
    lint = sub.add_parser(
        "lint", help="statically verify every catalog app and kernel "
                     "(microcode, stream program, analysis-vs-sim "
                     "consistency; see docs/analysis.md)")
    lint.add_argument("--json", action="store_true",
                      help="emit the deterministic "
                           "repro.analysis-report/1 JSON "
                           "(alias for --format json)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="output format: human-readable text "
                           "(default) or the deterministic "
                           "repro.analysis-report/1 JSON, findings "
                           "sorted by rule id then location so CI "
                           "can diff byte-for-byte")
    lint.add_argument("--out", default=None, metavar="PATH",
                      help="write the JSON report to PATH "
                           "(implies --format json)")
    lint.add_argument("--no-consistency", action="store_true",
                      help="skip the simulator consistency pass "
                           "(no simulations are run)")
    lint.add_argument("--repo", action="store_true",
                      help="also run repository-scope rules "
                           "(entry-point discipline)")
    lint.add_argument("--select", nargs="*", default=None,
                      metavar="FAMILY",
                      help="restrict to rule families (MC SP BD ADV "
                           "CX EP); scopes that cannot produce a "
                           "selected family are skipped entirely, so "
                           "`--select EP` runs only the repository "
                           "rules without compiling anything")
    memory = sub.add_parser("memory", help="Figure 9/10 sweep")
    memory.add_argument("--ags", type=int, default=1, choices=(1, 2))
    sub.add_parser("power", help="Section 5.5 comparison")
    kernel = sub.add_parser("kernel", help="inspect one kernel")
    kernel.add_argument("name")
    kernel.add_argument("--listing", action="store_true",
                        help="print the VLIW microcode listing")
    evaluate = sub.add_parser(
        "evaluate", help="regenerate the paper's whole evaluation",
        parents=[engine_opts])
    evaluate.add_argument("sections", nargs="*",
                          help="subset of sections (default: all)")
    evaluate.add_argument("--list", action="store_true",
                          help="list available sections")
    evaluate.add_argument("--json", action="store_true",
                          help="emit the deterministic JSON report "
                               "instead of text")
    evaluate.add_argument("--out", default=None, metavar="PATH",
                          help="write the JSON report to PATH "
                               "(implies --json)")
    profile = sub.add_parser(
        "profile", help="run one application and emit its "
                        "hierarchical cycle-accounting profile "
                        "(repro.profile-report/1)",
        parents=[engine_opts])
    profile.add_argument("name", help="depth | mpeg | qrd | rtsl")
    profile.add_argument("--json", action="store_true",
                         help="emit the JSON report instead of text")
    profile.add_argument("--out", default=None, metavar="PATH",
                         help="write the JSON report to PATH")
    critpath = sub.add_parser(
        "critpath", help="run one application and extract the "
                         "critical path through its recorded event "
                         "DAG (repro.critpath-report/1)",
        parents=[engine_opts])
    critpath.add_argument("name", help="depth | mpeg | qrd | rtsl")
    critpath.add_argument("--json", action="store_true",
                          help="emit the JSON report instead of text")
    critpath.add_argument("--out", default=None, metavar="PATH",
                          help="write the JSON report to PATH")
    whatif = sub.add_parser(
        "whatif", help="predict the speedup of scaling a resource by "
                       "replaying the recorded event DAG "
                       "(repro.whatif-report/1)",
        parents=[engine_opts])
    whatif.add_argument("name", help="depth | mpeg | qrd | rtsl")
    whatif.add_argument("--scale", required=True, metavar="SPEC",
                        help="comma-separated NAME=FACTOR scalings, "
                             "e.g. dram=2x,ags=3 (resources: dram, "
                             "ags, host, microcode, srf, clusters)")
    whatif.add_argument("--validate", action="store_true",
                        help="also rerun the simulator with the "
                             "corresponding config change and report "
                             "prediction error")
    whatif.add_argument("--json", action="store_true",
                        help="emit the JSON report instead of text")
    whatif.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report to PATH")
    diff = sub.add_parser(
        "diff", help="compare two profile reports category by "
                     "category (repro.profile-diff/1)")
    diff.add_argument("a", help="baseline profile JSON")
    diff.add_argument("b", help="candidate profile JSON")
    diff.add_argument("--threshold", type=float, default=0.02,
                      help="relative-delta significance threshold "
                           "(default 0.02)")
    diff.add_argument("--json", action="store_true",
                      help="emit the JSON diff instead of text")
    diff.add_argument("--fail-on-regression", action="store_true",
                      help="exit 1 when B's total cycles regress "
                           "beyond the threshold")
    perf = sub.add_parser(
        "perf", help="profile the app catalog, append to the "
                     "perf-history store and write "
                     "BENCH_profile.json; --baseline flags "
                     "regressions",
        parents=[engine_opts])
    perf.add_argument("--apps", nargs="*", default=None,
                      metavar="NAME",
                      help="subset of applications (default: all)")
    perf.add_argument("--boards", nargs="*", default=None,
                      choices=("hardware", "isim"),
                      help="board models to sweep (default: both)")
    perf.add_argument("--out", default="BENCH_profile.json",
                      metavar="PATH",
                      help="bench-profile document path "
                           "(default BENCH_profile.json)")
    perf.add_argument("--baseline", default=None, metavar="PATH",
                      help="compare against this earlier "
                           "BENCH_profile.json; exit 1 on any "
                           "slowdown beyond --tolerance")
    perf.add_argument("--tolerance", type=float, default=0.02,
                      help="slowdown tolerance vs the baseline "
                           "(default 0.02)")
    perf.add_argument("--critpath-out",
                      default="BENCH_critpath.json", metavar="PATH",
                      help="bench-critpath document path (top-3 "
                           "binding resources + slack per app on the "
                           "reference board; empty string disables)")
    perf.set_defaults(history="benchmarks/results/history.jsonl")
    serve = sub.add_parser(
        "serve", help="run the async experiment service (HTTP/JSON "
                      "submit/poll/fetch over the engine), or with "
                      "--soak drive it through the seeded chaos "
                      "load harness (docs/serving.md)",
        parents=[backend_opts])
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port (default 8321; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="engine worker threads (default 2)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="max queued+running jobs before 429 "
                            "backpressure (default 64)")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="journal + artifact root (default: a "
                            "fresh temp dir)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="engine result-cache root (default "
                            "<data-dir>/engine-cache)")
    serve.add_argument("--chaos", default="none", metavar="PLAN",
                       help="chaos plan: none | ci-soak | full | a "
                            ".json plan file (default none)")
    serve.add_argument("--seed", type=int, default=0,
                       help="chaos/soak seed; same seed => "
                            "byte-identical soak report")
    serve.add_argument("--soak", type=int, default=0, metavar="N",
                       help="run the load harness with N seeded "
                            "requests instead of serving, then exit "
                            "non-zero if any invariant failed")
    serve.add_argument("--cold-digests", type=int, default=4,
                       help="distinct request digests in the soak "
                            "mix (default 4)")
    serve.add_argument("--concurrency", type=int, default=8,
                       help="soak client concurrency (default 8)")
    serve.add_argument("--report", default=None, metavar="PATH",
                       help="write the repro.soak-report/1 here "
                            "instead of stdout")
    serve.add_argument("--history", default=None, metavar="PATH",
                       help="append repro.serve-load/1 "
                            "latency/throughput percentiles to this "
                            "perf-history store")
    serve.add_argument("--log-json", action="store_true",
                       help="emit one structured JSON access-log "
                            "line per HTTP request on stdout")
    serve.add_argument("--trace-jobs", type=int, default=0,
                       metavar="N",
                       help="trace the first N executions end to "
                            "end; fetch the stitched Perfetto "
                            "document at GET /v1/jobs/ID/trace "
                            "(default 0 = off)")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="with --soak: save a mid-soak /metrics "
                            "scrape to PATH.mid and the final "
                            "post-drain scrape to PATH")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="with --soak: trace one execution and "
                            "write the stitched cross-process "
                            "Chrome trace here")
    slo = sub.add_parser(
        "slo",
        help="evaluate the SLO block of a repro.soak-report/1: "
             "conservation, availability, error budget and cold-p99 "
             "against the declared objectives; exit 1 on violation")
    slo.add_argument("report", help="soak report JSON path")
    slo.add_argument("--availability", type=float, default=None,
                     metavar="RATIO",
                     help="override the availability target "
                          "(e.g. 0.999)")
    slo.add_argument("--p99-ms", type=float, default=None,
                     metavar="MS",
                     help="override the cold-path p99 bound")
    slo.add_argument("--json", action="store_true",
                     help="emit the repro.serve-slo/1 verdict as "
                          "JSON instead of text")
    verify_backend = sub.add_parser(
        "verify-backend",
        help="byte-compare the event and vector backends over the "
             "app matrix + a seeded fuzzed streamc corpus, and "
             "record the measured speedup (repro.backend-bench/1)")
    verify_backend.add_argument("--apps", nargs="*", default=None,
                                metavar="NAME",
                                help="subset of applications "
                                     "(default: all)")
    verify_backend.add_argument("--boards", nargs="*", default=None,
                                choices=("hardware", "isim"),
                                help="board models to sweep "
                                     "(default: both)")
    verify_backend.add_argument("--best-of", type=int, default=3,
                                metavar="N",
                                help="timing repetitions per cell; "
                                     "the minimum is recorded "
                                     "(default 3)")
    verify_backend.add_argument("--fuzz", type=int, default=8,
                                metavar="N",
                                help="seeded random streamc programs "
                                     "to differentially test "
                                     "(default 8; 0 disables)")
    verify_backend.add_argument("--seed", type=int, default=0,
                                help="fuzz-corpus seed; same seed => "
                                     "same corpus (default 0)")
    verify_backend.add_argument("--min-speedup", type=float,
                                default=None, metavar="X",
                                help="also fail unless the aggregate "
                                     "vector speedup is at least X "
                                     "(the recorded target is 10x; "
                                     "CI asserts only > 1)")
    verify_backend.add_argument("--out", default=None, metavar="PATH",
                                help="write the "
                                     "repro.backend-verify/1 report "
                                     "here")
    verify_backend.add_argument("--json", action="store_true",
                                help="emit the JSON report on stdout")
    verify_backend.add_argument("--history", default=None,
                                metavar="PATH",
                                help="append repro.backend-bench/1 "
                                     "speedup lines to this "
                                     "perf-history store")
    bounds = sub.add_parser(
        "bounds",
        help="static cycle-bound analysis + simulator-bracketing "
             "gate: assert lower <= simulated <= upper on both "
             "backends over the app matrix and a fuzzed corpus "
             "(repro.bounds-verify/1; see docs/analysis.md)")
    bounds.add_argument("--apps", nargs="*", default=None,
                        metavar="NAME",
                        help="subset of applications (default: all)")
    bounds.add_argument("--boards", nargs="*", default=None,
                        choices=("hardware", "isim"),
                        help="board models to sweep (default: both)")
    bounds.add_argument("--fuzz", type=int, default=100, metavar="N",
                        help="seeded random streamc programs to "
                             "bracket on both backends "
                             "(default 100; 0 disables)")
    bounds.add_argument("--seed", type=int, default=0,
                        help="fuzz-corpus seed; same seed => "
                             "same corpus (default 0)")
    bounds.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1; the "
                             "report is byte-identical at any job "
                             "count)")
    bounds.add_argument("--max-mean-tightness", type=float,
                        default=None, metavar="X",
                        help="also fail when mean simulated/lower "
                             "over the matrix exceeds X (the paper-"
                             "matrix target is 1.5)")
    bounds.add_argument("--min-bottleneck-matches", type=int,
                        default=None, metavar="N",
                        help="also fail unless the static bottleneck "
                             "matches the dynamic critpath binding "
                             "resource on at least N matrix cells "
                             "(the paper-matrix target is 6 of 8)")
    bounds.add_argument("--out", default=None, metavar="PATH",
                        help="write the repro.bounds-verify/1 "
                             "report here")
    bounds.add_argument("--json", action="store_true",
                        help="emit the JSON report on stdout")
    bounds.add_argument("--history", default=None, metavar="PATH",
                        help="append repro.bounds-bench/1 tightness "
                             "lines to this perf-history store")
    cache = sub.add_parser(
        "cache", help="inspect or prune the content-addressed "
                      "result cache (LRU eviction; "
                      "REPRO_CACHE_MAX_BYTES sets the budget)")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache root (default ~/.cache/repro or "
                            "REPRO_CACHE_DIR)")
    cache.add_argument("--stats", action="store_true",
                       help="print occupancy (the default action)")
    cache.add_argument("--prune", action="store_true",
                       help="evict least-recently-used entries down "
                            "to the budget (--max-bytes or "
                            "REPRO_CACHE_MAX_BYTES)")
    cache.add_argument("--max-bytes", type=int, default=None,
                       metavar="N",
                       help="size budget in bytes (0 empties the "
                            "cache when pruning)")
    cache.add_argument("--json", action="store_true",
                       help="emit stats as JSON")

    args = parser.parse_args(argv)
    handler = {
        "microbench": _cmd_microbench,
        "kernels": _cmd_kernels,
        "app": _cmd_app,
        "trace": _cmd_trace,
        "faults": _cmd_faults,
        "lint": _cmd_lint,
        "memory": _cmd_memory,
        "power": _cmd_power,
        "kernel": _cmd_kernel,
        "evaluate": _cmd_evaluate,
        "profile": _cmd_profile,
        "critpath": _cmd_critpath,
        "whatif": _cmd_whatif,
        "diff": _cmd_diff,
        "perf": _cmd_perf,
        "serve": _cmd_serve,
        "slo": _cmd_slo,
        "verify-backend": _cmd_verify_backend,
        "bounds": _cmd_bounds,
        "cache": _cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
