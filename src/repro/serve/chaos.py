"""Chaos plans for the experiment service.

The same discipline :mod:`repro.faults` applies to the *simulated*
machine -- named, seeded, JSON-loadable fault plans with
deterministic firing schedules -- applied one level up, to the
machinery that runs it.  A :class:`ChaosPlan` mirrors the
:class:`~repro.faults.models.FaultPlan` shape (``name``, ``seed``,
``faults: [{kind, params}]``) and drives a :class:`ChaosMonkey`
threaded through the service and the load harness:

==========================  =============================================
kind                        parameters (defaults in brackets)
==========================  =============================================
``worker_kill``             kill executions ``start`` (1), then every
                            ``every`` (0 = once), ``count`` times (1)
``cache_corrupt``           flip bytes in artifact write number
                            ``start`` (2), ``count`` times (1)
``cache_truncate``          truncate artifact write number ``start``
                            (3), ``count`` times (1)
``slow_client``             drip-feed request bytes for request
                            indices ``start`` (5), every ``every``
                            (0), ``count`` (1); ``delay_s`` (0.2)
``client_disconnect``       hang up mid-request at indices ``start``
                            (7), every ``every`` (0), ``count`` (1)
``clock_skew``              skew the service clock by ``skew_s``
                            (1.5) seconds
==========================  =============================================

Injection points are *counted*, not timed, so the number of injected
events is deterministic for a given plan + request sequence even
though worker scheduling is not -- which is what lets the soak report
stay byte-identical across reruns (``repro.soak-report/1``).
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

#: The injectable service-fault families.
CHAOS_KINDS = ("worker_kill", "cache_corrupt", "cache_truncate",
               "slow_client", "client_disconnect", "clock_skew")

#: Per-kind parameter defaults.
_DEFAULTS: dict[str, dict[str, Any]] = {
    "worker_kill": {"start": 1, "every": 0, "count": 1},
    "cache_corrupt": {"start": 2, "every": 0, "count": 1},
    "cache_truncate": {"start": 3, "every": 0, "count": 1},
    "slow_client": {"start": 5, "every": 0, "count": 1,
                    "delay_s": 0.2},
    "client_disconnect": {"start": 7, "every": 0, "count": 1},
    "clock_skew": {"skew_s": 1.5},
}


class ChaosPlanError(ValueError):
    """Malformed chaos plan (bad kind, parameter, or JSON shape)."""


class ChaosWorkerKill(RuntimeError):
    """An injected worker crash (an infrastructure failure: the
    service must retry it, never surface it as a result)."""


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos fault: a kind plus validated parameters."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ChaosPlanError(
                f"unknown chaos kind {self.kind!r}; known: "
                f"{', '.join(CHAOS_KINDS)}")
        defaults = _DEFAULTS[self.kind]
        unknown = set(self.params) - set(defaults)
        if unknown:
            raise ChaosPlanError(
                f"{self.kind}: unknown parameter(s) {sorted(unknown)}")
        merged = {**defaults, **self.params}
        for name, value in merged.items():
            if name.endswith("_s"):
                if not isinstance(value, (int, float)) or value < 0:
                    raise ChaosPlanError(
                        f"{self.kind}.{name} must be a non-negative "
                        f"number, got {value!r}")
            elif not isinstance(value, int) or value < 0:
                raise ChaosPlanError(
                    f"{self.kind}.{name} must be a non-negative "
                    f"integer, got {value!r}")
        object.__setattr__(self, "params", merged)

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind,
                "params": {k: self.params[k]
                           for k in sorted(self.params)}}


@dataclass(frozen=True)
class ChaosPlan:
    """A named, seeded tuple of chaos faults."""

    name: str
    faults: tuple[ChaosSpec, ...] = ()
    seed: int = 0

    def __iter__(self):
        return iter(self.faults)

    def with_seed(self, seed: int) -> "ChaosPlan":
        return replace(self, seed=seed)

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "seed": self.seed,
                "faults": [spec.as_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ChaosPlan":
        if not isinstance(document, Mapping):
            raise ChaosPlanError("chaos plan must be an object")
        unknown = set(document) - {"name", "seed", "faults"}
        if unknown:
            raise ChaosPlanError(
                f"unknown plan field(s) {sorted(unknown)}")
        name = document.get("name")
        if not isinstance(name, str) or not name:
            raise ChaosPlanError("plan needs a non-empty 'name'")
        seed = document.get("seed", 0)
        if not isinstance(seed, int):
            raise ChaosPlanError("'seed' must be an integer")
        raw = document.get("faults", [])
        if not isinstance(raw, list):
            raise ChaosPlanError("'faults' must be a list")
        faults = []
        for entry in raw:
            if not isinstance(entry, Mapping) or "kind" not in entry:
                raise ChaosPlanError(
                    f"each fault needs a 'kind': {entry!r}")
            faults.append(ChaosSpec(str(entry["kind"]),
                                    dict(entry.get("params", {}))))
        return cls(name=name, faults=tuple(faults), seed=seed)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "ChaosPlan":
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ChaosPlanError(
                f"cannot load chaos plan {path!r}: {error}") from error
        return cls.from_dict(document)


#: Curated scenarios.  ``ci-soak`` is the CI smoke: one worker kill
#: plus one corrupted cache entry under ~200 mixed requests.
BUILTIN_CHAOS_PLANS: dict[str, ChaosPlan] = {
    "none": ChaosPlan(name="none"),
    "ci-soak": ChaosPlan(name="ci-soak", faults=(
        ChaosSpec("worker_kill", {"start": 1, "count": 1}),
        ChaosSpec("cache_corrupt", {"start": 2, "count": 1}),
    )),
    "full": ChaosPlan(name="full", faults=(
        ChaosSpec("worker_kill", {"start": 1, "every": 5, "count": 2}),
        ChaosSpec("cache_corrupt", {"start": 2, "count": 1}),
        ChaosSpec("cache_truncate", {"start": 3, "count": 1}),
        ChaosSpec("slow_client", {"start": 5, "count": 2, "every": 20,
                                  "delay_s": 0.05}),
        ChaosSpec("client_disconnect", {"start": 7, "count": 2,
                                        "every": 30}),
        ChaosSpec("clock_skew", {"skew_s": 1.5}),
    )),
}


def get_chaos_plan(name_or_path: str) -> ChaosPlan:
    """Resolve a builtin chaos plan name or a JSON plan file path."""
    if name_or_path in BUILTIN_CHAOS_PLANS:
        return BUILTIN_CHAOS_PLANS[name_or_path]
    if name_or_path.endswith(".json") or "/" in name_or_path:
        return ChaosPlan.from_file(name_or_path)
    raise ChaosPlanError(
        f"unknown chaos plan {name_or_path!r}; builtin plans: "
        f"{', '.join(sorted(BUILTIN_CHAOS_PLANS))} "
        "(or pass a .json file)")


def _indices(params: Mapping[str, Any]) -> set[int]:
    """The 1-based event indices a counted spec fires on."""
    start = int(params.get("start", 1))
    every = int(params.get("every", 0))
    count = int(params.get("count", 1))
    if count == 0:
        return set()
    if every == 0:
        return {start} if count else set()
    return {start + every * i for i in range(count)}


class ChaosMonkey:
    """Runtime injector for one service + load-harness pair.

    Thread-safe: execution and artifact-write counters are shared
    between worker threads.  All firing decisions are pure functions
    of the plan and the event counters, so two seeded reruns inject
    the same faults at the same counted points.
    """

    def __init__(self, plan: ChaosPlan | None = None) -> None:
        self.plan = plan if plan is not None else \
            BUILTIN_CHAOS_PLANS["none"]
        self._lock = threading.Lock()
        self._executions = 0
        self._artifact_writes = 0
        self._kill_at: set[int] = set()
        self._corrupt_at: set[int] = set()
        self._truncate_at: set[int] = set()
        self._slow_at: set[int] = set()
        self._slow_delay_s = 0.0
        self._disconnect_at: set[int] = set()
        self._skew_s = 0.0
        self.fired: dict[str, int] = {kind: 0 for kind in CHAOS_KINDS}
        for spec in self.plan:
            if spec.kind == "worker_kill":
                self._kill_at |= _indices(spec.params)
            elif spec.kind == "cache_corrupt":
                self._corrupt_at |= _indices(spec.params)
            elif spec.kind == "cache_truncate":
                self._truncate_at |= _indices(spec.params)
            elif spec.kind == "slow_client":
                self._slow_at |= _indices(spec.params)
                self._slow_delay_s = max(self._slow_delay_s,
                                         float(spec.params["delay_s"]))
            elif spec.kind == "client_disconnect":
                self._disconnect_at |= _indices(spec.params)
            elif spec.kind == "clock_skew":
                self._skew_s += float(spec.params["skew_s"])

    @classmethod
    def disabled(cls) -> "ChaosMonkey":
        return cls(BUILTIN_CHAOS_PLANS["none"])

    # ------------------------------------------------------------------
    # Service-side hooks.
    # ------------------------------------------------------------------
    def execution_started(self) -> None:
        """Called at the top of every worker execution; raises
        :class:`ChaosWorkerKill` on scheduled kill points."""
        with self._lock:
            self._executions += 1
            kill = self._executions in self._kill_at
            if kill:
                self.fired["worker_kill"] += 1
                n = self._executions
        if kill:
            raise ChaosWorkerKill(
                f"chaos: worker killed on execution #{n}")

    def artifact_written(self, path: pathlib.Path) -> None:
        """Post-write artifact hook: corrupt or truncate on schedule."""
        with self._lock:
            self._artifact_writes += 1
            n = self._artifact_writes
            corrupt = n in self._corrupt_at
            truncate = n in self._truncate_at
            if corrupt:
                self.fired["cache_corrupt"] += 1
            if truncate:
                self.fired["cache_truncate"] += 1
        try:
            if truncate:
                size = path.stat().st_size
                with open(path, "r+b") as handle:
                    handle.truncate(max(size // 2, 1))
            elif corrupt:
                with open(path, "r+b") as handle:
                    data = bytearray(handle.read())
                    if data:
                        mid = len(data) // 2
                        data[mid] = (data[mid] + 1) % 256
                        handle.seek(0)
                        handle.write(bytes(data))
        except OSError:  # pragma: no cover - corruption is best-effort
            pass

    def clock_skew_s(self) -> float:
        return self._skew_s

    # ------------------------------------------------------------------
    # Client-side hooks (consumed by the load harness).
    # ------------------------------------------------------------------
    def client_behaviour(self, request_index: int) -> str | None:
        """``"slow"``/``"disconnect"``/None for 1-based request
        indices in the load sequence."""
        if request_index in self._disconnect_at:
            with self._lock:
                self.fired["client_disconnect"] += 1
            return "disconnect"
        if request_index in self._slow_at:
            with self._lock:
                self.fired["slow_client"] += 1
            return "slow"
        return None

    @property
    def slow_delay_s(self) -> float:
        return self._slow_delay_s

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def configured(self) -> dict[str, int]:
        """Planned injection counts per kind (deterministic)."""
        counts = {kind: 0 for kind in CHAOS_KINDS}
        for spec in self.plan:
            if spec.kind == "clock_skew":
                counts[spec.kind] += 1
            else:
                counts[spec.kind] += len(_indices(spec.params))
        return counts

    def summary(self) -> dict[str, Any]:
        configured = self.configured()
        if self._skew_s:
            self.fired["clock_skew"] = configured["clock_skew"]
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "configured": {k: configured[k] for k in sorted(configured)
                           if configured[k]},
            "fired": {k: self.fired[k] for k in sorted(self.fired)
                      if self.fired[k]},
        }


__all__ = [
    "BUILTIN_CHAOS_PLANS",
    "CHAOS_KINDS",
    "ChaosMonkey",
    "ChaosPlan",
    "ChaosPlanError",
    "ChaosSpec",
    "ChaosWorkerKill",
    "get_chaos_plan",
]
