"""Digest-keyed artifact store (``repro.serve.artifact/1``).

Finished results are written as self-checking JSON envelopes::

    <root>/artifacts/<d0d1>/<digest>.json

Each envelope records the request digest it answers and a sha256
checksum over its canonical body; :meth:`ArtifactStore.load` verifies
both before serving, so a corrupted or truncated entry -- including
one mangled by the chaos harness -- reads as a *miss*, never as a
wrong-digest artifact.  Loading is pure I/O over the standard
library: the hot path of the service imports no simulator code.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Callable

#: Version tag on every artifact envelope.
ARTIFACT_SCHEMA = "repro.serve.artifact/1"


def _canonical(body: Any) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _checksum(digest: str, body: Any) -> str:
    material = f"{digest}\n{_canonical(body)}".encode()
    return hashlib.sha256(material).hexdigest()


class ArtifactStore:
    """Content-addressed JSON artifacts with integrity verification."""

    def __init__(self, root: str | pathlib.Path,
                 on_written: Callable[[pathlib.Path], None]
                 | None = None) -> None:
        self.root = pathlib.Path(root)
        #: Post-write hook; the chaos harness uses it to corrupt or
        #: truncate freshly written entries.
        self.on_written = on_written

    def path(self, digest: str) -> pathlib.Path:
        return (self.root / "artifacts" / digest[:2]
                / f"{digest}.json")

    # ------------------------------------------------------------------
    def store(self, digest: str, body: Any) -> pathlib.Path:
        """Atomically persist ``body`` as the artifact for ``digest``."""
        envelope = {
            "schema": ARTIFACT_SCHEMA,
            "digest": digest,
            "checksum": _checksum(digest, body),
            "body": body,
        }
        path = self.path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(envelope, sort_keys=True, indent=2)
                + "\n").encode()
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.on_written is not None:
            self.on_written(path)
        return path

    def load(self, digest: str) -> dict[str, Any] | None:
        """The verified envelope for ``digest``, or ``None``.

        A missing, unparseable, mis-addressed or checksum-mismatched
        entry is a miss; corrupt entries are discarded so the next
        execution rewrites them.
        """
        path = self.path(digest)
        try:
            with open(path, encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.discard(digest)
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("schema") != ARTIFACT_SCHEMA
                or envelope.get("digest") != digest
                or envelope.get("checksum")
                != _checksum(digest, envelope.get("body"))):
            self.discard(digest)
            return None
        return envelope

    def has(self, digest: str) -> bool:
        """Cheap existence probe (no integrity verification)."""
        return self.path(digest).exists()

    def discard(self, digest: str) -> None:
        try:
            self.path(digest).unlink()
        except OSError:
            pass

    def stats(self) -> dict[str, Any]:
        """Entry count and total bytes on disk."""
        entries = 0
        total = 0
        base = self.root / "artifacts"
        if base.exists():
            for path in base.rglob("*.json"):
                try:
                    total += path.stat().st_size
                    entries += 1
                except OSError:
                    continue
        return {"entries": entries, "bytes": total}


__all__ = ["ARTIFACT_SCHEMA", "ArtifactStore"]
