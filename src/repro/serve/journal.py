"""Crash-safe append-only job journal (``repro.serve.journal/1``).

Every job state transition is one JSONL line, flushed and fsync'd
before the transition is acknowledged, so a crashed or killed service
can always reconstruct what it had promised: which jobs were
accepted, which were running, which reached a terminal state.  On
restart :meth:`JobJournal.fold` replays the log; accepted-but-
unfinished jobs are re-enqueued (their payloads travel in the
``accepted`` line) or cleanly failed when their payload no longer
parses.

Appends take an exclusive ``flock`` so multiple service processes
sharing a journal cannot interleave partial lines; reads tolerate a
torn final line (the one write a crash can corrupt) by skipping
anything that does not parse.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from typing import Any, Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Version tag on every journal line.
JOURNAL_SCHEMA = "repro.serve.journal/1"

#: Events a job can log, in lifecycle order.  ``accepted`` carries the
#: payload; ``completed``/``failed`` are terminal; ``recovered`` marks
#: a restart re-enqueue.
JOURNAL_EVENTS = ("accepted", "started", "retrying", "completed",
                  "failed", "coalesced", "recovered")

#: Events after which a job needs no further attention.
TERMINAL_EVENTS = ("completed", "failed")


class JobJournal:
    """Append-only, fsync'd, flock-guarded job event log."""

    def __init__(self, path: str | pathlib.Path,
                 fsync: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._seq = 0

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def append(self, event: str, job_id: str,
               **fields: Any) -> dict[str, Any]:
        """Durably record one job event; returns the written entry."""
        if event not in JOURNAL_EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        with self._lock:
            self._seq += 1
            entry = {"schema": JOURNAL_SCHEMA, "seq": self._seq,
                     "event": event, "job_id": job_id, **fields}
            line = json.dumps(entry, sort_keys=True) + "\n"
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    handle.write(line)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return entry

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def replay(self) -> list[dict[str, Any]]:
        """All well-formed events in file order; torn or alien lines
        are skipped (crash tolerance is the point of the journal)."""
        if not self.path.exists():
            return []
        events = []
        with self.path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (isinstance(entry, dict)
                        and entry.get("schema") == JOURNAL_SCHEMA
                        and entry.get("event") in JOURNAL_EVENTS
                        and isinstance(entry.get("job_id"), str)):
                    events.append(entry)
        return events

    def fold(self) -> dict[str, dict[str, Any]]:
        """Latest state per job id after replaying the journal.

        Each value carries ``state`` (the last event), plus the
        ``payload``/``digest``/``deadline_s`` from the ``accepted``
        line, the attempt count, and terminal error details if any.
        """
        jobs: dict[str, dict[str, Any]] = {}
        max_seq = 0
        for event in self.replay():
            max_seq = max(max_seq, int(event.get("seq", 0)))
            job = jobs.setdefault(event["job_id"], {
                "job_id": event["job_id"],
                "state": None,
                "payload": None,
                "digest": None,
                "deadline_s": None,
                "attempts": 0,
                "coalesced_into": None,
                "error_type": None,
                "error_message": None,
            })
            kind = event["event"]
            job["state"] = kind
            if kind == "accepted":
                job["payload"] = event.get("payload")
                job["digest"] = event.get("digest")
                job["deadline_s"] = event.get("deadline_s")
            elif kind == "started":
                job["attempts"] = int(event.get("attempt",
                                                job["attempts"] + 1))
            elif kind == "coalesced":
                job["coalesced_into"] = event.get("into")
            elif kind == "failed":
                job["error_type"] = event.get("error_type")
                job["error_message"] = event.get("error_message")
        with self._lock:
            self._seq = max(self._seq, max_seq)
        return jobs

    def in_flight(self) -> Iterator[dict[str, Any]]:
        """Jobs the journal promised but never resolved, in id order."""
        folded = self.fold()
        for job_id in sorted(folded):
            record = folded[job_id]
            if record["state"] not in TERMINAL_EVENTS:
                yield record


__all__ = [
    "JOURNAL_EVENTS",
    "JOURNAL_SCHEMA",
    "JobJournal",
    "TERMINAL_EVENTS",
]
