"""The resilient async experiment service.

:class:`ExperimentService` owns the whole job lifecycle:

* **admission** -- parse the payload into a
  :class:`~repro.engine.request.RunRequest`; serve verified artifacts
  straight from the digest-keyed store (pure I/O, no simulator
  import); coalesce duplicate digests onto the in-flight primary;
  refuse work beyond the bounded queue with explicit backpressure
  (:class:`~repro.serve.models.QueueFull` -> 429 + Retry-After);
* **execution** -- asyncio worker tasks run jobs on a thread pool of
  per-thread engine :class:`~repro.engine.Session` objects (shared
  content-addressed cache), bounded by the per-request deadline
  layered over the engine's own per-run timeout;
* **resilience** -- infrastructure failures (killed workers, broken
  pools, engine timeouts) are retried on the deterministic
  :class:`~repro.serve.retry.RetryPolicy` backoff; repeated strikes
  open a circuit breaker that sheds cold work and keeps serving
  artifact hits; every transition is fsync'd to the crash-safe
  :class:`~repro.serve.journal.JobJournal`, and on restart unfinished
  jobs are recovered or cleanly failed.

See ``docs/serving.md`` for the API schema and failure-mode table.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import pathlib
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.serve.artifacts import ArtifactStore
from repro.serve.chaos import ChaosMonkey
from repro.serve.journal import TERMINAL_EVENTS, JobJournal
from repro.serve.models import (
    BadRequest,
    Job,
    QueueFull,
    ServiceConfig,
    ServiceUnavailable,
    canonical_payload,
    request_from_payload,
)
from repro.serve.retry import is_retryable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.request import RunRequest
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.registry import ProbeRegistry
    from repro.obs.tracer import Tracer


@dataclass
class ServiceStats:
    """Service counters (exported via :meth:`ExperimentService.probes`)."""

    accepted: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    coalesced: int = 0
    artifact_hits: int = 0
    shed_queue_full: int = 0
    shed_breaker: int = 0
    recovered: int = 0
    deadline_failures: int = 0
    executions: int = 0
    bad_requests: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class CircuitBreaker:
    """Sheds cold-cache work while the worker pool is unhealthy.

    ``closed`` admits everything; ``threshold`` consecutive
    infrastructure strikes open it.  While ``open``, cold work is
    refused (artifact hits still flow -- they touch no worker).
    After ``cooldown_s`` one probe job is admitted (``half-open``);
    its fate closes or re-opens the breaker.
    """

    def __init__(self, threshold: int, cooldown_s: float,
                 on_transition: Any = None) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.strikes = 0
        self.opened_at = 0.0
        self.trips = 0
        #: Called as ``on_transition(old_state, new_state)`` on every
        #: state change (the service bridges this into metrics).
        self.on_transition = on_transition

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        old, self.state = self.state, state
        if self.on_transition is not None:
            self.on_transition(old, state)

    def strike(self, now: float) -> None:
        self.strikes += 1
        if self.state == "half-open" or (
                self.state == "closed"
                and self.strikes >= self.threshold):
            self._transition("open")
            self.opened_at = now
            self.trips += 1

    def success(self) -> None:
        self.strikes = 0
        self._transition("closed")

    def allow_cold(self, now: float) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            if now - self.opened_at >= self.cooldown_s:
                self._transition("half-open")
                return True
            return False
        # half-open: one probe is already in flight.
        return False

    def retry_after_s(self, now: float) -> float:
        if self.state == "open":
            return max(self.cooldown_s - (now - self.opened_at), 1.0)
        return 1.0

    def as_dict(self) -> dict[str, Any]:
        return {"state": self.state, "strikes": self.strikes,
                "threshold": self.threshold, "trips": self.trips,
                "cooldown_s": self.cooldown_s}


class ExperimentService:
    """Submit / poll / fetch front end over the parallel engine."""

    def __init__(self, config: ServiceConfig | None = None,
                 chaos: ChaosMonkey | None = None,
                 metrics: "MetricsRegistry | None" = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.chaos = chaos if chaos is not None else \
            ChaosMonkey.disabled()
        data_dir = self.config.data_dir
        if data_dir is None:
            data_dir = tempfile.mkdtemp(prefix="repro-serve-")
        self.data_dir = pathlib.Path(data_dir)
        cache_dir = self.config.cache_dir
        if cache_dir is None:
            cache_dir = str(self.data_dir / "engine-cache")
        self.cache_dir = cache_dir
        self.journal = JobJournal(self.data_dir / "journal.jsonl",
                                  fsync=self.config.journal_fsync)
        self.artifacts = ArtifactStore(
            self.data_dir, on_written=self.chaos.artifact_written)
        self.stats = ServiceStats()
        self._init_metrics(metrics)
        self.breaker = CircuitBreaker(self.config.breaker_threshold,
                                      self.config.breaker_cooldown_s,
                                      on_transition=self._on_breaker)
        self.jobs: dict[str, Job] = {}
        self._requests: dict[str, "RunRequest"] = {}
        self._deadline_at: dict[str, float] = {}
        self._inflight: dict[str, str] = {}      # digest -> primary id
        self._followers: dict[str, list[str]] = {}
        self._events: dict[str, asyncio.Event] = {}
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._pending = 0
        self._job_counter = 0
        self._avg_exec_s = 1.0
        self._salt: str | None = None
        self._workers: list[asyncio.Task] = []
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._thread_sessions: list[Any] = []
        self._local = threading.local()
        self._sessions_lock = threading.Lock()
        self._trace_lock = threading.Lock()
        self._trace_budget = self.config.trace_jobs
        self._tracers: dict[str, "Tracer"] = {}
        self._started = False

    def _init_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Register the service's live-metric families.

        Dual-written alongside :class:`ServiceStats` (the snapshot
        dict stays the journal-auditable source of truth; the metric
        families are the scrapeable one).  The registry is shared
        with every worker-thread engine session, so one ``/metrics``
        scrape carries the ``serve_*`` and ``engine_*`` vocabularies
        together.
        """
        from repro.obs.metrics import MetricsRegistry

        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry())
        m = self.metrics
        self._m_submitted = m.counter(
            "serve_jobs_submitted_total",
            "submissions received, before any admission decision")
        self._m_accepted = m.counter(
            "serve_jobs_accepted_total",
            "admitted submissions by admission path",
            labels=("path",))
        self._m_rejected = m.counter(
            "serve_jobs_rejected_total",
            "refused submissions by reason", labels=("reason",))
        self._m_terminal = m.counter(
            "serve_jobs_terminal_total",
            "jobs reaching a terminal state", labels=("state",))
        self._m_coalesced = m.counter(
            "serve_jobs_coalesced_total",
            "duplicate digests coalesced onto an in-flight primary")
        self._m_recovered = m.counter(
            "serve_jobs_recovered_total",
            "jobs recovered from the journal at startup")
        self._m_artifact_hits = m.counter(
            "serve_artifact_hits_total",
            "submissions answered from the verified artifact store")
        self._m_retries = m.counter(
            "serve_job_retries_total",
            "execution attempts retried on the backoff policy")
        self._m_executions = m.counter(
            "serve_job_executions_total",
            "execution attempts dispatched to worker threads")
        self._m_queue_depth = m.gauge(
            "serve_queue_depth", "queued + running jobs")
        self._m_breaker_state = m.gauge(
            "serve_breaker_state",
            "circuit breaker state (0 closed, 1 half-open, 2 open)")
        self._m_breaker_transitions = m.counter(
            "serve_breaker_transitions_total",
            "circuit breaker state changes by target state",
            labels=("to",))
        self._m_latency = m.histogram(
            "serve_job_latency_ms",
            "accepted-to-terminal latency; hot = artifact-store "
            "answers, cold = executed work", labels=("temperature",))

    def _on_breaker(self, old: str, new: str) -> None:
        self._m_breaker_transitions.labels(to=new).inc()
        self._m_breaker_state.set(
            {"closed": 0, "half-open": 1, "open": 2}[new])

    # ------------------------------------------------------------------
    # Clock (skewable by chaos).
    # ------------------------------------------------------------------
    def now(self) -> float:
        return time.monotonic() + self.chaos.clock_skew_s()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Recover the journal, then spawn the worker tasks."""
        if self._started:
            return
        from repro.engine.request import code_salt

        self._salt = code_salt()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        self._recover()
        for index in range(self.config.workers):
            self._workers.append(asyncio.create_task(
                self._worker(index), name=f"serve-worker-{index}"))
        self._started = True

    async def stop(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        with self._sessions_lock:
            for session in self._thread_sessions:
                session.close()
            self._thread_sessions.clear()
        self._started = False

    async def drain(self, timeout_s: float = 120.0) -> bool:
        """Wait until every accepted job is terminal."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(job.terminal for job in self.jobs.values()):
                return True
            await asyncio.sleep(0.02)
        return False

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: finish, re-enqueue or cleanly fail
        every job a previous incarnation accepted but never resolved."""
        folded = self.journal.fold()
        for job_id in sorted(folded):
            record = folded[job_id]
            self._bump_counter(job_id)
            if record["state"] in TERMINAL_EVENTS:
                continue
            digest = record.get("digest")
            payload = record.get("payload")
            job = Job(id=job_id, digest=digest or "",
                      payload=payload or {},
                      accepted_at=self.now(),
                      deadline_s=float(record.get("deadline_s")
                                       or self.config.default_deadline_s),
                      attempts=int(record.get("attempts") or 0))
            if record.get("coalesced_into"):
                # Followers are resolved by their primary; after a
                # restart the primary link is gone, so fold the
                # follower onto the artifact/requeue paths below.
                job.coalesced_into = None
            if digest and self.artifacts.load(digest) is not None:
                job.state = "completed"
                job.served_from = "artifact"
                self.jobs[job_id] = job
                self.journal.append("completed", job_id, digest=digest,
                                    served_from="artifact",
                                    recovered=True)
                self.stats.recovered += 1
                self._m_recovered.inc()
                self._m_terminal.labels(state="completed").inc()
                continue
            try:
                if payload is None:
                    raise BadRequest("journal entry lost its payload")
                request, deadline_s = request_from_payload(
                    payload, self.config)
            except BadRequest as error:
                job.state = "failed"
                job.error_type = "UnrecoverableJob"
                job.error_message = str(error)
                self.jobs[job_id] = job
                self.journal.append("failed", job_id,
                                    error_type="UnrecoverableJob",
                                    error_message=str(error))
                self.stats.failed += 1
                self._m_terminal.labels(state="failed").inc()
                continue
            job.deadline_s = deadline_s
            job.served_from = "recovered"
            self.jobs[job_id] = job
            self._requests[job_id] = request
            self._events[job_id] = asyncio.Event()
            self._inflight.setdefault(job.digest, job_id)
            self._pending += 1
            self.stats.recovered += 1
            self._m_recovered.inc()
            self._m_queue_depth.set(self._pending)
            self.journal.append("recovered", job_id, digest=job.digest)
            self._queue.put_nowait(job_id)

    def _bump_counter(self, job_id: str) -> None:
        try:
            number = int(job_id.rsplit("-", 1)[-1])
        except ValueError:
            return
        self._job_counter = max(self._job_counter, number)

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------
    def _next_job_id(self) -> str:
        self._job_counter += 1
        return f"job-{self._job_counter:08d}"

    def submit(self, payload: Any) -> tuple[Job, dict | None]:
        """Admit one submission.

        Returns ``(job, artifact_envelope_or_None)``; the artifact is
        non-None only for the pure-I/O hot path.  Raises
        :class:`BadRequest`, :class:`QueueFull` or
        :class:`ServiceUnavailable`.
        """
        if not self._started:
            raise ServiceUnavailable("service not started",
                                     retry_after_s=1.0)
        admit_start = time.perf_counter()
        self._m_submitted.inc()
        now = self.now()
        try:
            request, deadline_s = request_from_payload(payload,
                                                       self.config)
        except BadRequest:
            self.stats.bad_requests += 1
            self._m_rejected.labels(reason="bad_request").inc()
            raise
        digest = request.digest(salt=self._salt)

        # Hot path: a verified artifact answers immediately, whatever
        # the queue or breaker state -- it costs pure file I/O.
        envelope = self.artifacts.load(digest)
        if envelope is not None:
            job = Job(id=self._next_job_id(), digest=digest,
                      payload=canonical_payload(payload),
                      state="completed", accepted_at=now,
                      deadline_s=deadline_s, served_from="artifact")
            self.jobs[job.id] = job
            self.stats.accepted += 1
            self.stats.artifact_hits += 1
            self.stats.completed += 1
            self._m_accepted.labels(path="artifact").inc()
            self._m_artifact_hits.inc()
            self._m_terminal.labels(state="completed").inc()
            self.journal.append("accepted", job.id, digest=digest,
                                payload=job.payload,
                                deadline_s=deadline_s)
            self.journal.append("completed", job.id, digest=digest,
                                served_from="artifact")
            job.admit_s = time.perf_counter() - admit_start
            self._m_latency.labels(temperature="hot").observe(
                job.admit_s * 1e3)
            return job, envelope

        # Coalesce onto an in-flight primary for the same digest.
        primary_id = self._inflight.get(digest)
        if primary_id is not None and not \
                self.jobs[primary_id].terminal:
            job = Job(id=self._next_job_id(), digest=digest,
                      payload=canonical_payload(payload),
                      accepted_at=now, deadline_s=deadline_s,
                      coalesced_into=primary_id,
                      served_from="coalesced")
            self.jobs[job.id] = job
            self._followers.setdefault(primary_id, []).append(job.id)
            self.stats.accepted += 1
            self.stats.coalesced += 1
            self._m_accepted.labels(path="coalesced").inc()
            self._m_coalesced.inc()
            self.journal.append("accepted", job.id, digest=digest,
                                payload=job.payload,
                                deadline_s=deadline_s)
            self.journal.append("coalesced", job.id, into=primary_id)
            job.admit_s = time.perf_counter() - admit_start
            return job, None

        # Cold work: the breaker may be shedding it.
        if not self.breaker.allow_cold(now):
            self.stats.shed_breaker += 1
            self._m_rejected.labels(reason="breaker").inc()
            raise ServiceUnavailable(
                "worker pool unhealthy; serving cache hits only",
                retry_after_s=self.breaker.retry_after_s(now))

        # Bounded admission queue: explicit backpressure beyond it.
        if self._pending >= self.config.queue_limit:
            self.stats.shed_queue_full += 1
            self._m_rejected.labels(reason="queue_full").inc()
            retry_after = max(
                1.0, self._pending * self._avg_exec_s
                / self.config.workers)
            raise QueueFull(
                f"admission queue full "
                f"({self._pending}/{self.config.queue_limit})",
                retry_after_s=retry_after)

        job = Job(id=self._next_job_id(), digest=digest,
                  payload=canonical_payload(payload),
                  accepted_at=now, deadline_s=deadline_s)
        self.jobs[job.id] = job
        self._requests[job.id] = request
        self._events[job.id] = asyncio.Event()
        self._inflight[digest] = job.id
        self._pending += 1
        self.stats.accepted += 1
        self._m_accepted.labels(path="queued").inc()
        self._m_queue_depth.set(self._pending)
        self.journal.append("accepted", job.id, digest=digest,
                            payload=job.payload, deadline_s=deadline_s)
        self._queue.put_nowait(job.id)
        job.admit_s = time.perf_counter() - admit_start
        return job, None

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def status(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def artifact_for(self, job_id: str) -> tuple[Job | None,
                                                 dict | None]:
        """The job and, when completed, its verified artifact."""
        job = self.jobs.get(job_id)
        if job is None or job.state != "completed":
            return job, None
        return job, self.artifacts.load(job.digest)

    async def wait(self, job_id: str,
                   timeout_s: float | None = None) -> Job:
        """Block until ``job_id`` is terminal."""
        job = self.jobs[job_id]
        target = job
        if job.coalesced_into is not None:
            target = self.jobs[job.coalesced_into]
        event = self._events.get(target.id)
        if event is not None and not target.terminal:
            await asyncio.wait_for(event.wait(), timeout=timeout_s)
        return self.jobs[job_id]

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def _thread_session(self):
        """One engine session per worker thread, sharing the on-disk
        cache; created lazily, registered for probe aggregation."""
        session = getattr(self._local, "session", None)
        if session is None:
            from repro.engine import Session, SessionConfig

            session = Session(config=SessionConfig(
                backend=self.config.backend,
                jobs=self.config.engine_jobs,
                cache=True, cache_dir=self.cache_dir,
                timeout=self.config.engine_timeout_s),
                metrics=self.metrics)
            self._local.session = session
            with self._sessions_lock:
                self._thread_sessions.append(session)
        return session

    def _claim_trace(self) -> bool:
        """Atomically consume one unit of the end-to-end trace budget.

        Claimed *after* the chaos execution hook, so an injected
        worker kill never burns the budget on a run that produced no
        spans.
        """
        with self._trace_lock:
            if self._trace_budget > 0:
                self._trace_budget -= 1
                return True
        return False

    def _execute_blocking(self, request: "RunRequest", job: Job):
        """Worker-thread entry: chaos hook, then one engine run.

        When the trace budget allows, the run executes traced: the
        simulator's per-component spans are kept for
        :meth:`stitched_trace` (traced runs stay in-process and
        uncached by the engine's contract, so tracing is sampling,
        never the steady-state path).
        """
        self.chaos.execution_started()
        session = self._thread_session()
        if self._claim_trace():
            from repro.obs.tracer import Tracer

            tracer = Tracer()
            handle = session.submit(request, tracer=tracer)
            self._tracers[job.id] = tracer
        else:
            handle = session.submit(request)
        return handle.outcome(), handle.cache_status

    async def _worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            job = self.jobs.get(job_id)
            if job is None or job.terminal:
                continue
            request = self._requests.get(job_id)
            if request is None:
                self._fail(job, "UnrecoverableJob",
                           "no request attached")
                continue
            await self._run_job(loop, job, request)

    async def _run_job(self, loop: asyncio.AbstractEventLoop,
                       job: Job, request: "RunRequest") -> None:
        while True:
            remaining = job.deadline_remaining(self.now())
            if remaining <= 0:
                self.stats.deadline_failures += 1
                self._fail(job, "DeadlineExceeded",
                           f"deadline of {job.deadline_s:.1f}s "
                           f"passed before completion")
                return
            job.state = "running"
            job.attempts += 1
            job.started_at = self.now()
            self.stats.executions += 1
            self._m_executions.inc()
            self.journal.append("started", job.id,
                                attempt=job.attempts)
            started = time.monotonic()
            try:
                outcome, cache_status = await asyncio.wait_for(
                    loop.run_in_executor(self._executor,
                                         self._execute_blocking,
                                         request, job),
                    timeout=max(remaining, 0.001))
            except asyncio.TimeoutError:
                self.stats.deadline_failures += 1
                self.breaker.strike(self.now())
                self._fail(job, "DeadlineExceeded",
                           f"execution exceeded the "
                           f"{job.deadline_s:.1f}s deadline "
                           f"(attempt {job.attempts})")
                return
            except asyncio.CancelledError:
                raise
            except Exception as error:       # infrastructure failure
                if await self._maybe_retry(job,
                                           type(error).__name__,
                                           str(error)):
                    continue
                return
            self._observe_exec_time(time.monotonic() - started)
            if outcome.completed:
                artifact = self._build_artifact(job, outcome,
                                                cache_status)
                self.artifacts.store(job.digest, artifact)
                self.breaker.success()
                self._complete(job)
                return
            if is_retryable(outcome.error_type):
                # Engine-side infrastructure failure (RunTimeout,
                # WorkerCrashed): same retry ring as a raised one.
                if await self._maybe_retry(job, outcome.error_type,
                                           outcome.error_message or ""):
                    continue
                return
            # A typed simulation failure is the answer.
            self.breaker.success()
            self._fail(job, outcome.error_type or "UnknownError",
                       outcome.error_message or "",
                       diagnostics=outcome.diagnostics)
            return

    async def _maybe_retry(self, job: Job, error_type: str,
                           message: str) -> bool:
        """Strike the breaker; back off and retry when allowed.
        Returns True to continue the attempt loop."""
        self.breaker.strike(self.now())
        if (job.attempts < self.config.retry.max_attempts
                and is_retryable(error_type)
                and job.deadline_remaining(self.now()) > 0):
            delay = self.config.retry.delay(job.digest, job.attempts)
            self.stats.retried += 1
            self._m_retries.inc()
            self.journal.append("retrying", job.id,
                                attempt=job.attempts,
                                error_type=error_type,
                                delay_s=round(delay, 6))
            await asyncio.sleep(delay)
            return True
        self._fail(job, error_type, message)
        return False

    def _observe_exec_time(self, elapsed: float) -> None:
        self._avg_exec_s = 0.8 * self._avg_exec_s + 0.2 * elapsed

    # ------------------------------------------------------------------
    # Artifacts.
    # ------------------------------------------------------------------
    def _build_artifact(self, job: Job, outcome: Any,
                        cache_status: str | None) -> dict:
        """The served document for a completed run: summary metrics,
        the full cycle-accounting profile and the critical-path
        summary.  Deterministic for a given request digest."""
        from repro.obs.critpath import critpath_summary
        from repro.obs.profile import build_profile

        result = outcome.result
        profile = build_profile(result)
        return {
            "program": result.name,
            "board_mode": result.board.mode,
            "cycles": float(result.metrics.total_cycles),
            "gops": result.metrics.gops,
            "gflops": result.metrics.gflops,
            "watts": result.power.watts,
            "summary": profile["summary"],
            "profile": profile,
            "critpath": critpath_summary(result),
        }

    # ------------------------------------------------------------------
    # Terminal transitions.
    # ------------------------------------------------------------------
    def _complete(self, job: Job) -> None:
        job.state = "completed"
        if job.served_from is None:
            job.served_from = "execution"
        self.stats.completed += 1
        self._m_terminal.labels(state="completed").inc()
        self.journal.append("completed", job.id, digest=job.digest,
                            served_from=job.served_from)
        self._settle(job)

    def _fail(self, job: Job, error_type: str, message: str,
              diagnostics: dict | None = None) -> None:
        job.state = "failed"
        job.error_type = error_type
        job.error_message = message
        job.diagnostics = diagnostics
        self.stats.failed += 1
        self._m_terminal.labels(state="failed").inc()
        self.journal.append("failed", job.id, error_type=error_type,
                            error_message=message)
        self._settle(job)

    def _settle(self, job: Job) -> None:
        """Release bookkeeping and resolve coalesced followers."""
        job.finished_at = self.now()
        self._m_latency.labels(temperature="cold").observe(
            max(job.finished_at - job.accepted_at, 0.0) * 1e3)
        if self._inflight.get(job.digest) == job.id:
            del self._inflight[job.digest]
        if job.coalesced_into is None:
            self._pending = max(self._pending - 1, 0)
            self._m_queue_depth.set(self._pending)
        event = self._events.pop(job.id, None)
        if event is not None:
            event.set()
        self._requests.pop(job.id, None)
        for follower_id in self._followers.pop(job.id, []):
            follower = self.jobs.get(follower_id)
            if follower is None or follower.terminal:
                continue
            follower.state = job.state
            follower.error_type = job.error_type
            follower.error_message = job.error_message
            follower.served_from = "coalesced"
            follower.finished_at = job.finished_at
            if job.state == "completed":
                self.stats.completed += 1
                self._m_terminal.labels(state="completed").inc()
                self.journal.append("completed", follower.id,
                                    digest=follower.digest,
                                    served_from="coalesced")
            else:
                self.stats.failed += 1
                self._m_terminal.labels(state="failed").inc()
                self.journal.append(
                    "failed", follower.id,
                    error_type=job.error_type or "UnknownError",
                    error_message=job.error_message or "")

    # ------------------------------------------------------------------
    # Health / observability.
    # ------------------------------------------------------------------
    def stitched_trace(self, job_id: str) -> dict[str, Any] | None:
        """The cross-process Perfetto document for one finished job.

        ``None`` for unknown or still-running jobs.  The service-side
        spans (HTTP accept -> queue wait -> engine execute) come from
        the job's phase clocks; when the job's execution was traced
        (``ServiceConfig.trace_jobs``), the simulator's per-component
        spans are rebased under the execute span.
        """
        job = self.jobs.get(job_id)
        if job is None or not job.terminal:
            return None
        from repro.obs.export import to_chrome_trace
        from repro.obs.stitch import TraceContext, stitch_job_trace

        started = (job.started_at if job.started_at is not None
                   else job.accepted_at)
        finished = (job.finished_at if job.finished_at is not None
                    else started)
        tracer = self._tracers.get(job.id)
        simulator = (to_chrome_trace(tracer)
                     if tracer is not None else None)
        return stitch_job_trace(
            TraceContext(job.id, job.digest),
            admit_s=job.admit_s,
            queue_s=started - job.accepted_at,
            execute_s=finished - started,
            simulator=simulator)

    def render_metrics(self) -> str:
        """The ``GET /metrics`` body (Prometheus text v0.0.4)."""
        from repro.obs.metrics import render_prometheus

        return render_prometheus(self.metrics)

    def engine_stats(self) -> dict[str, float]:
        """Engine counters aggregated over every worker session."""
        totals: dict[str, float] = {}
        with self._sessions_lock:
            sessions = list(self._thread_sessions)
        for session in sessions:
            for name, value in session.stats.as_dict().items():
                if name == "hit_rate":
                    continue
                totals[name] = totals.get(name, 0) + value
        keyed = totals.get("hits", 0) + totals.get("misses", 0)
        totals["hit_rate"] = (totals.get("hits", 0) / keyed
                              if keyed else 0.0)
        return totals

    def probes(self) -> "ProbeRegistry":
        """Service + engine counters as a PR 1 probe registry; the
        engine rows come from each worker session's
        :meth:`~repro.engine.Session.probes` vocabulary."""
        from repro.obs.registry import ProbeRegistry

        registry = ProbeRegistry()
        for name, value in sorted(self.stats.as_dict().items()):
            registry.add(f"serve.{name}", value, "jobs",
                         f"service counter: {name}")
        registry.add("serve.pending", self._pending, "jobs",
                     "queued + running jobs")
        registry.add("serve.breaker.trips", self.breaker.trips,
                     "trips", "times the circuit breaker opened")
        for name, value in sorted(self.engine_stats().items()):
            unit = "fraction" if name == "hit_rate" else "runs"
            registry.add(f"serve.engine.{name}", value, unit,
                         "aggregated engine counter over worker "
                         "sessions")
        # The live metric families (serve_* and, via the shared
        # registry, engine_*) ride along under their exposition names.
        from repro.obs.metrics import probes_from_metrics

        probes_from_metrics(self.metrics, add=registry.add)
        return registry

    def health(self) -> dict[str, Any]:
        """Liveness: the event loop is running and workers exist."""
        return {
            "status": "ok" if self._started else "starting",
            "workers": len(self._workers),
        }

    def readiness(self) -> tuple[bool, dict[str, Any]]:
        """Readiness: can this instance accept cold work right now?"""
        now = self.now()
        queue_ok = self._pending < self.config.queue_limit
        breaker_ok = self.breaker.state != "open" or (
            now - self.breaker.opened_at >= self.breaker.cooldown_s)
        ready = self._started and queue_ok and breaker_ok
        reasons = []
        if not self._started:
            reasons.append("not started")
        if not queue_ok:
            reasons.append("admission queue full")
        if not breaker_ok:
            reasons.append("circuit breaker open")
        return ready, {
            "ready": ready,
            "reasons": reasons,
            "queue": {"pending": self._pending,
                      "limit": self.config.queue_limit},
            "breaker": self.breaker.as_dict(),
            "probes": self.probes().snapshot(),
        }


__all__ = ["CircuitBreaker", "ExperimentService", "ServiceStats"]
