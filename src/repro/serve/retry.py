"""Service-level retry policy: deterministic exponential backoff.

The engine already retries *host* transfers inside the simulation
(:meth:`repro.host.interface.HostInterface.backoff_cycles`) and
re-dispatches runs lost to worker crashes.  The service adds one more
ring: a job whose execution fails for an *infrastructure* reason (a
killed worker, a broken pool, an engine timeout) is retried with
exponential backoff before the job is failed; *simulation* results --
including typed simulation failures -- are never retried, they are
the answer.

Both the delay curve and the jitter are deterministic: jitter is
derived by hashing ``(seed, key, attempt)``, so a fixed seed yields a
byte-identical schedule (property-tested in
``tests/test_serve.py``), and jitter can never exceed
``jitter_cap_s``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Typed failures that are simulation *results* -- cacheable answers,
#: never retried (mirrors ``repro.engine.session._CACHEABLE_ERRORS``
#: plus the static-verifier verdict).
SIMULATION_ERRORS = frozenset({
    "SimulationError",
    "InvariantViolation",
    "HostError",
    "AnalysisError",
})

#: Service-level failures that are terminal by definition: retrying
#: cannot help once the request's deadline has passed.
TERMINAL_SERVICE_ERRORS = frozenset({
    "DeadlineExceeded",
    "BadRequest",
    "UnrecoverableJob",
})


def is_retryable(error_type: str | None) -> bool:
    """True for infrastructure failures worth another attempt."""
    if error_type is None:
        return False
    return (error_type not in SIMULATION_ERRORS
            and error_type not in TERMINAL_SERVICE_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff with capped, seeded jitter.

    ``delay(key, attempt)`` is a pure function of the policy fields:
    ``base_s * factor**(attempt-1)`` capped at ``cap_s``, plus a
    jitter in ``[0, jitter_cap_s]`` hashed from ``(seed, key,
    attempt)``.  Two services configured with the same seed therefore
    retry the same job on the same schedule -- which is what makes
    the chaos soak report byte-identical across reruns.
    """

    max_attempts: int = 3
    base_s: float = 0.05
    factor: float = 2.0
    cap_s: float = 2.0
    jitter_cap_s: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_s < 0 or self.cap_s < 0 or self.jitter_cap_s < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def jitter(self, key: str, attempt: int) -> float:
        """Deterministic jitter in ``[0, jitter_cap_s]``."""
        material = f"{self.seed}:{key}:{attempt}".encode()
        word = int.from_bytes(
            hashlib.sha256(material).digest()[:8], "big")
        return (word / float(2 ** 64)) * self.jitter_cap_s

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of job ``key``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_s * self.factor ** (attempt - 1),
                  self.cap_s)
        return raw + self.jitter(key, attempt)

    def schedule(self, key: str) -> list[float]:
        """Every backoff delay this policy would sleep for ``key``
        (one entry per retry; ``max_attempts - 1`` entries)."""
        return [self.delay(key, attempt)
                for attempt in range(1, self.max_attempts)]

    def as_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_s": self.base_s,
            "factor": self.factor,
            "cap_s": self.cap_s,
            "jitter_cap_s": self.jitter_cap_s,
            "seed": self.seed,
        }


__all__ = [
    "RetryPolicy",
    "SIMULATION_ERRORS",
    "TERMINAL_SERVICE_ERRORS",
    "is_retryable",
]
