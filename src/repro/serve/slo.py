"""SLO accounting over the soak report and the live histograms.

The soak harness has always asserted *correctness* invariants (no
lost jobs, digest integrity); this module adds the *service-level*
ones: did enough of the accepted work complete
(``slo_availability``), how much of the error budget burned, and --
from the ``serve_job_latency_ms`` histogram -- where the hot/cold
latency quantiles sit against the declared ``slo_p99_ms``.

Two layers, split by determinism:

* :func:`build_slo_block` produces the ``slo`` section of
  ``repro.soak-report/1``.  Everything in it is derived from the
  folded journal (and therefore byte-identical across seeded reruns)
  **except** the ``latency`` subsection, which is wall-clock and
  explicitly excluded from the byte-identity surface by
  :func:`stable_projection`.
* :func:`evaluate_slo` turns a report into a pass/fail verdict (the
  ``repro slo`` CLI and the CI soak gate), checking conservation
  (jobs in == jobs accounted), availability against the target, the
  correctness invariants, and -- when latency data is present -- the
  cold p99 bound.
"""

from __future__ import annotations

import copy
from typing import Any

#: Version tag on the ``repro slo`` verdict document.
SLO_SCHEMA = "repro.serve-slo/1"

#: Quantiles reported per latency temperature.
_QUANTILES = (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99))


class SloError(ValueError):
    """The report cannot be evaluated (wrong schema, missing block)."""


def latency_block(metrics: Any) -> dict[str, Any]:
    """Histogram-quantile upper bounds per temperature.

    ``metrics`` is the service's
    :class:`~repro.obs.metrics.MetricsRegistry`; quantiles are
    bucket-boundary *upper bounds* (deterministic given the fixed
    bucket layout, but the observations themselves are wall-clock).
    """
    out: dict[str, Any] = {}
    if "serve_job_latency_ms" not in metrics:
        return out
    histogram = metrics.get("serve_job_latency_ms")
    for key, child in histogram.children():
        labels = dict(zip(histogram.label_names, key))
        temperature = labels.get("temperature", "unknown")
        entry: dict[str, Any] = {"count": child.count}
        if child.count:
            entry["sum_ms"] = round(child.sum, 3)
            for name, q in _QUANTILES:
                entry[name] = child.quantile(q)
        out[temperature] = entry
    return out


def build_slo_block(*, accepted: int, completed: int, failed: int,
                    unresolved: int, availability_target: float,
                    p99_target_ms: float,
                    latency: dict[str, Any] | None = None
                    ) -> dict[str, Any]:
    """The ``slo`` section of a soak report.

    ``accepted``/``completed``/``failed`` come from the folded
    journal -- the deterministic authority -- so everything except
    ``latency`` is byte-stable across seeded reruns.
    """
    accounted = completed + failed
    ratio = (completed / accepted) if accepted else 1.0
    allowed = (1.0 - availability_target) * accepted
    return {
        "objective": {
            "availability": availability_target,
            "p99_ms": p99_target_ms,
        },
        "availability": {
            "accepted": accepted,
            "completed": completed,
            "failed": failed,
            "ratio": round(ratio, 6),
        },
        "error_budget": {
            "allowed": round(allowed, 6),
            "burned": failed,
            "burn_ratio": (round(failed / allowed, 6)
                           if allowed > 0 else (0.0 if failed == 0
                                                else float("inf"))),
        },
        "conservation": {
            "accepted": accepted,
            "accounted": accounted,
            "unresolved": unresolved,
            "ok": accepted == accounted + unresolved
            and unresolved == 0,
        },
        "latency": latency if latency is not None else {},
    }


def evaluate_slo(report: dict[str, Any], *,
                 availability: float | None = None,
                 p99_ms: float | None = None) -> dict[str, Any]:
    """Pass/fail verdict over a soak report's SLO block.

    ``availability``/``p99_ms`` override the targets declared in the
    report.  Raises :class:`SloError` when the report carries no
    ``slo`` block (pre-PR-10 reports).
    """
    slo = report.get("slo")
    if not isinstance(slo, dict):
        raise SloError(
            "report has no 'slo' block; re-run the soak with this "
            "version")
    objective = slo.get("objective", {})
    availability_target = (availability if availability is not None
                           else float(objective.get(
                               "availability", 0.99)))
    p99_target = (p99_ms if p99_ms is not None
                  else float(objective.get("p99_ms", 60000.0)))
    checks: list[dict[str, Any]] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append({"name": name, "ok": bool(ok),
                       "detail": detail})

    conservation = slo.get("conservation", {})
    check("conservation", conservation.get("ok", False),
          f"accepted={conservation.get('accepted')} "
          f"accounted={conservation.get('accounted')} "
          f"unresolved={conservation.get('unresolved')}")
    avail = slo.get("availability", {})
    ratio = float(avail.get("ratio", 0.0))
    check("availability", ratio >= availability_target,
          f"completed {avail.get('completed')}/{avail.get('accepted')}"
          f" = {ratio:.6f} (target {availability_target})")
    invariants = report.get("invariants", {})
    if invariants:
        check("no_lost_jobs", invariants.get("no_lost_jobs", False),
              f"unresolved={invariants.get('unresolved_jobs')}")
        check("digest_integrity",
              invariants.get("digest_integrity", False),
              f"wrong serves="
              f"{invariants.get('wrong_digest_serves')}")
    cold = slo.get("latency", {}).get("cold", {})
    if cold.get("count"):
        p99 = float(cold.get("p99_ms", 0.0))
        check("cold_p99", p99 <= p99_target,
              f"cold p99 <= {p99:g}ms (target {p99_target:g}ms, "
              f"histogram upper bound)")
    passed = all(entry["ok"] for entry in checks)
    return {
        "schema": SLO_SCHEMA,
        "pass": passed,
        "objective": {"availability": availability_target,
                      "p99_ms": p99_target},
        "checks": checks,
    }


def render_slo(verdict: dict[str, Any]) -> str:
    lines = [f"slo: {'PASS' if verdict['pass'] else 'FAIL'} "
             f"(availability >= "
             f"{verdict['objective']['availability']}, "
             f"p99 <= {verdict['objective']['p99_ms']:g}ms)"]
    for entry in verdict["checks"]:
        mark = "ok " if entry["ok"] else "FAIL"
        lines.append(f"  [{mark}] {entry['name']}: {entry['detail']}")
    return "\n".join(lines) + "\n"


def stable_projection(report: dict[str, Any]) -> dict[str, Any]:
    """The byte-identity surface of a soak report.

    Everything except ``slo.latency`` (wall-clock observations); two
    seeded reruns must agree on this projection byte for byte.
    """
    projected = copy.deepcopy(report)
    slo = projected.get("slo")
    if isinstance(slo, dict):
        slo.pop("latency", None)
    return projected


__all__ = [
    "SLO_SCHEMA",
    "SloError",
    "build_slo_block",
    "evaluate_slo",
    "latency_block",
    "render_slo",
    "stable_projection",
]
