"""``repro.serve``: the resilient async experiment service.

Wraps :class:`repro.engine.Session` in a long-running HTTP/JSON
service (stdlib asyncio, no third-party dependencies): submit a
canonical :class:`~repro.engine.request.RunRequest` payload, get a
job id, poll status, fetch the finished profile/critpath artifact.
Hardened end to end -- bounded admission queue with explicit
backpressure, per-request deadlines, exponential-backoff retry of
infrastructure failures, a circuit breaker that sheds cold-cache work
when the worker pool is unhealthy, a crash-safe append-only job
journal, duplicate-digest coalescing, and health/readiness endpoints
fed from the engine's probes.  See ``docs/serving.md``.

The chaos harness (:mod:`repro.serve.chaos` +
``repro serve --soak N --chaos PLAN``) injects worker kills, cache
corruption, slow and disconnecting clients and clock-skewed deadlines
mid-load-test, and asserts the service never loses an accepted job
and never serves a wrong-digest artifact.

The telemetry plane (:mod:`repro.obs.metrics` wired through the
service, engine sessions and the HTTP front end) exposes labeled
counters/gauges/histograms at ``GET /metrics`` (Prometheus text
exposition), stitches service-side job phases and in-worker simulator
spans into one cross-process Perfetto trace
(``GET /v1/jobs/{id}/trace``), and feeds the SLO verdict
(:mod:`repro.serve.slo`, ``repro slo``).  See
``docs/observability.md``.
"""

from repro.serve.artifacts import ARTIFACT_SCHEMA, ArtifactStore
from repro.serve.chaos import (
    BUILTIN_CHAOS_PLANS,
    ChaosMonkey,
    ChaosPlan,
    get_chaos_plan,
)
from repro.serve.journal import JOURNAL_SCHEMA, JobJournal
from repro.serve.models import (
    BadRequest,
    Job,
    QueueFull,
    ServiceConfig,
    ServiceUnavailable,
    request_from_payload,
)
from repro.serve.retry import RetryPolicy, is_retryable
from repro.serve.service import ExperimentService
from repro.serve.http import ServiceServer, http_request, route_template
from repro.serve.slo import (
    SLO_SCHEMA,
    SloError,
    build_slo_block,
    evaluate_slo,
    latency_block,
    render_slo,
    stable_projection,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactStore",
    "BUILTIN_CHAOS_PLANS",
    "BadRequest",
    "ChaosMonkey",
    "ChaosPlan",
    "ExperimentService",
    "JOURNAL_SCHEMA",
    "Job",
    "JobJournal",
    "QueueFull",
    "RetryPolicy",
    "SLO_SCHEMA",
    "ServiceConfig",
    "ServiceServer",
    "ServiceUnavailable",
    "SloError",
    "build_slo_block",
    "evaluate_slo",
    "get_chaos_plan",
    "http_request",
    "is_retryable",
    "latency_block",
    "render_slo",
    "request_from_payload",
    "route_template",
    "stable_projection",
]
