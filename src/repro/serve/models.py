"""Service data model: configuration, job records, typed refusals.

The wire format is the engine's own declarative vocabulary: a job
submission is a JSON body that parses into a
:class:`~repro.engine.request.RunRequest` (app + sizes, optional
machine/board overrides, optional fault plan, seed, strict), plus the
one service-level field ``deadline_s``.  Parsing is strict -- an
unknown field or a bad value is a :class:`BadRequest`, never a
silently-defaulted job.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.serve.retry import RetryPolicy

#: Job lifecycle states.  ``queued -> running -> completed | failed``;
#: coalesced followers sit in ``queued`` until their primary resolves.
JOB_STATES = ("queued", "running", "completed", "failed")

#: States a job never leaves.
TERMINAL_STATES = ("completed", "failed")

#: Fields a submission body may carry.
_PAYLOAD_FIELDS = frozenset({
    "app", "sizes", "machine", "board", "faults", "seed", "strict",
    "deadline_s",
})


class ServeError(RuntimeError):
    """Base class for service-level failures."""


class BadRequest(ServeError):
    """Malformed submission payload (HTTP 400)."""


class QueueFull(ServeError):
    """Admission queue at capacity (HTTP 429 + Retry-After)."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceUnavailable(ServeError):
    """Circuit breaker shedding cold work (HTTP 503 + Retry-After)."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass
class ServiceConfig:
    """Tunables for one :class:`~repro.serve.service.ExperimentService`.

    ``data_dir`` roots the crash-safe journal and the artifact store;
    ``cache_dir`` roots the engine's content-addressed result cache
    (defaults to ``<data_dir>/engine-cache`` so a service instance is
    self-contained).
    """

    data_dir: str | None = None
    cache_dir: str | None = None
    #: Simulation backend for every engine session the service owns
    #: (``event``/``vector``/``auto`` -- bit-identical by contract,
    #: so this changes latency, never payloads).
    backend: str = "event"
    workers: int = 2
    #: Admission bound: queued + running jobs beyond this are refused
    #: with 429 + Retry-After.
    queue_limit: int = 64
    #: Deadline applied to submissions that do not carry their own.
    default_deadline_s: float = 60.0
    #: Hard ceiling on client-requested deadlines.
    max_deadline_s: float = 600.0
    #: Engine-level wall-clock timeout per run (layered *under* the
    #: service deadline; applies to pooled engine execution).
    engine_timeout_s: float | None = 120.0
    #: Worker processes inside each engine session (1 = in worker
    #: thread; the service's own thread pool provides concurrency).
    engine_jobs: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Consecutive infrastructure failures before the breaker opens.
    breaker_threshold: int = 3
    #: Seconds the breaker stays open before probing with one job.
    breaker_cooldown_s: float = 5.0
    #: Per-read socket timeout: a slow or wedged client cannot hold a
    #: connection handler forever.
    io_timeout_s: float = 10.0
    #: Optional perf-history JSONL store for load-test percentiles.
    history: str | None = None
    #: fsync every journal append (disable only in tests that measure
    #: throughput, never in production).
    journal_fsync: bool = True
    #: Trace the first N *executions* end to end: the job carries a
    #: :class:`~repro.obs.stitch.TraceContext` into the worker, the
    #: simulator runs traced (in-process, uncached), and
    #: ``GET /v1/jobs/{id}/trace`` serves the stitched Perfetto
    #: document.  0 disables tracing (the default: traced runs bypass
    #: the cache, so this is a sampling tool, not an always-on path).
    trace_jobs: int = 0
    #: Declared SLO: minimum fraction of accepted jobs that must
    #: complete, and the cold-path p99 latency bound, both evaluated
    #: by ``repro slo`` over the soak report's SLO block.
    slo_availability: float = 0.99
    slo_p99_ms: float = 60000.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}")


@dataclass
class Job:
    """One accepted submission and its lifecycle."""

    id: str
    digest: str
    payload: dict
    state: str = "queued"
    accepted_at: float = 0.0
    deadline_s: float = 60.0
    attempts: int = 0
    error_type: str | None = None
    error_message: str | None = None
    diagnostics: dict | None = None
    #: Primary job id this one coalesced into (duplicate digest).
    coalesced_into: str | None = None
    #: How the result was produced: ``execution`` | ``artifact`` |
    #: ``coalesced`` | ``recovered``.
    served_from: str | None = None
    #: Admission wall time (seconds spent in ``submit()``) and the
    #: execution start/finish clocks -- the service-side phase
    #: boundaries the cross-process trace stitcher renders.
    admit_s: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def deadline_remaining(self, now: float) -> float:
        return (self.accepted_at + self.deadline_s) - now

    def as_dict(self) -> dict:
        entry: dict[str, Any] = {
            "id": self.id,
            "digest": self.digest,
            "state": self.state,
            "attempts": self.attempts,
            "deadline_s": self.deadline_s,
        }
        if self.error_type is not None:
            entry["error_type"] = self.error_type
            entry["error_message"] = self.error_message
        if self.coalesced_into is not None:
            entry["coalesced_into"] = self.coalesced_into
        if self.served_from is not None:
            entry["served_from"] = self.served_from
        return entry


# ----------------------------------------------------------------------
# Payload parsing.
# ----------------------------------------------------------------------
def _machine_from_dict(document: Mapping[str, Any]):
    from repro.core.config import DramConfig, MachineConfig
    from repro.kernelc.scheduling import ClusterResources

    fields = dict(document)
    if isinstance(fields.get("cluster"), Mapping):
        fields["cluster"] = ClusterResources(**fields["cluster"])
    if isinstance(fields.get("dram"), Mapping):
        fields["dram"] = DramConfig(**fields["dram"])
    return MachineConfig(**fields)


def _board_from_value(value: Any):
    from repro.core.config import BoardConfig

    if isinstance(value, str):
        key = value.lower()
        if key == "hardware":
            return BoardConfig.hardware()
        if key == "isim":
            return BoardConfig.isim()
        raise BadRequest(
            f"unknown board {value!r}; use 'hardware', 'isim' or a "
            f"config object")
    if isinstance(value, Mapping):
        return BoardConfig(**value)
    raise BadRequest(f"board must be a string or object, "
                     f"got {type(value).__name__}")


def _faults_from_value(value: Any):
    from repro.faults import BUILTIN_PLANS, FaultPlanError
    from repro.faults.models import FaultPlan

    if isinstance(value, str):
        if value in BUILTIN_PLANS:
            return BUILTIN_PLANS[value]
        raise BadRequest(
            f"unknown fault plan {value!r}; builtin plans: "
            f"{', '.join(sorted(BUILTIN_PLANS))}")
    if isinstance(value, Mapping):
        try:
            return FaultPlan.from_dict(dict(value))
        except FaultPlanError as error:
            raise BadRequest(f"bad fault plan: {error}") from error
    raise BadRequest(f"faults must be a plan name or object, "
                     f"got {type(value).__name__}")


def request_from_payload(payload: Any,
                         config: ServiceConfig | None = None):
    """Parse a submission body into ``(RunRequest, deadline_s)``.

    Raises :class:`BadRequest` on anything malformed; never guesses.
    """
    from repro.engine.catalog import APP_NAMES
    from repro.engine.request import RunRequest

    if not isinstance(payload, Mapping):
        raise BadRequest(
            f"submission must be a JSON object, "
            f"got {type(payload).__name__}")
    unknown = set(payload) - _PAYLOAD_FIELDS
    if unknown:
        raise BadRequest(
            f"unknown field(s) {sorted(unknown)}; allowed: "
            f"{sorted(_PAYLOAD_FIELDS)}")
    app = payload.get("app")
    if not isinstance(app, str):
        raise BadRequest("missing or non-string 'app'")
    if app.lower() not in APP_NAMES:
        raise BadRequest(
            f"unknown application {app!r}; choose from "
            f"{sorted(APP_NAMES)}")
    sizes = payload.get("sizes") or {}
    if not isinstance(sizes, Mapping):
        raise BadRequest("'sizes' must be an object")
    machine = None
    if payload.get("machine") is not None:
        if not isinstance(payload["machine"], Mapping):
            raise BadRequest("'machine' must be a config object")
        try:
            machine = _machine_from_dict(payload["machine"])
        except (TypeError, ValueError) as error:
            raise BadRequest(f"bad machine config: {error}") from error
    board = None
    if payload.get("board") is not None:
        try:
            board = _board_from_value(payload["board"])
        except (TypeError, ValueError) as error:
            raise BadRequest(f"bad board config: {error}") from error
    faults = None
    if payload.get("faults") is not None:
        faults = _faults_from_value(payload["faults"])
    seed = payload.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise BadRequest("'seed' must be an integer")
    strict = payload.get("strict", False)
    if not isinstance(strict, bool):
        raise BadRequest("'strict' must be a boolean")

    config = config if config is not None else ServiceConfig()
    deadline_s = payload.get("deadline_s")
    if deadline_s is None:
        deadline_s = config.default_deadline_s
    elif (not isinstance(deadline_s, (int, float))
            or isinstance(deadline_s, bool) or deadline_s <= 0):
        raise BadRequest("'deadline_s' must be a positive number")
    deadline_s = min(float(deadline_s), config.max_deadline_s)

    try:
        request = RunRequest.for_app(
            app, sizes=dict(sizes), machine=machine, board=board,
            faults=faults, seed=seed, strict=strict)
    except (TypeError, ValueError) as error:
        raise BadRequest(f"bad request: {error}") from error
    return request, deadline_s


def canonical_payload(payload: Mapping[str, Any]) -> dict:
    """The submission body, normalized for the journal (JSON-safe,
    stable ordering is applied at serialization time)."""
    return {key: payload[key] for key in sorted(payload)
            if key in _PAYLOAD_FIELDS}


def config_as_dict(config: ServiceConfig) -> dict:
    entry = dataclasses.asdict(config)
    entry["retry"] = config.retry.as_dict()
    return entry


__all__ = [
    "BadRequest",
    "JOB_STATES",
    "Job",
    "QueueFull",
    "ServeError",
    "ServiceConfig",
    "ServiceUnavailable",
    "TERMINAL_STATES",
    "canonical_payload",
    "config_as_dict",
    "request_from_payload",
]
