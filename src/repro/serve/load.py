"""Seeded load/soak harness for the experiment service.

Drives a live :class:`~repro.serve.http.ServiceServer` with a seeded
mix of hot and cold submissions at bounded concurrency while the
chaos monkey kills workers, corrupts cache entries, slows and
disconnects clients, and skews the deadline clock -- then checks the
service's promises and writes two documents:

* a ``repro.soak-report/1`` containing only **timing-invariant**
  facts (the seeded request mix, per-digest terminal outcomes,
  configured vs. fired chaos injections, the invariant verdicts), so
  two runs with the same seed produce byte-identical reports;
* optional ``repro.serve-load/1`` lines in the perf-history store
  carrying the wall-clock side (hot vs. cold latency percentiles,
  throughput), which is *expected* to vary run to run and therefore
  lives outside the byte-stable report.

The invariants asserted (and reported):

* **no lost jobs** -- every job the journal accepted reaches a
  terminal journal event;
* **digest integrity** -- every artifact served or stored verifies
  against the digest that addresses it (a corrupted entry may cost a
  re-execution, never a wrong answer);
* **chaos accounting** -- every configured injection actually fired.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from typing import Any

from repro.serve.chaos import ChaosMonkey, get_chaos_plan
from repro.serve.http import ServiceServer, http_request
from repro.serve.journal import TERMINAL_EVENTS
from repro.serve.models import ServiceConfig
from repro.serve.service import ExperimentService
from repro.serve.slo import (build_slo_block, latency_block,
                             stable_projection)

#: Version tag on the byte-stable soak report.
SOAK_SCHEMA = "repro.soak-report/1"

#: Version tag on wall-clock load lines in the perf-history store.
LOAD_SCHEMA = "repro.serve-load/1"

#: Seeded cold payload variants (small, so a soak stays in CI budget).
_COLD_VARIANTS = (
    {"app": "depth", "sizes": {"width": 48, "height": 32}},
    {"app": "qrd", "sizes": {"rows": 48, "cols": 12}},
    {"app": "depth", "sizes": {"width": 56, "height": 32}},
    {"app": "qrd", "sizes": {"rows": 64, "cols": 12}},
    {"app": "depth", "sizes": {"width": 64, "height": 32}},
    {"app": "qrd", "sizes": {"rows": 80, "cols": 12}},
)


def build_request_mix(seed: int = 0, requests: int = 200,
                      cold_digests: int = 4) -> list[dict]:
    """The seeded submission list: ``requests`` payloads drawn over
    ``cold_digests`` distinct request digests, so early submissions
    are cold and the long tail hammers the hot artifact path."""
    if not 1 <= cold_digests <= len(_COLD_VARIANTS):
        raise ValueError(
            f"cold_digests must be in 1..{len(_COLD_VARIANTS)}, "
            f"got {cold_digests}")
    rng = random.Random(seed)
    variants = [dict(variant, deadline_s=120.0)
                for variant in _COLD_VARIANTS[:cold_digests]]
    mix = []
    for index in range(requests):
        if index < cold_digests:
            # Seed every distinct digest once, in order, so each is
            # genuinely cold exactly once per fresh data dir.
            mix.append(variants[index])
        else:
            mix.append(variants[rng.randrange(cold_digests)])
    return mix


def _percentiles(samples: list[float]) -> dict[str, float]:
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)

    def at(q: float) -> float:
        return ordered[min(len(ordered) - 1,
                           int(q * len(ordered)))]

    return {
        "count": len(ordered),
        "mean_ms": round(sum(ordered) / len(ordered) * 1e3, 3),
        "p50_ms": round(at(0.50) * 1e3, 3),
        "p90_ms": round(at(0.90) * 1e3, 3),
        "p99_ms": round(at(0.99) * 1e3, 3),
        "max_ms": round(ordered[-1] * 1e3, 3),
    }


def _payload_key(payload: dict) -> str:
    return json.dumps(
        {key: payload[key] for key in sorted(payload)
         if key != "deadline_s"},
        sort_keys=True, separators=(",", ":"))


async def _drive_one(server: ServiceServer, monkey: ChaosMonkey,
                     index: int, payload: dict,
                     record: dict) -> None:
    """Submit one request, honouring the chaos client behaviour for
    this (1-based) request index, retrying admission refusals."""
    behaviour = monkey.client_behaviour(index)
    if behaviour == "disconnect":
        status, _, _ = await http_request(
            server.host, server.port, "POST", "/v1/jobs", payload,
            disconnect=True)
        record["fate"] = "client_aborted"
        return
    slow_s = monkey.slow_delay_s if behaviour == "slow" else 0.0
    started = time.monotonic()
    for _attempt in range(50):
        status, headers, document = await http_request(
            server.host, server.port, "POST", "/v1/jobs", payload,
            slow_s=slow_s)
        if status in (429, 503):
            # Honour the advertised backpressure, scaled down so a
            # soak converges quickly; the retry count is wall-clock
            # dependent and deliberately not reported.
            retry_after = float(headers.get("retry-after", "1"))
            await asyncio.sleep(min(retry_after, 0.25))
            continue
        break
    record["status"] = status
    if status == 200:
        record["fate"] = "hot"
        record["job_id"] = document["job"]["id"]
        record["digest"] = document["job"]["digest"]
        record["latency_s"] = time.monotonic() - started
        return
    if status != 202:
        record["fate"] = f"refused_{status}"
        return
    record["fate"] = "cold"
    record["job_id"] = document["job"]["id"]
    record["digest"] = document["job"]["digest"]
    # Poll to terminal: cold latency covers queue + execution.
    job_id = record["job_id"]
    while True:
        status, _, document = await http_request(
            server.host, server.port, "GET", f"/v1/jobs/{job_id}")
        if status == 200 and document["job"]["state"] in (
                "completed", "failed"):
            record["terminal"] = document["job"]["state"]
            break
        await asyncio.sleep(0.05)
    record["latency_s"] = time.monotonic() - started


async def run_soak(*, seed: int = 0, requests: int = 200,
                   cold_digests: int = 4, concurrency: int = 8,
                   chaos: str = "ci-soak",
                   data_dir: str | None = None,
                   workers: int = 2,
                   history: str | None = None,
                   queue_limit: int = 64,
                   metrics_out: str | None = None,
                   trace_out: str | None = None) -> dict[str, Any]:
    """One full soak: returns the ``repro.soak-report/1`` dict.

    ``data_dir`` should be a *fresh* directory (the default tempdir
    is) -- byte-identical reruns rely on every digest starting cold.

    ``metrics_out`` saves two real ``GET /metrics`` scrapes: a
    mid-soak one (taken over HTTP once half the requests have
    resolved; written to ``<metrics_out>.mid``, format-validated
    only) and a final post-drain one (written to ``metrics_out``;
    its counter totals are the cross-rerun determinism surface the
    CI job compares).  ``trace_out`` traces the first execution end
    to end and writes the stitched cross-process Perfetto document.
    """
    plan = get_chaos_plan(chaos).with_seed(seed)
    monkey = ChaosMonkey(plan)
    config = ServiceConfig(data_dir=data_dir, workers=workers,
                           queue_limit=queue_limit,
                           default_deadline_s=120.0,
                           journal_fsync=False,
                           trace_jobs=1 if trace_out else 0)
    service = ExperimentService(config, chaos=monkey)
    server = ServiceServer(service)
    await server.start()
    mix = build_request_mix(seed=seed, requests=requests,
                            cold_digests=cold_digests)
    records: list[dict] = [{"index": index + 1,
                            "key": _payload_key(payload)}
                           for index, payload in enumerate(mix)]
    gate = asyncio.Semaphore(concurrency)
    started = time.monotonic()

    async def bounded(index: int) -> None:
        async with gate:
            await _drive_one(server, monkey, index + 1, mix[index],
                             records[index])

    async def scrape() -> str:
        _, _, text = await http_request(
            server.host, server.port, "GET", "/metrics", raw=True)
        return text

    async def mid_scrape() -> str:
        # A *live* scrape: waits until half the requests resolved,
        # then reads /metrics over real HTTP while load continues.
        target = max(len(mix) // 2, 1)
        while sum(1 for record in records
                  if "fate" in record) < target:
            await asyncio.sleep(0.02)
        return await scrape()

    mid_task = (asyncio.create_task(mid_scrape())
                if metrics_out is not None else None)
    try:
        await asyncio.gather(*(bounded(index)
                               for index in range(len(mix))))
        drained = await service.drain(timeout_s=300.0)
        elapsed = time.monotonic() - started
        report = _build_report(service, monkey, records,
                               seed=seed, requests=requests,
                               cold_digests=cold_digests,
                               chaos=chaos, drained=drained)
        if metrics_out is not None and mid_task is not None:
            with open(metrics_out + ".mid", "w") as handle:
                handle.write(await mid_task)
            with open(metrics_out, "w") as handle:
                handle.write(await scrape())
            mid_task = None
        if trace_out is not None:
            _write_trace(service, trace_out)
        if history is not None:
            _publish_history(history, records, elapsed, seed=seed,
                             requests=requests,
                             concurrency=concurrency, chaos=chaos)
    finally:
        if mid_task is not None:
            mid_task.cancel()
        await server.stop()
    return report


def _write_trace(service: ExperimentService, path: str) -> None:
    """Stitch and save the trace of the first traced job (the one
    that consumed the ``trace_jobs`` budget), if any completed."""
    for job_id in sorted(service._tracers):
        document = service.stitched_trace(job_id)
        if document is not None:
            with open(path, "w") as handle:
                json.dump(document, handle)
            return


def _build_report(service: ExperimentService, monkey: ChaosMonkey,
                  records: list[dict], *, seed: int, requests: int,
                  cold_digests: int, chaos: str,
                  drained: bool) -> dict[str, Any]:
    # The journal is the authority on the lost-job invariant: every
    # accepted job must carry a terminal event, including jobs whose
    # client vanished before learning the id.
    folded = service.journal.fold()
    unresolved = sorted(job_id for job_id, record in folded.items()
                        if record["state"] not in TERMINAL_EVENTS)
    digests: dict[str, dict[str, Any]] = {}
    for record in folded.values():
        digest = record.get("digest")
        if not digest:
            continue
        slot = digests.setdefault(
            digest, {"jobs": 0, "states": {}})
        slot["jobs"] += 1
        state = record["state"]
        slot["states"][state] = slot["states"].get(state, 0) + 1
    wrong_digest = 0
    verified = 0
    for digest in sorted(digests):
        envelope = service.artifacts.load(digest)
        if envelope is None:
            continue
        verified += 1
        if envelope.get("digest") != digest:
            wrong_digest += 1
    chaos_summary = monkey.summary()
    chaos_ok = (chaos_summary["configured"]
                == chaos_summary["fired"])
    mix_keys: dict[str, int] = {}
    aborted = 0
    for record in records:
        mix_keys[record["key"]] = mix_keys.get(record["key"], 0) + 1
        if record.get("fate") == "client_aborted":
            aborted += 1
    # Per-digest terminal verdict, sorted -- deterministic because
    # chaos is counted, deadlines are generous and retries absorb
    # every injected infrastructure failure.
    digest_block = {
        digest: {"jobs": digests[digest]["jobs"],
                 "states": {state: digests[digest]["states"][state]
                            for state in sorted(
                                digests[digest]["states"])}}
        for digest in sorted(digests)}
    completed = sum(1 for record in folded.values()
                    if record["state"] == "completed")
    failed = sum(1 for record in folded.values()
                 if record["state"] == "failed")
    return {
        "schema": SOAK_SCHEMA,
        "seed": seed,
        "requests": requests,
        "cold_digests": cold_digests,
        "request_mix": {key: mix_keys[key]
                        for key in sorted(mix_keys)},
        "client_aborted": aborted,
        "chaos": chaos_summary,
        "digests": digest_block,
        "invariants": {
            "accepted_jobs": len(folded),
            "unresolved_jobs": unresolved,
            "no_lost_jobs": drained and not unresolved,
            "wrong_digest_serves": wrong_digest,
            "digest_integrity": wrong_digest == 0,
            "artifacts_verified": verified,
            "chaos_fired_matches_configured": chaos_ok,
        },
        "slo": build_slo_block(
            accepted=len(folded), completed=completed,
            failed=failed, unresolved=len(unresolved),
            availability_target=service.config.slo_availability,
            p99_target_ms=service.config.slo_p99_ms,
            latency=latency_block(service.metrics)),
    }


def _publish_history(history: str, records: list[dict],
                     elapsed_s: float, *, seed: int, requests: int,
                     concurrency: int, chaos: str) -> None:
    """Wall-clock percentiles -> ``repro.serve-load/1`` history line
    (the flock-guarded store; see :mod:`repro.obs.history`)."""
    from repro.obs.history import append_entries

    hot = [record["latency_s"] for record in records
           if record.get("fate") == "hot"
           and "latency_s" in record]
    cold = [record["latency_s"] for record in records
            if record.get("fate") == "cold"
            and "latency_s" in record]
    entry = {
        "schema": LOAD_SCHEMA,
        "kind": "serve-load",
        "seed": seed,
        "requests": requests,
        "concurrency": concurrency,
        "chaos_plan": chaos,
        "elapsed_s": round(elapsed_s, 3),
        "throughput_rps": round(len(records) / max(elapsed_s, 1e-9),
                                3),
        "hot": _percentiles(hot),
        "cold": _percentiles(cold),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                   time.gmtime()),
    }
    append_entries(history, [entry])


def soak_report_bytes(report: dict[str, Any]) -> bytes:
    """Canonical serialization -- the byte-identity surface."""
    return (json.dumps(report, sort_keys=True, indent=2)
            + "\n").encode()


__all__ = [
    "LOAD_SCHEMA",
    "SOAK_SCHEMA",
    "build_request_mix",
    "run_soak",
    "soak_report_bytes",
    "stable_projection",
]
