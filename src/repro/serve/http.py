"""Minimal asyncio HTTP/1.1 front end for the experiment service.

Pure standard library (``asyncio.start_server``): the service must
run in the bare container.  One request per connection
(``Connection: close``), every read guarded by the configured I/O
timeout so a slow or wedged client can never pin a handler.

Routes::

    POST /v1/jobs                submit (200 hot hit / 202 accepted /
                                 400 / 429+Retry-After / 503+Retry-After)
    GET  /v1/jobs/{id}           job status (200 / 404)
    GET  /v1/jobs/{id}/artifact  finished artifact (200 / 404 / 409)
    GET  /v1/jobs/{id}/trace     stitched Perfetto trace (200/404/409)
    GET  /v1/artifacts/{digest}  artifact by request digest (200 / 404)
    GET  /healthz                liveness
    GET  /readyz                 readiness (503 while shedding)
    GET  /v1/stats               service + engine counters
    GET  /metrics                Prometheus text exposition v0.0.4

Every request (except ``GET /metrics`` -- a scrape must not count
itself, or two scrapes of an idle service could never be
byte-identical) is counted into ``serve_http_requests_total`` /
``serve_http_latency_ms`` under a bounded route *template* label,
and optionally emitted as one structured JSON access-log line.

The module also ships :func:`http_request`, the tiny asyncio client
the load/chaos harness drives the server with -- including its
deliberately *mis*-behaving modes (slow writes, mid-request
disconnects).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable

from repro.obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.serve.models import (
    BadRequest,
    QueueFull,
    ServiceUnavailable,
)
from repro.serve.service import ExperimentService

#: Largest request body the server will read.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    409: "Conflict", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


#: Fixed routes that are their own metric label.
_FIXED_ROUTES = ("/healthz", "/readyz", "/v1/stats", "/v1/jobs",
                 "/metrics")


def route_template(path: str) -> str:
    """Collapse a request path to its bounded route-label template.

    Label cardinality must be a reviewable constant, so ids and
    digests never reach a label value; anything unrecognised is
    ``other``.
    """
    if path in _FIXED_ROUTES:
        return path
    if path.startswith("/v1/jobs/"):
        if path.endswith("/artifact"):
            return "/v1/jobs/{id}/artifact"
        if path.endswith("/trace"):
            return "/v1/jobs/{id}/trace"
        return "/v1/jobs/{id}"
    if path.startswith("/v1/artifacts/"):
        return "/v1/artifacts/{digest}"
    return "other"


class ServiceServer:
    """Binds an :class:`ExperimentService` to a TCP port.

    ``access_log`` is an optional callable receiving one dict per
    handled request (method, path, status, latency_ms, plus
    job_id/digest when the response carried a job); the CLI's
    ``--log-json`` wires it to a JSON-lines printer.
    """

    def __init__(self, service: ExperimentService,
                 host: str = "127.0.0.1", port: int = 0,
                 access_log: Callable[[dict], None] | None = None
                 ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.access_log = access_log
        self._server: asyncio.AbstractServer | None = None
        m = service.metrics
        self._m_requests = m.counter(
            "serve_http_requests_total",
            "handled HTTP requests (excluding /metrics scrapes)",
            labels=("method", "route", "status"))
        self._m_latency = m.histogram(
            "serve_http_latency_ms",
            "request handling latency (excluding /metrics scrapes)",
            labels=("route",))

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        timeout = self.service.config.io_timeout_s
        started = time.perf_counter()
        method: str | None = None
        path: str | None = None
        sent: tuple[int, Any] | None = None

        def send_error(status: int, message: str,
                       retry_after_s: float | None = None) -> None:
            nonlocal sent
            sent = (status, {"error": message})
            self._write_error(writer, status, message, retry_after_s)

        try:
            try:
                method, path, headers = await asyncio.wait_for(
                    self._read_head(reader), timeout=timeout)
                body = await asyncio.wait_for(
                    self._read_body(reader, headers), timeout=timeout)
            except asyncio.TimeoutError:
                send_error(408, "client too slow; dropping request")
                return
            except _HttpError as error:
                send_error(error.status, str(error))
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request
            try:
                status, document, retry_after = self._route(
                    method, path, body)
            except _HttpError as error:
                send_error(error.status, str(error),
                           error.retry_after_s)
                return
            except Exception as error:   # never kill the handler task
                send_error(500, f"{type(error).__name__}: {error}")
                return
            sent = (status, document)
            self._write(writer, status, document, retry_after)
        finally:
            self._observe(method, path, sent,
                          time.perf_counter() - started)
            try:
                await asyncio.wait_for(writer.drain(),
                                       timeout=timeout)
            except (asyncio.TimeoutError, ConnectionError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _observe(self, method: str | None, path: str | None,
                 sent: tuple[int, Any] | None,
                 elapsed_s: float) -> None:
        """Per-route metrics + one access-log entry for a handled
        request.  Requests dropped before a request line parsed (or
        answered to a vanished client) are not observable; /metrics
        scrapes are deliberately excluded from the counters so idle
        scrapes stay byte-identical."""
        if method is None or path is None or sent is None:
            return
        status, document = sent
        latency_ms = elapsed_s * 1e3
        route = route_template(path)
        if path != "/metrics":
            self._m_requests.labels(method=method, route=route,
                                    status=str(status)).inc()
            self._m_latency.labels(route=route).observe(latency_ms)
        if self.access_log is None:
            return
        entry: dict[str, Any] = {
            "ts": round(time.time(), 3),
            "method": method,
            "path": path,
            "status": status,
            "latency_ms": round(latency_ms, 3),
        }
        job = (document.get("job")
               if isinstance(document, dict) else None)
        if isinstance(job, dict):
            if job.get("id") is not None:
                entry["job_id"] = job["id"]
            if job.get("digest") is not None:
                entry["digest"] = job["digest"]
        try:
            self.access_log(entry)
        except Exception:
            pass   # a broken log sink must never kill the handler

    async def _read_head(self, reader: asyncio.StreamReader
                         ) -> tuple[str, str, dict[str, str]]:
        request_line = (await reader.readline()).decode(
            "latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line "
                                  f"{request_line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: dict[str, str]) -> bytes:
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body of {length} bytes exceeds "
                                  f"the {MAX_BODY_BYTES} byte limit")
        if length <= 0:
            return b""
        return await reader.readexactly(length)

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    def _route(self, method: str, path: str, body: bytes
               ) -> tuple[int, Any, float | None]:
        service = self.service
        if path == "/healthz" and method == "GET":
            return 200, service.health(), None
        if path == "/metrics" and method == "GET":
            return 200, service.render_metrics(), None
        if path == "/readyz" and method == "GET":
            ready, document = service.readiness()
            return (200 if ready else 503), document, None
        if path == "/v1/stats" and method == "GET":
            return 200, {
                "serve": service.stats.as_dict(),
                "breaker": service.breaker.as_dict(),
                "engine": service.engine_stats(),
                "backend": service.config.backend,
                "artifacts": service.artifacts.stats(),
            }, None
        if path == "/v1/jobs" and method == "POST":
            return self._submit(body)
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/artifact"):
                return self._artifact(rest[:-len("/artifact")])
            if rest.endswith("/trace"):
                return self._trace(rest[:-len("/trace")])
            return self._status(rest)
        if path.startswith("/v1/artifacts/") and method == "GET":
            return self._artifact_by_digest(
                path[len("/v1/artifacts/"):])
        if path in _FIXED_ROUTES:
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {method} {path}")

    def _submit(self, body: bytes) -> tuple[int, dict, float | None]:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _HttpError(400, f"body is not JSON: {error}")
        try:
            job, envelope = self.service.submit(payload)
        except BadRequest as error:
            raise _HttpError(400, str(error))
        except QueueFull as error:
            raise _HttpError(429, str(error),
                             retry_after_s=error.retry_after_s)
        except ServiceUnavailable as error:
            raise _HttpError(503, str(error),
                             retry_after_s=error.retry_after_s)
        if envelope is not None:
            return 200, {"job": job.as_dict(),
                         "artifact": envelope}, None
        return 202, {"job": job.as_dict()}, None

    def _status(self, job_id: str) -> tuple[int, dict, float | None]:
        job = self.service.status(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return 200, {"job": job.as_dict()}, None

    def _artifact(self, job_id: str) -> tuple[int, dict, float | None]:
        job, envelope = self.service.artifact_for(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if job.state == "failed":
            return 200, {"job": job.as_dict()}, None
        if not job.terminal:
            raise _HttpError(
                409, f"job {job_id} is {job.state}; poll "
                     f"/v1/jobs/{job_id} until it is terminal")
        if envelope is None:
            raise _HttpError(
                404, f"artifact for job {job_id} is missing or "
                     "failed verification; resubmit the request")
        return 200, {"job": job.as_dict(), "artifact": envelope}, None

    def _trace(self, job_id: str) -> tuple[int, dict, float | None]:
        job = self.service.status(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        document = self.service.stitched_trace(job_id)
        if document is None:
            raise _HttpError(
                409, f"job {job_id} is {job.state}; the trace is "
                     f"stitched once the job is terminal")
        return 200, document, None

    def _artifact_by_digest(self, digest: str
                            ) -> tuple[int, dict, float | None]:
        envelope = self.service.artifacts.load(digest)
        if envelope is None:
            raise _HttpError(404, "no verified artifact for digest "
                                  f"{digest!r}")
        return 200, {"artifact": envelope}, None

    # ------------------------------------------------------------------
    # Response writing.
    # ------------------------------------------------------------------
    def _write(self, writer: asyncio.StreamWriter, status: int,
               document: Any,
               retry_after_s: float | None = None) -> None:
        if isinstance(document, str):
            # Pre-rendered text body (the /metrics exposition).
            body = document.encode("utf-8")
            content_type = METRICS_CONTENT_TYPE
        else:
            body = (json.dumps(document, sort_keys=True)
                    + "\n").encode()
            content_type = "application/json"
        head = [f"HTTP/1.1 {status} "
                f"{_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        if retry_after_s is not None:
            head.append("Retry-After: "
                        f"{max(1, round(retry_after_s))}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)

    def _write_error(self, writer: asyncio.StreamWriter, status: int,
                     message: str,
                     retry_after_s: float | None = None) -> None:
        try:
            self._write(writer, status, {"error": message},
                        retry_after_s)
        except (ConnectionError, OSError):
            pass


# ----------------------------------------------------------------------
# Client (used by the load/chaos harness and the CLI examples).
# ----------------------------------------------------------------------
async def http_request(host: str, port: int, method: str, path: str,
                       body: Any = None, *, slow_s: float = 0.0,
                       disconnect: bool = False,
                       timeout_s: float = 30.0,
                       raw: bool = False
                       ) -> tuple[int, dict[str, str], Any]:
    """One HTTP exchange; returns ``(status, headers, document)``.

    ``slow_s`` sleeps between the head and the body to emulate a slow
    client; ``disconnect`` closes the socket mid-request (both are
    chaos-harness behaviours).  A disconnect reports status ``0``.
    With ``raw=True`` the response body is returned as decoded text
    instead of parsed JSON (used for ``/metrics`` scrapes, whose
    byte-level stability is part of the contract).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        data = b""
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode()
        head = [f"{method.upper()} {path} HTTP/1.1",
                f"Host: {host}:{port}",
                "Content-Type: application/json",
                f"Content-Length: {len(data)}",
                "Connection: close"]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
        await writer.drain()
        if disconnect:
            return 0, {}, None
        if slow_s > 0:
            await asyncio.sleep(slow_s)
        if data:
            writer.write(data)
            await writer.drain()
        blob = await asyncio.wait_for(reader.read(),
                                      timeout=timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_blob, _, body_blob = blob.partition(b"\r\n\r\n")
    lines = head_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1]) if lines and lines[0] else 0
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
    document: Any = None
    if body_blob:
        if raw:
            document = body_blob.decode("utf-8", errors="replace")
        else:
            try:
                document = json.loads(body_blob.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                document = None
    return status, headers, document


__all__ = ["MAX_BODY_BYTES", "ServiceServer", "http_request",
           "route_template"]
