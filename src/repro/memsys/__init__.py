"""Memory-system substrate: SDRAM channels, address generators, controller.

Imagine's memory system has two address generators (AGs) feeding a
memory controller with a small on-chip reorder/cache structure in front
of four 100 MHz SDRAM channels (1.6 GB/s peak).  This package models
all of it at the fidelity the paper's memory experiments need:
per-bank open-row timing, channel interleaving, the controller's small
cache that captures narrow indexed ranges, and the hardware precharge
bug of Section 3.3.
"""

from repro.memsys.address_gen import AddressGenerator, expand_pattern
from repro.memsys.controller import MemorySystem, StreamMeasurement
from repro.memsys.dram import DramModel
from repro.memsys.patterns import (
    AccessPattern,
    indexed,
    strided,
    unit_stride,
)

__all__ = [
    "AddressGenerator",
    "expand_pattern",
    "MemorySystem",
    "StreamMeasurement",
    "DramModel",
    "AccessPattern",
    "indexed",
    "strided",
    "unit_stride",
]
