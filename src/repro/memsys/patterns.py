"""Memory access patterns used by the paper's experiments.

Section 3.3 measures six patterns: unit stride with record size one,
stride 2 with record size one, stride 12 with record size 4, and
indexed random addresses over ranges of 16 words, 2K words and
4M words.  :func:`unit_stride`, :func:`strided` and :func:`indexed`
build them; applications use the same constructors for their loads
and stores.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AccessPattern:
    """A stream load/store's address sequence, described compactly.

    ``kind`` is ``"strided"`` or ``"indexed"``.  For strided patterns
    consecutive records start ``stride`` words apart and each record is
    ``record_words`` consecutive words.  For indexed patterns each
    record starts at a pseudo-random word offset in
    ``[0, index_range_words)``.
    """

    kind: str
    words: int
    start: int = 0
    stride: int = 1
    record_words: int = 1
    index_range_words: int = 0
    seed: int = 1234
    #: Explicit record start offsets for gather/scatter with known
    #: indices (e.g. framebuffer writes); random offsets over
    #: ``index_range_words`` are generated when absent.
    indices: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("strided", "indexed"):
            raise ValueError(f"unknown pattern kind {self.kind!r}")
        if self.words <= 0:
            raise ValueError("pattern must transfer at least one word")
        if self.record_words < 1:
            raise ValueError("record_words must be >= 1")
        if self.kind == "indexed" and self.index_range_words < 1:
            raise ValueError("indexed pattern needs a positive range")
        if self.indices is not None and self.kind != "indexed":
            raise ValueError("explicit indices need an indexed pattern")

    @property
    def records(self) -> int:
        return (self.words + self.record_words - 1) // self.record_words

    def cache_resident(self, cache_words: int) -> bool:
        """Whether the controller's on-chip cache captures the pattern."""
        return (self.kind == "indexed"
                and self.index_range_words <= cache_words)

    def signature(self) -> tuple:
        """Steady-state behaviour key (length-independent), for caching."""
        if self.kind == "strided":
            return ("strided", self.stride, self.record_words)
        return ("indexed", self.index_range_words, self.record_words)


def unit_stride(words: int, start: int = 0) -> AccessPattern:
    """Sequential words: the paper's "record 1, stride 1"."""
    return AccessPattern(kind="strided", words=words, start=start)


def strided(words: int, stride: int, record_words: int = 1,
            start: int = 0) -> AccessPattern:
    """Records of ``record_words`` words, ``stride`` words apart."""
    return AccessPattern(kind="strided", words=words, start=start,
                         stride=stride, record_words=record_words)


def indexed(words: int, index_range_words: int, record_words: int = 1,
            seed: int = 1234, start: int = 0,
            indices=None) -> AccessPattern:
    """Gather/scatter over offsets within a range.

    Offsets are pseudo-random unless ``indices`` (explicit record
    start offsets, relative to ``start``) is given.
    """
    if indices is not None:
        indices = tuple(int(i) for i in indices)
    return AccessPattern(kind="indexed", words=words, start=start,
                         record_words=record_words,
                         index_range_words=index_range_words, seed=seed,
                         indices=indices)
