"""Address generators.

Each of Imagine's two AGs walks a stream descriptor (strided) or an
index stream (gather/scatter) and emits word addresses to the memory
controller at up to ``ag_peak_words_per_cycle``.  ``expand_pattern``
materialises the exact address sequence an AG produces for a pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memsys.patterns import AccessPattern
from repro.obs.tracer import NULL_TRACER, Tracer, ag_track


def expand_pattern(pattern: AccessPattern,
                   max_words: int | None = None) -> np.ndarray:
    """Word addresses, in issue order, for ``pattern``.

    ``max_words`` truncates the expansion (used to sample very long
    streams whose steady-state rate is extrapolated).
    """
    words = pattern.words if max_words is None else min(
        pattern.words, max_words)
    record = pattern.record_words
    records = (words + record - 1) // record
    offsets = np.arange(record, dtype=np.int64)
    if pattern.kind == "strided":
        starts = (pattern.start
                  + np.arange(records, dtype=np.int64) * pattern.stride)
    elif pattern.indices is not None:
        starts = pattern.start + np.asarray(pattern.indices[:records],
                                            dtype=np.int64)
    else:
        rng = np.random.default_rng(pattern.seed)
        span = max(1, pattern.index_range_words - record + 1)
        starts = rng.integers(0, span, size=records, dtype=np.int64)
    addresses = (starts[:, None] + offsets[None, :]).reshape(-1)
    return addresses[:words]


@dataclass
class AddressGenerator:
    """One AG: a rate-limited address source for a single stream."""

    ident: int
    peak_words_per_cycle: float = 2.0
    tracer: Tracer = field(default=NULL_TRACER, repr=False)

    @property
    def track(self) -> str:
        return ag_track(self.ident)

    def generation_cycles(self, words: int) -> float:
        """Core cycles the AG itself needs to emit ``words`` addresses."""
        return words / self.peak_words_per_cycle

    def trace_stream(self, name: str, start: float, end: float,
                     **args) -> None:
        """Record one stream this AG walked, as a span on its track."""
        if self.tracer.enabled:
            self.tracer.span(self.track, name, start, end, **args)
