"""SDRAM channel timing model.

Models Imagine's four 100 MHz SDRAM channels with per-bank open-row
state: a row hit transfers one word per memory-bus cycle; a row miss
pays precharge + activate + CAS latency, overlappable with transfers
on other banks.  Words interleave across channels (``addr % channels``)
so unit-stride streams engage all four channels while a stride-2 word
stream only engages two -- the effect Figure 9 measures.

The "performance bug in the on-chip memory controller which causes
unnecessary DRAM precharges between some accesses to the same DRAM
row" (Section 3.3) is modeled by :class:`PrechargeFault`: a forced
precharge after every ``interval`` consecutive same-row accesses to a
bank, fired with ``probability`` (the hardware board behaves like
``probability=1.0`` at the calibrated interval; fault plans explore
the wider family).  :class:`ChannelFault` degrades or disables
individual channels, the knob behind bandwidth-degradation sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.config import DramConfig


@dataclass(frozen=True)
class PrechargeFault:
    """Parameterized memory-controller precharge bug.

    Every ``interval`` consecutive same-row accesses to a bank, an
    unnecessary precharge is forced with ``probability``.  ``seed``
    makes sub-1.0 probabilities reproducible; the random stream is
    derived per (channel, address-sequence) so results do not depend
    on service order.
    """

    interval: int
    probability: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"precharge interval must be >= 1, "
                             f"got {self.interval}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"precharge probability must be in [0, 1], "
                             f"got {self.probability}")

    @classmethod
    def from_config(cls, config: DramConfig) -> "PrechargeFault":
        """The board's calibrated Section-3.3 bug (always fires)."""
        return cls(interval=config.precharge_bug_interval,
                   probability=1.0)

    def rng(self, channel: int, accesses: int) -> random.Random | None:
        """Deterministic per-channel random stream (None when certain)."""
        if self.probability >= 1.0:
            return None
        return random.Random(f"precharge:{self.seed}:{channel}:{accesses}")


@dataclass(frozen=True)
class ChannelFault:
    """Per-channel service degradation (``rate`` < 1) for fault plans.

    ``rates[i]`` scales channel ``i``'s service rate; a missing entry
    means the channel is healthy.  Whole-channel *loss* is modelled
    structurally (fewer channels in :class:`DramConfig`) so address
    interleaving stays physical; this class covers the softer
    "channel runs slow" family.
    """

    rates: dict[int, float]

    def __post_init__(self) -> None:
        for channel, rate in self.rates.items():
            if not 0.0 < rate <= 1.0:
                raise ValueError(
                    f"channel {channel} rate must be in (0, 1], "
                    f"got {rate}")

    def factor(self, channel: int) -> float:
        return self.rates.get(channel, 1.0)


@dataclass(frozen=True)
class DramStats:
    """Outcome of servicing one address sequence."""

    words: int
    mem_cycles: int
    row_hits: int
    row_misses: int
    forced_precharges: int
    #: Busy memory-bus cycles per channel (index = channel id); the
    #: service time is their max since channels run in parallel.
    per_channel_cycles: tuple[int, ...] = ()

    @property
    def words_per_mem_cycle(self) -> float:
        if self.mem_cycles == 0:
            return 0.0
        return self.words / self.mem_cycles


class DramModel:
    """Services in-order word-address sequences, channel by channel."""

    def __init__(self, config: DramConfig,
                 precharge_bug: bool = False,
                 precharge: PrechargeFault | None = None,
                 channel_fault: ChannelFault | None = None) -> None:
        self.config = config
        if precharge is None and precharge_bug:
            precharge = PrechargeFault.from_config(config)
        self.precharge = precharge
        self.channel_fault = channel_fault

    @property
    def precharge_bug(self) -> bool:
        """Whether any precharge fault is active (legacy flag view)."""
        return self.precharge is not None

    # ------------------------------------------------------------------
    # Address mapping.
    # ------------------------------------------------------------------
    def map_addresses(self, addresses: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split word addresses into (channel, bank, row) coordinates."""
        config = self.config
        channel = addresses % config.channels
        within = addresses // config.channels
        row_id = within // config.row_words
        bank = row_id % config.banks_per_channel
        return channel, bank, row_id

    # ------------------------------------------------------------------
    # Timing.
    # ------------------------------------------------------------------
    def service(self, addresses: np.ndarray,
                reorder_window: int | None = None) -> DramStats:
        """Memory cycles to service ``addresses`` in (reordered) order.

        The controller's reorder window groups accesses to the same
        (bank, row) within a sliding window, as real stream memory
        controllers do to raise row-hit rates.
        """
        if len(addresses) == 0:
            return DramStats(0, 0, 0, 0, 0)
        config = self.config
        window = (config.reorder_window if reorder_window is None
                  else reorder_window)
        channel, bank, row_id = self.map_addresses(np.asarray(addresses))
        total_cycles = 0
        hits = misses = forced = 0
        per_channel = [0] * config.channels
        for ch in range(config.channels):
            mask = channel == ch
            if not mask.any():
                continue
            banks = bank[mask]
            rows = row_id[mask]
            if window > 1:
                banks, rows = _reorder(banks, rows, window)
            cycles, ch_hits, ch_misses, ch_forced = self._channel_cycles(
                banks, rows, channel=ch)
            if self.channel_fault is not None:
                cycles = int(round(cycles / self.channel_fault.factor(ch)))
            per_channel[ch] = cycles
            total_cycles = max(total_cycles, cycles)
            hits += ch_hits
            misses += ch_misses
            forced += ch_forced
        return DramStats(len(addresses), total_cycles, hits, misses,
                         forced, tuple(per_channel))

    def _channel_cycles(self, banks: np.ndarray, rows: np.ndarray,
                        channel: int = 0) -> tuple[int, int, int, int]:
        config = self.config
        nbanks = config.banks_per_channel
        miss_latency = config.t_rp + config.t_rcd + config.t_cl
        first_latency = config.t_rcd + config.t_cl
        bus = 0
        bank_ready = [0] * nbanks
        open_row = [-1] * nbanks
        run_length = [0] * nbanks
        hits = misses = forced = 0
        fault = self.precharge
        closed_page = config.page_policy == "closed"
        interval = fault.interval if fault is not None else 0
        rng = fault.rng(channel, len(banks)) if fault is not None else None
        for b, r in zip(banks.tolist(), rows.tolist()):
            hit = open_row[b] == r and not closed_page
            if (hit and fault is not None and run_length[b] >= interval
                    and (rng is None or rng.random() < fault.probability)):
                hit = False
                forced += 1
                run_length[b] = 0
            if hit:
                start = max(bus, bank_ready[b])
                bus = start + 1
                bank_ready[b] = bus
                run_length[b] += 1
                hits += 1
            else:
                latency = miss_latency if open_row[b] >= 0 else first_latency
                ready = bank_ready[b] + latency
                start = max(ready, bus)
                bus = start + 1
                bank_ready[b] = bus
                # Closed-page: the bank auto-precharges after the
                # access, so the next one pays activate+CAS again.
                open_row[b] = -1 if closed_page else r
                run_length[b] = 1
                misses += 1
        return bus, hits, misses, forced


def _reorder(banks: np.ndarray, rows: np.ndarray,
             window: int) -> tuple[np.ndarray, np.ndarray]:
    """Stable same-row grouping within a sliding window.

    One lexsort over (window chunk, bank, row, arrival index) equals
    a per-chunk stable sort by (bank, row): the chunk id pins each
    access to its window and the arrival index breaks ties, so the
    permutation is total and order-deterministic.
    """
    n = len(banks)
    arrival = np.arange(n)
    index = np.lexsort((arrival, rows, banks, arrival // window))
    return banks[index], rows[index]
