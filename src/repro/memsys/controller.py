"""Memory controller: on-chip cache, stream measurement, AG sharing.

Two jobs live here.

1. :class:`MemorySystem` turns an access pattern into a
   :class:`StreamMeasurement`: the stream's exclusive-use duration,
   steady transfer rate, and how much of its traffic actually reaches
   DRAM (the controller's small on-chip cache captures indexed
   patterns over narrow ranges, the Figure 9 "idx range 16" case).
2. :class:`SharedMemoryServer` runs concurrently-active streams from
   the two AGs against the shared DRAM data bus and controller port,
   the processor-sharing model behind Figure 10's two-AG results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.config import MachineConfig
from repro.memsys.address_gen import expand_pattern
from repro.memsys.dram import ChannelFault, DramModel, PrechargeFault
from repro.memsys.patterns import AccessPattern
from repro.obs.tracer import NULL_TRACER, TRACK_DRAM, TRACK_MEMCTRL, Tracer

#: Words sampled from very long streams; beyond this the steady-state
#: rate is extrapolated (the sampled prefix includes all cold misses,
#: so the extrapolation is conservative).
_SAMPLE_WORDS = 8192
#: Fixed pipeline latency from stream-instruction issue to first DRAM
#: data (the paper cites 30-40 cycles per access).
_STARTUP_CYCLES = 36
#: Extra throttle when two DRAM-bound streams interleave at the banks.
_BANK_CONFLICT_FACTOR = 0.9


@dataclass(frozen=True)
class StreamMeasurement:
    """Timing facts for one stream load/store, measured in isolation."""

    words: int
    dram_words: int
    startup_cycles: float
    rate_words_per_cycle: float
    controller_rate: float
    #: Estimated DRAM busy time per channel for the whole stream, in
    #: core cycles (sampled per-channel service cycles scaled to the
    #: full stream length).  Empty for streams the on-chip cache
    #: fully captures.
    per_channel_core_cycles: tuple[float, ...] = ()
    #: Isolated service demand of the whole stream against each
    #: shared resource, in core cycles: the steady rate is
    #: ``words / max`` of these three.  The critical-path projector
    #: uses them to rescale memory-stream durations under what-if
    #: resource scalings.
    dram_core_cycles: float = 0.0
    ag_core_cycles: float = 0.0
    controller_core_cycles: float = 0.0

    @property
    def exclusive_cycles(self) -> float:
        return self.startup_cycles + self.words / self.rate_words_per_cycle

    @property
    def dram_fraction(self) -> float:
        if self.words == 0:
            return 0.0
        return self.dram_words / self.words


class MemorySystem:
    """Pattern measurement against the DRAM model, with caching."""

    def __init__(self, machine: MachineConfig,
                 precharge_bug: bool = False,
                 precharge: PrechargeFault | None = None,
                 channel_fault: ChannelFault | None = None,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.machine = machine
        self.tracer = tracer
        self.dram = DramModel(machine.dram, precharge_bug=precharge_bug,
                              precharge=precharge,
                              channel_fault=channel_fault)
        self._rate_cache: dict[
            tuple, tuple[float, float, dict | None,
                         tuple[float, ...], float]] = {}

    def measure(self, pattern: AccessPattern) -> StreamMeasurement:
        (rate, dram_fraction, dram_sample,
         channel_cycles_per_word,
         dram_cycles_per_word) = self._steady_behaviour(pattern)
        if self.tracer.enabled:
            self.tracer.instant(
                TRACK_MEMCTRL, f"measure {pattern.kind}",
                words=pattern.words,
                rate_words_per_cycle=rate,
                dram_fraction=dram_fraction)
            if dram_sample is not None:
                self.tracer.counter(
                    TRACK_DRAM, "channel busy (sampled mem cycles)",
                    {f"ch{i}": float(cycles) for i, cycles
                     in enumerate(dram_sample["per_channel_cycles"])})
                self.tracer.instant(
                    TRACK_DRAM, f"rows {pattern.kind}",
                    row_hits=dram_sample["row_hits"],
                    row_misses=dram_sample["row_misses"],
                    forced_precharges=dram_sample["forced_precharges"])
        return StreamMeasurement(
            words=pattern.words,
            dram_words=round(pattern.words * dram_fraction),
            startup_cycles=_STARTUP_CYCLES,
            rate_words_per_cycle=rate,
            controller_rate=self.controller_peak,
            per_channel_core_cycles=tuple(
                per_word * pattern.words
                for per_word in channel_cycles_per_word),
            dram_core_cycles=dram_cycles_per_word * pattern.words,
            ag_core_cycles=(pattern.words
                            / self.machine.ag_peak_words_per_cycle),
            controller_core_cycles=(pattern.words
                                    / self.controller_peak),
        )

    @property
    def controller_peak(self) -> float:
        """On-chip controller port capacity, words per core cycle."""
        return self.machine.mem_peak_words_per_cycle

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _steady_behaviour(self, pattern: AccessPattern
                          ) -> tuple[float, float, dict | None,
                                     tuple[float, ...], float]:
        key = pattern.signature() + (min(pattern.words, _SAMPLE_WORDS),)
        if key in self._rate_cache:
            return self._rate_cache[key]
        addresses = expand_pattern(pattern, max_words=_SAMPLE_WORDS)
        dram_addresses = self._filter_cache(pattern, addresses)
        dram_core_cycles = 0.0
        dram_sample: dict | None = None
        channel_cycles_per_word: tuple[float, ...] = ()
        if len(dram_addresses):
            stats = self.dram.service(dram_addresses)
            dram_core_cycles = stats.mem_cycles * self.machine.dram.clock_ratio
            dram_sample = {
                "row_hits": stats.row_hits,
                "row_misses": stats.row_misses,
                "forced_precharges": stats.forced_precharges,
                "per_channel_cycles": stats.per_channel_cycles,
            }
            # Sampled per-channel service time, normalised to core
            # cycles per stream word so measure() can scale it back up
            # to the full (possibly extrapolated) stream length.
            channel_cycles_per_word = tuple(
                float(cycles) * self.machine.dram.clock_ratio
                / len(addresses)
                for cycles in stats.per_channel_cycles)
        ag_cycles = len(addresses) / self.machine.ag_peak_words_per_cycle
        controller_cycles = len(addresses) / self.controller_peak
        cycles = max(dram_core_cycles, ag_cycles, controller_cycles)
        rate = len(addresses) / max(cycles, 1e-9)
        dram_fraction = len(dram_addresses) / len(addresses)
        result = (rate, dram_fraction, dram_sample,
                  channel_cycles_per_word,
                  dram_core_cycles / len(addresses))
        self._rate_cache[key] = result
        return result

    def _filter_cache(self, pattern: AccessPattern,
                      addresses: np.ndarray) -> np.ndarray:
        """Drop accesses the controller's on-chip cache captures.

        Only indexed (gather/scatter) traffic is cached; sequential
        stream traffic bypasses the structure, as on the real chip.
        """
        if pattern.kind != "indexed":
            return addresses
        capacity = self.machine.dram.controller_cache_words
        cache: OrderedDict[int, None] = OrderedDict()
        misses = []
        for addr in addresses.tolist():
            if addr in cache:
                cache.move_to_end(addr)
                continue
            misses.append(addr)
            cache[addr] = None
            if len(cache) > capacity:
                cache.popitem(last=False)
        return np.asarray(misses, dtype=np.int64)


@dataclass
class _ActiveStream:
    measurement: StreamMeasurement
    remaining_words: float
    startup_remaining: float


class SharedMemoryServer:
    """Processor-sharing service model for concurrently active streams.

    Each active stream has an isolated steady rate; when several run,
    DRAM-bound traffic is scaled down to fit the shared data bus
    (with a bank-conflict factor) and all traffic is scaled to fit the
    controller port.  The event-driven processor advances this model
    between events.
    """

    def __init__(self, memory: MemorySystem) -> None:
        self.memory = memory
        self._streams: dict[int, _ActiveStream] = {}

    def start(self, ident: int, measurement: StreamMeasurement) -> None:
        if ident in self._streams:
            raise ValueError(f"stream {ident} already active")
        self._streams[ident] = _ActiveStream(
            measurement, float(measurement.words),
            float(measurement.startup_cycles))

    def active(self) -> list[int]:
        return list(self._streams)

    def current_rates(self) -> dict[int, float]:
        """Words per core cycle per active stream, after sharing."""
        streams = self._streams
        if not streams:
            return {}
        dram_demand = 0.0
        controller_demand = 0.0
        for stream in streams.values():
            rate = stream.measurement.rate_words_per_cycle
            controller_demand += rate
            dram_demand += rate * stream.measurement.dram_fraction
        dram_capacity = self.memory.controller_peak
        dram_streams = sum(
            1 for s in streams.values()
            if s.measurement.dram_fraction > 0.5)
        if dram_streams >= 2:
            dram_capacity *= _BANK_CONFLICT_FACTOR
        scale = 1.0
        if dram_demand > dram_capacity:
            scale = min(scale, dram_capacity / dram_demand)
        if controller_demand > self.memory.controller_peak:
            scale = min(scale, self.memory.controller_peak
                        / controller_demand)
        return {ident: stream.measurement.rate_words_per_cycle * scale
                for ident, stream in streams.items()}

    def advance(self, cycles: float) -> list[int]:
        """Progress all streams by ``cycles``; return completed idents."""
        if cycles < 0:
            raise ValueError("cannot advance backwards")
        done = []
        rates = self.current_rates()
        for ident, stream in self._streams.items():
            remaining = cycles
            if stream.startup_remaining > 0:
                used = min(stream.startup_remaining, remaining)
                stream.startup_remaining -= used
                remaining -= used
            if remaining > 0 and stream.startup_remaining <= 0:
                stream.remaining_words -= rates[ident] * remaining
            if (stream.startup_remaining <= 0
                    and stream.remaining_words <= 1e-9):
                done.append(ident)
        for ident in done:
            del self._streams[ident]
        return done

    def next_completion_delta(self) -> float | None:
        """Cycles until the soonest stream completion, if any.

        Exact while the active set is unchanged (rates are constant
        between events); the event loop re-evaluates at every event.
        """
        rates = self.current_rates()
        best = None
        for ident, stream in self._streams.items():
            rate = rates[ident]
            if rate <= 0:
                continue
            delta = stream.startup_remaining + stream.remaining_words / rate
            if best is None or delta < best:
                best = delta
        return best
