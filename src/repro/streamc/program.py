"""The StreamC stand-in: stream program builder and stream compiler.

A :class:`StreamProgram` is written the way a StreamC program reads:
``load`` brings data from Imagine memory into an SRF stream, ``kernel``
applies a compiled kernel to SRF streams producing new SRF streams,
``store`` writes a stream back to memory, and ``host_read`` models
scalar results flowing back to the host (serializing it).

``build()`` is the stream compiler.  It performs the jobs the paper
lists in Section 2.3: dependency analysis between kernels and stream
loads/stores, SRF allocation and management, stripmining over-length
streams into kernel+restart sequences, descriptor-register (SDR/MAR)
management with reuse, UCR parameter writes, and microcode-load
insertion.  Memory/kernel software pipelining needs no explicit pass:
dependencies are encoded per instruction, so the scoreboard lets loads
run ahead of and underneath kernel execution exactly as on the real
machine.

Kernel calls are also evaluated *functionally* at build time through
each kernel's numpy reference model, so a program computes real
output data alongside its instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import MachineConfig
from repro.core.microcontroller import Microcontroller
from repro.core.srf import StreamRegisterFile
from repro.isa.kernel_ir import KernelGraph
from repro.isa.stream_ops import StreamInstruction, StreamOpType
from repro.isa.vliw import CompiledKernel
from repro.kernelc import compile_kernel
from repro.memsys.address_gen import expand_pattern
from repro.memsys.patterns import AccessPattern, strided, unit_stride
from repro.streamc.compiler import (ArrayExtent, SrfAllocationRecord,
                                    StreamProgramImage)
from repro.streamc.descriptors import DescriptorFile

#: Kernel calls over streams longer than this are stripmined into a
#: KERNEL followed by RESTART continuations (the paper's cluster
#: Restart operations).
DEFAULT_MAX_BATCH_ELEMENTS = 4096
_ARRAY_ALIGN_WORDS = 4096


class StreamProgramError(Exception):
    """Malformed stream program."""


@dataclass
class KernelSpec:
    """A kernel: its dataflow graph plus a numpy reference model.

    ``apply_fn(inputs, params) -> outputs`` receives one 1-D word
    array per input stream and returns one per output stream.
    ``unroll`` is passed to the kernel compiler.
    """

    name: str
    graph: KernelGraph
    apply_fn: Callable[[list[np.ndarray], dict], list[np.ndarray]]
    unroll: int = 1
    output_record_words: tuple[int, ...] = (1,)
    description: str = ""
    _compiled: CompiledKernel | None = field(default=None, repr=False)

    def compiled(self) -> CompiledKernel:
        if self._compiled is None:
            self._compiled = compile_kernel(self.graph,
                                            unroll_factor=self.unroll)
        return self._compiled


@dataclass
class MemArray:
    """A named region of Imagine DRAM."""

    name: str
    data: np.ndarray
    base: int

    @property
    def words(self) -> int:
        return len(self.data)


@dataclass
class StreamRef:
    """A stream living in the SRF."""

    ident: int
    name: str
    data: np.ndarray
    record_words: int = 1

    @property
    def words(self) -> int:
        return len(self.data)

    @property
    def elements(self) -> int:
        return self.words // self.record_words


@dataclass
class _Call:
    kind: str
    payload: dict


class StreamProgram:
    """Builder + stream compiler for one application run."""

    def __init__(self, name: str, machine: MachineConfig | None = None,
                 max_batch_elements: int = DEFAULT_MAX_BATCH_ELEMENTS,
                 playback: bool = True,
                 srf_rotation_depth: int = 4) -> None:
        self.name = name
        self.machine = machine or MachineConfig()
        self.max_batch_elements = max_batch_elements
        self.playback = playback
        #: SRF buffer-rotation policy knob (see StreamRegisterFile);
        #: exposed for the double-buffering ablation study.
        self.srf_rotation_depth = srf_rotation_depth
        self._arrays: dict[str, MemArray] = {}
        self._next_base = 0
        self._calls: list[_Call] = []
        self._streams: list[StreamRef] = []
        self._kernels: dict[str, KernelSpec] = {}

    # ------------------------------------------------------------------
    # Data declaration.
    # ------------------------------------------------------------------
    def array(self, name: str, data: np.ndarray) -> MemArray:
        """Place ``data`` (flattened to words) in Imagine memory."""
        if name in self._arrays:
            raise StreamProgramError(f"array {name!r} already declared")
        words = np.asarray(data, dtype=np.float64).reshape(-1).copy()
        array = MemArray(name, words, self._next_base)
        span = max(1, len(words))
        self._next_base += (
            (span + _ARRAY_ALIGN_WORDS - 1)
            // _ARRAY_ALIGN_WORDS * _ARRAY_ALIGN_WORDS)
        self._arrays[name] = array
        return array

    def alloc_array(self, name: str, words: int) -> MemArray:
        return self.array(name, np.zeros(words))

    # ------------------------------------------------------------------
    # Stream operations (StreamC statements).
    # ------------------------------------------------------------------
    def load(self, array: MemArray, start: int = 0,
             words: int | None = None, record_words: int = 1,
             pattern: AccessPattern | None = None,
             name: str | None = None) -> StreamRef:
        """Load a stream from memory into the SRF."""
        if pattern is None:
            if words is None:
                words = array.words - start
            pattern = unit_stride(words, start=array.base + start)
        data = _gather(array, pattern)
        stream = self._new_stream(name or f"{array.name}@{start}",
                                  data, record_words)
        self._calls.append(_Call("load", dict(
            array=array, pattern=pattern, stream=stream)))
        return stream

    def store(self, stream: StreamRef, array: MemArray, start: int = 0,
              pattern: AccessPattern | None = None) -> None:
        """Store a stream from the SRF back to memory."""
        if pattern is None:
            pattern = unit_stride(stream.words, start=array.base + start)
        if pattern.words != stream.words:
            raise StreamProgramError(
                f"store of {stream.name!r}: pattern covers "
                f"{pattern.words} words, stream has {stream.words}")
        _scatter(array, pattern, stream.data)
        self._calls.append(_Call("store", dict(
            array=array, pattern=pattern, stream=stream)))

    def kernel(self, spec: KernelSpec, inputs: list[StreamRef],
               params: dict | None = None,
               name: str | None = None) -> list[StreamRef]:
        """Run a kernel over SRF streams; returns its output streams."""
        params = dict(params or {})
        self._kernels.setdefault(spec.name, spec)
        raw_outputs = spec.apply_fn([s.data for s in inputs], params)
        if not isinstance(raw_outputs, (list, tuple)):
            raw_outputs = [raw_outputs]
        records = spec.output_record_words
        if len(records) < len(raw_outputs):
            records = records + (1,) * (len(raw_outputs) - len(records))
        outputs = [
            self._new_stream(
                name or f"{spec.name}.out{i}",
                np.asarray(out, dtype=np.float64).reshape(-1),
                records[i])
            for i, out in enumerate(raw_outputs)
        ]
        self._calls.append(_Call("kernel", dict(
            spec=spec, inputs=list(inputs), outputs=outputs,
            params=params)))
        return outputs

    def kernel1(self, spec: KernelSpec, inputs: list[StreamRef],
                params: dict | None = None,
                name: str | None = None) -> StreamRef:
        """Convenience for single-output kernels."""
        outputs = self.kernel(spec, inputs, params, name)
        if len(outputs) != 1:
            raise StreamProgramError(
                f"{spec.name} produced {len(outputs)} outputs")
        return outputs[0]

    def host_read(self, tag: str = "") -> None:
        """Host reads a scalar result; serializes the host."""
        self._calls.append(_Call("host_read", dict(tag=tag)))

    # ------------------------------------------------------------------
    # The stream compiler.
    # ------------------------------------------------------------------
    def build(self) -> StreamProgramImage:
        last_use = self._analyze_lifetimes()
        emitter = _Emitter(self, last_use)
        for position, call in enumerate(self._calls):
            emitter.emit(position, call)
        return emitter.finish()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _new_stream(self, name: str, data: np.ndarray,
                    record_words: int) -> StreamRef:
        stream = StreamRef(len(self._streams), name,
                           np.asarray(data, dtype=np.float64).reshape(-1),
                           record_words)
        self._streams.append(stream)
        return stream

    def _analyze_lifetimes(self) -> dict[int, int]:
        """Last call position that reads each stream."""
        last_use: dict[int, int] = {}
        for position, call in enumerate(self._calls):
            if call.kind == "kernel":
                for stream in call.payload["inputs"]:
                    last_use[stream.ident] = position
                for stream in call.payload["outputs"]:
                    last_use.setdefault(stream.ident, position)
            elif call.kind == "store":
                last_use[call.payload["stream"].ident] = position
            elif call.kind == "load":
                stream = call.payload["stream"]
                last_use.setdefault(stream.ident, position)
        return last_use


class _Emitter:
    """Instruction emission state for one ``build()``."""

    def __init__(self, program: StreamProgram,
                 last_use: dict[int, int]) -> None:
        self.program = program
        self.last_use = last_use
        machine = program.machine
        self.instructions: list[StreamInstruction] = []
        self.srf = StreamRegisterFile(
            machine, rotation_depth=program.srf_rotation_depth)
        self.sdrs = DescriptorFile("SDR", machine.num_sdrs)
        self.mars = DescriptorFile("MAR", machine.num_mars)
        self.microcode = Microcontroller(machine)
        self.ucr_writes = 0
        self.last_params: dict[str, dict] = {}
        self.last_kernel_instr: int | None = None
        #: Per-array recent stores as (lo, hi, instr) word ranges; a
        #: load only depends on stores whose range it overlaps.
        self.stores_by_array: dict[str, list[tuple[int, int, int]]] = {}
        #: Freed SRF intervals -> instruction that released them.
        self.freed: list[tuple[int, int, int]] = []
        self.region_of: dict[int, tuple[int, int]] = {}
        #: SRF placement log for the static verifier, as mutable
        #: [stream, start, words, allocated_at, freed_at] rows; frozen
        #: into SrfAllocationRecords by finish().
        self.srf_log: list[list] = []
        self._open_srf_row: dict[int, list] = {}
        self.producer_of: dict[int, int] = {}
        self.microcode_load_of: dict[str, int] = {}
        self.kernels_used: dict[str, CompiledKernel] = {}

    # -- low-level helpers ------------------------------------------------
    def _emit(self, op: StreamOpType, deps: list[int] | None = None,
              **kw) -> int:
        index = len(self.instructions)
        instr = StreamInstruction(op=op, deps=sorted(set(deps or [])),
                                  index=index, **kw)
        self.instructions.append(instr)
        return index

    def _allocate_region(self, stream: StreamRef) -> tuple[list[int], int]:
        """Allocate SRF space; return (WAR deps, region start)."""
        region = self.srf.allocate(f"s{stream.ident}",
                                   max(1, stream.words))
        deps = []
        still_free = []
        for start, end, releaser in self.freed:
            if start < region.end and region.start < end:
                deps.append(releaser)
            else:
                still_free.append((start, end, releaser))
        self.freed = still_free
        self.region_of[stream.ident] = (region.start, region.words)
        row = [f"s{stream.ident}:{stream.name}", region.start,
               region.words, len(self.instructions), None]
        self.srf_log.append(row)
        self._open_srf_row[stream.ident] = row
        return deps, region.start

    def _release_dead_streams(self, position: int,
                              releaser: int) -> None:
        for ident, last in list(self.last_use.items()):
            if last == position and ident in self.region_of:
                start, words = self.region_of.pop(ident)
                self.srf.free(f"s{ident}")
                self.freed.append((start, start + words, releaser))
                row = self._open_srf_row.pop(ident, None)
                if row is not None:
                    row[4] = releaser
                del self.last_use[ident]

    def _sdr_for(self, stream: StreamRef) -> list[int]:
        """Reference the stream's descriptor; emit a write if new."""
        start, words = self.region_of.get(stream.ident,
                                          (0, stream.words))
        slot, new = self.sdrs.reference((start, words))
        if new:
            return [self._emit(StreamOpType.SDR_WRITE, sdr=slot,
                               tag=stream.name)]
        return []

    def _mar_for(self, array: MemArray,
                 pattern: AccessPattern) -> list[int]:
        slot, new = self.mars.reference((array.name,) + pattern.signature())
        if new:
            return [self._emit(StreamOpType.MAR_WRITE, mar=slot,
                               tag=array.name)]
        return []

    def _ucr_for(self, spec: KernelSpec, params: dict) -> list[int]:
        previous = self.last_params.get(spec.name)
        self.last_params[spec.name] = params
        deps = []
        changed = (params.keys() if previous is None else
                   [k for k, v in params.items()
                    if previous.get(k) != v])
        for key in changed:
            deps.append(self._emit(StreamOpType.UCR_WRITE, ucr=0,
                                   tag=f"{spec.name}.{key}"))
            self.ucr_writes += 1
        return deps

    def _microcode_for(self, spec: KernelSpec) -> list[int]:
        compiled = spec.compiled()
        self.kernels_used[spec.name] = compiled
        if self.microcode.is_resident(spec.name):
            self.microcode.touch(spec.name)
            return [self.microcode_load_of[spec.name]]
        self.microcode.load(spec.name, compiled.microcode_words)
        index = self._emit(StreamOpType.MICROCODE_LOAD, kernel=spec.name,
                           words=compiled.microcode_words)
        self.microcode_load_of[spec.name] = index
        return [index]

    # -- per-call emission -------------------------------------------------
    def emit(self, position: int, call: _Call) -> None:
        handler = getattr(self, f"_emit_{call.kind}")
        handler(position, **call.payload)

    def _emit_load(self, position: int, array: MemArray,
                   pattern: AccessPattern, stream: StreamRef) -> None:
        war_deps, _ = self._allocate_region(stream)
        deps = war_deps + self._sdr_for(stream) + self._mar_for(
            array, pattern)
        lo, hi = _pattern_range(pattern)
        for store_lo, store_hi, instr in self.stores_by_array.get(
                array.name, ()):
            if store_lo < hi and lo < store_hi:
                deps.append(instr)
        index = self._emit(StreamOpType.MEM_LOAD, deps=deps,
                           pattern=pattern, words=pattern.words,
                           tag=stream.name)
        self.producer_of[stream.ident] = index
        self._release_dead_streams(position, index)

    def _emit_store(self, position: int, array: MemArray,
                    pattern: AccessPattern, stream: StreamRef) -> None:
        deps = self._sdr_for(stream) + self._mar_for(array, pattern)
        if stream.ident in self.producer_of:
            deps.append(self.producer_of[stream.ident])
        index = self._emit(StreamOpType.MEM_STORE, deps=deps,
                           pattern=pattern, words=pattern.words,
                           tag=stream.name)
        ranges = self.stores_by_array.setdefault(array.name, [])
        ranges.append(_pattern_range(pattern) + (index,))
        if len(ranges) > 128:
            # Compact: collapse the oldest half into one coarse range.
            old, recent = ranges[:64], ranges[64:]
            merged = (min(r[0] for r in old), max(r[1] for r in old),
                      max(r[2] for r in old))
            self.stores_by_array[array.name] = [merged] + recent
        self._release_dead_streams(position, index)

    def _emit_kernel(self, position: int, spec: KernelSpec,
                     inputs: list[StreamRef], outputs: list[StreamRef],
                     params: dict) -> None:
        deps: list[int] = []
        for stream in inputs:
            deps += self._sdr_for(stream)
            if stream.ident in self.producer_of:
                deps.append(self.producer_of[stream.ident])
        for stream in outputs:
            war, _ = self._allocate_region(stream)
            deps += war + self._sdr_for(stream)
        deps += self._ucr_for(spec, params)
        deps += self._microcode_for(spec)

        elements = max((s.elements for s in inputs), default=0)
        if elements == 0:
            elements = max((s.elements for s in outputs), default=1)
        limit = self.program.max_batch_elements
        first_chunk = min(elements, limit)
        index = self._emit(StreamOpType.KERNEL, deps=deps,
                           kernel=spec.name,
                           stream_elements=first_chunk,
                           tag=spec.name)
        remaining = elements - first_chunk
        while remaining > 0:
            chunk = min(remaining, limit)
            index = self._emit(StreamOpType.RESTART, deps=[index],
                               kernel=spec.name, stream_elements=chunk,
                               tag=f"{spec.name}.restart")
            remaining -= chunk
        for stream in outputs:
            self.producer_of[stream.ident] = index
        self.last_kernel_instr = index
        self._release_dead_streams(position, index)

    def _emit_host_read(self, position: int, tag: str) -> None:
        deps = ([] if self.last_kernel_instr is None
                else [self.last_kernel_instr])
        move = self._emit(StreamOpType.MOVE, deps=deps, tag=tag)
        self._emit(StreamOpType.HOST_READ, deps=[move],
                   host_dependency=True, tag=tag)

    # -- wrap-up -----------------------------------------------------------
    def finish(self) -> StreamProgramImage:
        program = self.program
        outputs = {name: array.data for name, array in
                   program._arrays.items()}
        return StreamProgramImage(
            name=program.name,
            instructions=self.instructions,
            kernels=dict(self.kernels_used),
            outputs=outputs,
            sdr_writes=self.sdrs.writes,
            sdr_references=self.sdrs.references,
            mar_writes=self.mars.writes,
            mar_references=self.mars.references,
            ucr_writes=self.ucr_writes,
            playback=program.playback,
            arrays=[ArrayExtent(name, array.base, array.words)
                    for name, array in sorted(program._arrays.items())],
            srf_allocations=[SrfAllocationRecord(*row)
                             for row in self.srf_log],
        )


def _pattern_range(pattern: AccessPattern) -> tuple[int, int]:
    """Conservative [lo, hi) absolute word range a pattern touches."""
    if pattern.kind == "strided":
        span = ((pattern.records - 1) * pattern.stride
                + pattern.record_words)
        return pattern.start, pattern.start + max(span, pattern.words)
    return pattern.start, pattern.start + max(pattern.index_range_words,
                                              pattern.words)


def _gather(array: MemArray, pattern: AccessPattern) -> np.ndarray:
    positions = expand_pattern(pattern) - array.base
    if positions.min(initial=0) < 0 or (
            len(positions) and positions.max() >= array.words):
        if pattern.kind == "indexed":
            positions = positions % array.words
        else:
            raise StreamProgramError(
                f"load from {array.name!r} out of bounds "
                f"(array has {array.words} words)")
    return array.data[positions]


def _scatter(array: MemArray, pattern: AccessPattern,
             words: np.ndarray) -> None:
    positions = expand_pattern(pattern) - array.base
    if pattern.kind == "indexed":
        positions = positions % array.words
    elif positions.min(initial=0) < 0 or (
            len(positions) and positions.max() >= array.words):
        raise StreamProgramError(
            f"store to {array.name!r} out of bounds "
            f"(array has {array.words} words)")
    array.data[positions] = words[:len(positions)]
