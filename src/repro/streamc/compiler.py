"""Compiled stream-program image.

The output of the stream compiler: the ordered stream-instruction
sequence with encoded dependencies, the compiled kernels it references,
the functional outputs computed at build time, and the descriptor-file
statistics Table 4 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.stream_ops import StreamInstruction, histogram
from repro.isa.vliw import CompiledKernel


@dataclass(frozen=True)
class ArrayExtent:
    """Static bounds of one memory array: ``[base, base + words)``."""

    name: str
    base: int
    words: int

    @property
    def end(self) -> int:
        return self.base + self.words


@dataclass(frozen=True)
class SrfAllocationRecord:
    """One SRF placement decision made by the stream compiler.

    The word range ``[start, start + words)`` holds stream ``stream``
    from the emission of instruction ``allocated_at`` until the
    completion of instruction ``freed_at`` releases it (``None`` when
    the stream lives to the end of the program).  The static verifier
    checks that no two records overlap in both words and lifetime
    (rule SP006) and that every record fits the SRF (SP005).
    """

    stream: str
    start: int
    words: int
    allocated_at: int
    freed_at: int | None = None

    @property
    def end(self) -> int:
        return self.start + self.words

    def overlaps(self, other: "SrfAllocationRecord") -> bool:
        """Words AND lifetimes intersect (an illegal double booking)."""
        if self.start >= other.end or other.start >= self.end:
            return False
        self_freed = (self.freed_at if self.freed_at is not None
                      else float("inf"))
        other_freed = (other.freed_at if other.freed_at is not None
                       else float("inf"))
        return (self.allocated_at < other_freed
                and other.allocated_at < self_freed)


@dataclass
class StreamProgramImage:
    """Everything ``StreamProgram.build()`` produces."""

    name: str
    instructions: list[StreamInstruction]
    kernels: dict[str, CompiledKernel]
    outputs: dict[str, np.ndarray] = field(default_factory=dict)
    sdr_writes: int = 0
    sdr_references: int = 0
    mar_writes: int = 0
    mar_references: int = 0
    ucr_writes: int = 0
    playback: bool = True
    #: Static metadata for the verifier (``repro.analysis``): memory
    #: array bounds and the compiler's SRF placement decisions.
    #: Images restored from playback records or built by hand carry
    #: empty lists, and the corresponding passes skip them.
    arrays: list[ArrayExtent] = field(default_factory=list)
    srf_allocations: list[SrfAllocationRecord] = field(
        default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def histogram(self) -> dict[str, int]:
        """Table 4 columns for this program."""
        return histogram(self.instructions)

    @property
    def sdr_reuse(self) -> float:
        if self.sdr_writes == 0:
            return 0.0
        return self.sdr_references / self.sdr_writes

    def validate(self) -> None:
        """Structural invariants: deps point backwards and exist."""
        for position, instr in enumerate(self.instructions):
            if instr.index != position:
                raise AssertionError(
                    f"{self.name}: instruction {position} mis-indexed "
                    f"as {instr.index}")
            for dep in instr.deps:
                if not 0 <= dep < position:
                    raise AssertionError(
                        f"{self.name}: instruction {position} depends "
                        f"on {dep} (not strictly earlier)")
            if instr.op.is_kernel and instr.kernel not in self.kernels:
                raise AssertionError(
                    f"{self.name}: unknown kernel {instr.kernel!r}")
