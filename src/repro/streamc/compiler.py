"""Compiled stream-program image.

The output of the stream compiler: the ordered stream-instruction
sequence with encoded dependencies, the compiled kernels it references,
the functional outputs computed at build time, and the descriptor-file
statistics Table 4 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.stream_ops import StreamInstruction, histogram
from repro.isa.vliw import CompiledKernel


@dataclass
class StreamProgramImage:
    """Everything ``StreamProgram.build()`` produces."""

    name: str
    instructions: list[StreamInstruction]
    kernels: dict[str, CompiledKernel]
    outputs: dict[str, np.ndarray] = field(default_factory=dict)
    sdr_writes: int = 0
    sdr_references: int = 0
    mar_writes: int = 0
    mar_references: int = 0
    ucr_writes: int = 0
    playback: bool = True

    def __len__(self) -> int:
        return len(self.instructions)

    def histogram(self) -> dict[str, int]:
        """Table 4 columns for this program."""
        return histogram(self.instructions)

    @property
    def sdr_reuse(self) -> float:
        if self.sdr_writes == 0:
            return 0.0
        return self.sdr_references / self.sdr_writes

    def validate(self) -> None:
        """Structural invariants: deps point backwards and exist."""
        for position, instr in enumerate(self.instructions):
            if instr.index != position:
                raise AssertionError(
                    f"{self.name}: instruction {position} mis-indexed "
                    f"as {instr.index}")
            for dep in instr.deps:
                if not 0 <= dep < position:
                    raise AssertionError(
                        f"{self.name}: instruction {position} depends "
                        f"on {dep} (not strictly earlier)")
            if instr.op.is_kernel and instr.kernel not in self.kernels:
                raise AssertionError(
                    f"{self.name}: unknown kernel {instr.kernel!r}")
