"""StreamC-like stream-level programming model and compiler.

Applications are written against :class:`repro.streamc.program.StreamProgram`,
which plays the role of StreamC: it organises data into streams, orders
kernel executions, and (at :meth:`~repro.streamc.program.StreamProgram.build`)
runs the stream compiler -- SRF allocation, dependency encoding,
descriptor-register reuse, microcode-load insertion, stripmining of
over-length streams into kernel+restart sequences, and load hoisting
(the software pipelining of memory operations against kernel
execution the paper credits for hiding memory latency).

Kernel calls are evaluated functionally at build time with each
kernel's numpy reference model, so programs compute real outputs while
the emitted instruction stream carries only timing-relevant facts.
"""

from repro.streamc.compiler import StreamProgramImage
from repro.streamc.descriptors import DescriptorFile
from repro.streamc.dispatcher import PlaybackDispatcher, StreamDispatcher
from repro.streamc.program import KernelSpec, StreamProgram, StreamRef
from repro.streamc.record import load_record, save_record

__all__ = [
    "StreamProgramImage",
    "DescriptorFile",
    "PlaybackDispatcher",
    "StreamDispatcher",
    "KernelSpec",
    "StreamProgram",
    "StreamRef",
    "load_record",
    "save_record",
]
