"""Playback records: serialize stream-instruction sequences.

Section 2.3: when control flow is data-independent, the StreamC
compiler replaces the intermediate C++ with "a record of the encoded
stream instructions, in order", and the playback dispatcher replays
it.  This module is that record format: a JSON-serializable encoding
of a compiled program's instruction stream (instructions, deps,
access patterns, descriptor stats) that round-trips exactly, so a
program can be compiled once and replayed on any simulator instance.

Functional outputs are not part of the record -- the record is the
host-side artifact, and data lives in Imagine memory.
"""

from __future__ import annotations

import json
from typing import Any

from repro.isa.stream_ops import StreamInstruction, StreamOpType
from repro.isa.vliw import CompiledKernel
from repro.memsys.patterns import AccessPattern
from repro.streamc.compiler import StreamProgramImage

FORMAT_VERSION = 1


class RecordError(Exception):
    """Malformed or incompatible playback record."""


def _encode_pattern(pattern: AccessPattern | None) -> dict | None:
    if pattern is None:
        return None
    return {
        "kind": pattern.kind,
        "words": pattern.words,
        "start": pattern.start,
        "stride": pattern.stride,
        "record_words": pattern.record_words,
        "index_range_words": pattern.index_range_words,
        "seed": pattern.seed,
        "indices": (list(pattern.indices)
                    if pattern.indices is not None else None),
    }


def _decode_pattern(data: dict | None) -> AccessPattern | None:
    if data is None:
        return None
    indices = data.get("indices")
    return AccessPattern(
        kind=data["kind"],
        words=data["words"],
        start=data.get("start", 0),
        stride=data.get("stride", 1),
        record_words=data.get("record_words", 1),
        index_range_words=data.get("index_range_words", 0),
        seed=data.get("seed", 1234),
        indices=tuple(indices) if indices is not None else None,
    )


def _encode_instruction(instr: StreamInstruction) -> dict:
    return {
        "op": instr.op.value,
        "deps": list(instr.deps),
        "kernel": instr.kernel,
        "stream_elements": instr.stream_elements,
        "words": instr.words,
        "pattern": _encode_pattern(instr.pattern),
        "sdr": instr.sdr,
        "mar": instr.mar,
        "ucr": instr.ucr,
        "host_dependency": instr.host_dependency,
        "tag": instr.tag,
    }


def _decode_instruction(data: dict, index: int) -> StreamInstruction:
    try:
        op = StreamOpType(data["op"])
    except ValueError as exc:
        raise RecordError(f"unknown stream op {data.get('op')!r}") from exc
    return StreamInstruction(
        op=op,
        deps=list(data.get("deps", [])),
        kernel=data.get("kernel"),
        stream_elements=data.get("stream_elements", 0),
        words=data.get("words", 0),
        pattern=_decode_pattern(data.get("pattern")),
        sdr=data.get("sdr"),
        mar=data.get("mar"),
        ucr=data.get("ucr"),
        host_dependency=data.get("host_dependency", False),
        tag=data.get("tag", ""),
        index=index,
    )


def save_record(image: StreamProgramImage) -> str:
    """Encode a compiled program as a JSON playback record."""
    if not image.playback:
        raise RecordError(
            f"{image.name}: data-dependent control flow cannot be "
            f"recorded for playback")
    payload: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "name": image.name,
        "kernels": sorted(image.kernels),
        "sdr_writes": image.sdr_writes,
        "sdr_references": image.sdr_references,
        "mar_writes": image.mar_writes,
        "mar_references": image.mar_references,
        "ucr_writes": image.ucr_writes,
        "instructions": [_encode_instruction(i)
                         for i in image.instructions],
    }
    return json.dumps(payload)


def load_record(text: str,
                kernels: dict[str, CompiledKernel]
                ) -> StreamProgramImage:
    """Decode a playback record; ``kernels`` supplies the microcode."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RecordError(f"not a playback record: {exc}") from exc
    if payload.get("format") != FORMAT_VERSION:
        raise RecordError(
            f"unsupported record format {payload.get('format')!r}")
    missing = set(payload["kernels"]) - set(kernels)
    if missing:
        raise RecordError(
            f"record references unknown kernels: {sorted(missing)}")
    instructions = [_decode_instruction(d, i)
                    for i, d in enumerate(payload["instructions"])]
    image = StreamProgramImage(
        name=payload["name"],
        instructions=instructions,
        kernels={name: kernels[name] for name in payload["kernels"]},
        sdr_writes=payload.get("sdr_writes", 0),
        sdr_references=payload.get("sdr_references", 0),
        mar_writes=payload.get("mar_writes", 0),
        mar_references=payload.get("mar_references", 0),
        ucr_writes=payload.get("ucr_writes", 0),
        playback=True,
    )
    image.validate()
    return image
