"""Descriptor register files: SDRs, MARs and the reuse they enable.

Imagine holds stream length/location state in 32 stream descriptor
registers (SDRs) and 8 memory address registers (MARs) so that stream
instructions can refer to a descriptor index instead of re-encoding
the full descriptor, slashing host instruction bandwidth.  Section 5.3
quantifies the effect: DEPTH reuses each SDR 717 times; without that
reuse it would exceed the host interface's bandwidth.

:class:`DescriptorFile` models one such file: referencing a descriptor
value that is already resident is free; a new value evicts the LRU
entry and costs one register-write stream instruction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class DescriptorFile:
    """LRU-managed register file mapping descriptor values to slots."""

    name: str
    slots: int
    _resident: OrderedDict = field(default_factory=OrderedDict)
    writes: int = 0
    references: int = 0

    def reference(self, value: Hashable) -> tuple[int, bool]:
        """Use ``value``; returns ``(slot, newly_written)``."""
        self.references += 1
        if value in self._resident:
            slot = self._resident[value]
            self._resident.move_to_end(value)
            return slot, False
        if len(self._resident) < self.slots:
            slot = len(self._resident)
        else:
            _, slot = self._resident.popitem(last=False)
        self._resident[value] = slot
        self.writes += 1
        return slot, True

    @property
    def reuse(self) -> float:
        """Average references per write (Table 4's "Reuse" column)."""
        if self.writes == 0:
            return 0.0
        return self.references / self.writes
