"""Stream dispatchers.

At run time the paper's system drives Imagine through one of two
dispatchers: the general **stream dispatcher** (intermediate C++ code
preserving StreamC control flow, one scoreboard write per instruction)
and the lightweight **playback dispatcher**, usable when control flow
is data-independent, which replays a pre-recorded instruction sequence.

In this reproduction both deliver the same instruction list to the
simulator; the difference is the host-side cost per instruction, which
these classes expose so experiments can model a slower general
dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BoardConfig, MachineConfig
from repro.streamc.compiler import StreamProgramImage


@dataclass(frozen=True)
class StreamDispatcher:
    """General dispatcher: host executes StreamC control flow."""

    #: Extra host cycles of scalar work per dispatched instruction.
    per_instruction_overhead_cycles: int = 40

    def host_board(self, machine: MachineConfig,
                   board: BoardConfig) -> BoardConfig:
        """Board config with the dispatcher's host cost folded in."""
        base_cycles = board.host_issue_cycles(machine)
        cycles = base_cycles + self.per_instruction_overhead_cycles
        mips = machine.clock_hz / cycles / 1e6
        return board.with_host_mips(mips)

    def instructions(self, image: StreamProgramImage):
        return list(image.instructions)


@dataclass(frozen=True)
class PlaybackDispatcher:
    """Playback dispatcher: replays the recorded sequence verbatim."""

    def host_board(self, machine: MachineConfig,
                   board: BoardConfig) -> BoardConfig:
        return board

    def instructions(self, image: StreamProgramImage):
        if not image.playback:
            raise ValueError(
                f"{image.name}: program was not compiled for playback "
                f"(data-dependent control flow)")
        return list(image.instructions)
