"""Typed simulation errors carrying diagnostic state.

A wedged simulator is worse than a crashed one; these exception types
make sure every failure mode surfaces with enough machine state to
debug it: :class:`SimulationError` carries the watchdog's
:class:`~repro.core.watchdog.DiagnosticBundle` (scoreboard dump,
stuck-instruction dependency graph, recent idle-cause attributions),
and :class:`InvariantViolation` marks a structural model bug caught by
the strict-mode invariant checker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.watchdog import DiagnosticBundle


class SimulationError(Exception):
    """Deadlock, livelock or structural failure during simulation."""

    def __init__(self, message: str,
                 diagnostics: "DiagnosticBundle | None" = None) -> None:
        super().__init__(message)
        #: Full machine-state snapshot at failure time (None for
        #: failures raised before the event loop starts).
        self.diagnostics = diagnostics


class InvariantViolation(SimulationError):
    """A strict-mode runtime invariant does not hold."""
