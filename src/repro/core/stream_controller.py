"""Stream controller: the 32-slot scoreboard.

The host writes stream instructions into scoreboard slots; the stream
controller issues an instruction once its encoded dependencies have
completed and its resources (clusters, an address generator, the
microcode loader) are available.  This module is the bookkeeping half;
the event-driven issue logic lives in :mod:`repro.core.processor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.stream_ops import StreamInstruction
from repro.obs.tracer import NULL_TRACER, TRACK_CONTROLLER, Tracer


class ScoreboardError(Exception):
    """Structural misuse of the scoreboard."""


@dataclass
class Scoreboard:
    """Fixed-capacity in-flight window of stream instructions."""

    slots: int = 32
    tracer: Tracer = field(default=NULL_TRACER, repr=False)
    #: Slots currently disabled by a transient fault (see
    #: :mod:`repro.faults`); resident instructions keep their slots,
    #: only free capacity shrinks.
    slots_lost: int = 0

    def __post_init__(self) -> None:
        self._resident: dict[int, StreamInstruction] = {}
        self._completed: set[int] = set()
        self.peak_occupancy = 0

    def _sample_occupancy(self) -> None:
        self.tracer.counter(TRACK_CONTROLLER, "scoreboard",
                            {"occupancy": float(self.occupancy)})

    # ------------------------------------------------------------------
    # Host side.
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._resident)

    @property
    def effective_slots(self) -> int:
        return max(0, self.slots - self.slots_lost)

    def has_free_slot(self) -> bool:
        return self.occupancy < self.effective_slots

    def insert(self, index: int, instruction: StreamInstruction) -> None:
        if not self.has_free_slot():
            raise ScoreboardError("scoreboard full")
        if index in self._resident or index in self._completed:
            raise ScoreboardError(f"instruction {index} already seen")
        self._resident[index] = instruction
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        if self.tracer.enabled:
            self._sample_occupancy()

    # ------------------------------------------------------------------
    # Controller side.
    # ------------------------------------------------------------------
    def resident(self, index: int) -> bool:
        return index in self._resident

    def completed(self, index: int) -> bool:
        return index in self._completed

    def deps_met(self, instruction: StreamInstruction) -> bool:
        return all(dep in self._completed for dep in instruction.deps)

    def complete(self, index: int) -> None:
        if index not in self._resident:
            raise ScoreboardError(
                f"completing non-resident instruction {index}")
        del self._resident[index]
        self._completed.add(index)
        if self.tracer.enabled:
            self._sample_occupancy()

    def resident_instructions(self) -> list[tuple[int, StreamInstruction]]:
        return sorted(self._resident.items())

    def dump(self) -> dict:
        """Diagnostic snapshot for watchdog/deadlock reports."""
        return {
            "slots": self.slots,
            "slots_lost": self.slots_lost,
            "occupancy": self.occupancy,
            "peak_occupancy": self.peak_occupancy,
            "completed": len(self._completed),
            "resident": [
                {"index": index,
                 "op": instr.op.value,
                 "tag": instr.tag or None,
                 "deps": list(instr.deps),
                 "unmet_deps": [dep for dep in instr.deps
                                if dep not in self._completed]}
                for index, instr in sorted(self._resident.items())
            ],
        }
