"""Stream register file (SRF) model.

The SRF is Imagine's 128 KB on-chip stream store and the nexus of all
stream instructions.  Two behaviours matter for the paper's numbers:

* **Capacity / allocation** -- the stream compiler places every live
  stream in the SRF; this class provides the allocator it uses and
  enforces that no two live streams overlap (a property test target).
* **Cluster stalls** -- "cluster stalls occur during kernel startup
  periods when SRF streams have not been initialized and during
  kernels which have bursty SRF bandwidth requirements" (Section 3.2).
  :meth:`kernel_stall_cycles` charges a fixed buffer-priming stall at
  kernel start plus a throughput throttle whenever a kernel's
  steady-state SRF demand exceeds its per-cluster share of SRF
  bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.isa.vliw import CompiledKernel


class SrfAllocationError(Exception):
    """Raised when live streams exceed SRF capacity."""


@dataclass(frozen=True)
class SrfRegion:
    """An allocated byte range in the SRF, in words."""

    name: str
    start: int
    words: int

    @property
    def end(self) -> int:
        return self.start + self.words


class StreamRegisterFile:
    """Pooling SRF allocator plus the kernel stall model.

    Freed regions are kept in per-size pools and reused
    last-in-first-out, so streaming pipelines settle into stable
    double-buffer offsets -- which is what lets stream descriptor
    registers be reused hundreds of times per write (Section 5.3's
    DEPTH analysis).  Pools are cannibalised oldest-first when a new
    size needs the space.
    """

    def __init__(self, machine: MachineConfig,
                 rotation_depth: int = 4) -> None:
        self.machine = machine
        self.capacity_words = machine.srf_words
        #: Freed regions of a size are only reused once this many are
        #: pooled, so buffers rotate several pipeline stages deep and
        #: the write-after-read dependency on a reused region reaches
        #: back far enough for loads to run under kernel execution.
        self.rotation_depth = rotation_depth
        self._regions: dict[str, SrfRegion] = {}
        self._pooled: list[SrfRegion] = []

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------
    def allocate(self, name: str, words: int) -> SrfRegion:
        if words <= 0:
            raise ValueError(f"stream {name!r} must occupy at least 1 word")
        if name in self._regions:
            raise SrfAllocationError(f"stream {name!r} already allocated")
        same_size = sum(1 for r in self._pooled if r.words == words)
        start = None
        if same_size >= self.rotation_depth:
            start = self._pop_pool(words)
        if start is None:
            start = self._first_fit(words)
        if start is None:
            start = self._pop_pool(words)
        while start is None and self._pooled:
            self._pooled.pop(0)
            start = self._first_fit(words)
        if start is None:
            raise SrfAllocationError(
                f"SRF full: cannot place {words} words for {name!r} "
                f"(live: {sorted(self._regions)})")
        region = SrfRegion(name, start, words)
        self._regions[name] = region
        return region

    def free(self, name: str) -> None:
        if name not in self._regions:
            raise KeyError(f"stream {name!r} is not allocated")
        region = self._regions.pop(name)
        self._pooled.append(region)

    def live_words(self) -> int:
        return sum(r.words for r in self._regions.values())

    def regions(self) -> list[SrfRegion]:
        return sorted(self._regions.values(), key=lambda r: r.start)

    def _pop_pool(self, words: int) -> int | None:
        # Oldest matching region first: its last consumer retired the
        # longest ago, so the write-after-read dependency the stream
        # compiler encodes on the region is the least constraining --
        # this is what makes loads run ahead under kernel execution.
        for i, region in enumerate(self._pooled):
            if region.words == words:
                return self._pooled.pop(i).start
        return None

    def _first_fit(self, words: int) -> int | None:
        occupied = sorted(
            list(self._regions.values()) + self._pooled,
            key=lambda r: r.start)
        cursor = 0
        for region in occupied:
            if region.start - cursor >= words:
                return cursor
            cursor = max(cursor, region.end)
        if self.capacity_words - cursor >= words:
            return cursor
        return None

    def check_no_overlap(self) -> None:
        regions = self.regions()
        for first, second in zip(regions, regions[1:]):
            if first.end > second.start:
                raise SrfAllocationError(
                    f"SRF overlap: {first} and {second}")

    # ------------------------------------------------------------------
    # Stall model.
    # ------------------------------------------------------------------
    def kernel_stall_cycles(self, kernel: CompiledKernel,
                            iterations: int) -> int:
        """Cluster-stall cycles for one invocation of ``kernel``."""
        machine = self.machine
        prime = machine.srf_prime_cycles
        share = (machine.srf_peak_words_per_cycle
                 / machine.num_clusters)
        words_per_iteration = (kernel.words_in_per_iteration
                               + kernel.words_out_per_iteration)
        if words_per_iteration <= 0:
            return 0
        demand_cycles = words_per_iteration / share
        throttle = max(0.0, demand_cycles - kernel.ii)
        return int(round(prime + throttle * iterations))
