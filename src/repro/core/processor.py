"""The Imagine processor: event-driven whole-system simulator.

``ImagineProcessor.run`` executes a compiled stream program (a list of
:class:`~repro.isa.stream_ops.StreamInstruction`) against the full
machine model: the host issues instructions into the 32-slot
scoreboard at the host-interface rate, the stream controller issues
ready instructions to the clusters / address generators / microcode
loader, kernel durations come from compiled VLIW schedules, memory
durations from the SDRAM model, and every cycle of the run is
attributed to one of the paper's eight categories (Figure 11), with
idle-cluster time classified by the paper's priority rule: microcode
load, then memory, then stream-controller overhead, then host
bandwidth.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from dataclasses import dataclass, field

from repro.core.cluster import ClusterArray, InvocationResult
from repro.core.config import BoardConfig, MachineConfig
from repro.core.errors import InvariantViolation, SimulationError
from repro.core.invariants import InvariantChecker
from repro.core.metrics import CycleCategory, Metrics
from repro.core.microcontroller import Microcontroller
from repro.core.power import EnergyModel, PowerReport
from repro.core.srf import StreamRegisterFile
from repro.core.stream_controller import Scoreboard
from repro.core.watchdog import DiagnosticBundle, ProgressWatchdog
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultEvent, FaultPlan
from repro.host.interface import HostInterface
from repro.host.processor import HostModel
from repro.isa.stream_ops import StreamInstruction, StreamOpType, histogram
from repro.isa.vliw import CompiledKernel
from repro.memsys.address_gen import AddressGenerator
from repro.memsys.controller import MemorySystem, SharedMemoryServer
from repro.memsys.dram import PrechargeFault
from repro.obs.critpath import (
    EDGE_AG_BUSY,
    EDGE_CLUSTER_BUSY,
    EDGE_CONTROLLER_ISSUE,
    EDGE_DATA_DEP,
    EDGE_HOST_DEPENDENCY,
    EDGE_HOST_ISSUE,
    EDGE_HOST_OP,
    EDGE_KERNEL_EXEC,
    EDGE_LOADER_BUSY,
    EDGE_MEM_STREAM,
    EDGE_MICROCODE_LOAD,
    EDGE_PROGRAM_START,
    EDGE_RESIDENT,
    EDGE_RETIRE,
    EDGE_SCOREBOARD_SLOT,
    EventGraph,
)
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.tracer import (
    NULL_TRACER,
    TRACK_ACCOUNTING,
    TRACK_CLUSTERS,
    TRACK_CONTROLLER,
    TRACK_HOST,
    Tracer,
)

__all__ = [
    "ImagineProcessor",
    "RunResult",
    "TraceEvent",
    "SimulationError",
    "InvariantViolation",
]

_EPS = 1e-6
#: Extra non-main-loop cycles charged to a RESTART continuation
#: instead of a full prologue/epilogue.
_RESTART_OVERHEAD_CYCLES = 16


@dataclass(frozen=True)
class TraceEvent:
    """Lifetime of one stream instruction during simulation."""

    index: int
    op: str
    tag: str
    kernel: str | None
    resident_at: float
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def queue_delay(self) -> float:
        return self.started_at - self.resident_at


@dataclass
class RunResult:
    """Outcome of one stream-program run."""

    name: str
    metrics: Metrics
    power: PowerReport
    instruction_histogram: dict[str, int]
    board: BoardConfig
    trace: list[TraceEvent] = field(default_factory=list)
    manifest: RunManifest | None = None
    #: Fault firings recorded by the injector, in time order.
    fault_events: list[FaultEvent] = field(default_factory=list)
    #: Host transfer retries forced by injected drops.
    host_retries: int = 0
    #: Typed dependency DAG recorded during the run; feeds
    #: critical-path extraction and what-if projection
    #: (:mod:`repro.obs.critpath`).
    event_graph: EventGraph | None = None

    @property
    def cycles(self) -> float:
        return self.metrics.total_cycles

    @property
    def seconds(self) -> float:
        return self.metrics.seconds

    def summary(self) -> str:
        metrics = self.metrics
        return (f"{self.name}: {metrics.total_cycles:.0f} cycles "
                f"({metrics.seconds * 1e3:.2f} ms), "
                f"{metrics.gops:.2f} GOPS, {metrics.gflops:.2f} GFLOPS, "
                f"IPC {metrics.ipc:.1f}, {self.power.watts:.2f} W")

    def profile(self) -> dict:
        """Hierarchical cycle-accounting profile of this run
        (``repro.profile-report/1``; see docs/observability.md)."""
        from repro.obs.profile import build_profile

        return build_profile(self)

    def critpath(self) -> dict:
        """Critical-path report for this run
        (``repro.critpath-report/1``; see docs/observability.md)."""
        from repro.obs.critpath import build_critpath

        return build_critpath(self)


@dataclass
class _InstructionState:
    instruction: StreamInstruction
    status: str = "pending"          # pending -> resident -> running -> done
    resident_time: float = 0.0
    start_time: float = 0.0
    finish_time: float = 0.0
    invocation: InvocationResult | None = None


class ImagineProcessor:
    """Top-level simulator; construct once per run."""

    def __init__(self, machine: MachineConfig | None = None,
                 board: BoardConfig | None = None,
                 kernels: dict[str, CompiledKernel] | None = None,
                 energy: EnergyModel | None = None,
                 tracer: Tracer | None = None,
                 faults: FaultPlan | FaultInjector | None = None,
                 strict: bool = False) -> None:
        self.machine = machine or MachineConfig()
        self.board = board or BoardConfig()
        self.kernels = dict(kernels or {})
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.strict = strict
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults, tracer=self.tracer)
        self.injector = faults
        precharge = (PrechargeFault.from_config(self.machine.dram)
                     if self.board.precharge_bug else None)
        channel_fault = None
        if self.injector is not None:
            # Structural faults reshape the machine before anything
            # is built from it.
            self.machine = self.injector.degrade_machine(self.machine)
            precharge = self.injector.precharge_fault(precharge)
            channel_fault = self.injector.channel_fault(
                self.machine.dram.channels)
        self.energy = energy or EnergyModel(self.machine)
        self.srf = StreamRegisterFile(self.machine)
        self.clusters = ClusterArray(self.machine, self.srf)
        self.microcontroller = Microcontroller(self.machine,
                                               tracer=self.tracer)
        self.memory = MemorySystem(self.machine,
                                   precharge=precharge,
                                   channel_fault=channel_fault,
                                   tracer=self.tracer)
        self.ags = [
            AddressGenerator(i, self.machine.ag_peak_words_per_cycle,
                             tracer=self.tracer)
            for i in range(self.machine.num_ags)
        ]

    def register_kernel(self, kernel: CompiledKernel) -> None:
        self.kernels[kernel.name] = kernel

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------
    def run(self, program, name: str = "program") -> RunResult:
        """Simulate ``program`` (a list of instructions or a
        :class:`~repro.streamc.compiler.StreamProgramImage`)."""
        sdr_writes = sdr_references = 0
        if hasattr(program, "instructions"):
            name = getattr(program, "name", name)
            sdr_writes = getattr(program, "sdr_writes", 0)
            sdr_references = getattr(program, "sdr_references", 0)
            instructions = list(program.instructions)
        else:
            instructions = list(program)
        if not instructions:
            raise SimulationError("empty stream program")

        wall_start = time.perf_counter()
        machine = self.machine
        tracer = self.tracer
        tracer.clock = 0.0
        metrics = Metrics(machine)
        metrics.sdr_writes = sdr_writes
        metrics.sdr_references = sdr_references
        interface = HostInterface(machine, self.board)
        host = HostModel(interface, instructions, injector=self.injector)
        scoreboard = Scoreboard(machine.scoreboard_slots, tracer=tracer)
        server = SharedMemoryServer(self.memory)
        states = [_InstructionState(instr) for instr in instructions]
        kernel_indices = [i for i, instr in enumerate(instructions)
                          if instr.op.is_kernel]
        issue_overhead = (machine.stream_controller_issue_cycles
                          + self.board.issue_pipeline_cycles)

        # Event DAG for critical-path extraction: one node per
        # instruction lifetime event, one typed edge per timing
        # constraint (see repro.obs.critpath).  Recording is pure --
        # it never changes a simulation decision.
        graph = EventGraph(meta={
            "num_ags": float(machine.num_ags),
            "issue_overhead": float(issue_overhead),
            # Pure host-rate spacing between issues; the what-if
            # replay scales only this much of a host_issue gap (the
            # excess is blocked time that a faster host cannot
            # shrink).
            "host_issue_cycles": float(
                self.board.host_issue_cycles(machine)),
        })
        graph.add_node("source", -1, 0.0, "start")
        issue_nodes: list[int | None] = [None] * len(instructions)
        begin_nodes: list[int | None] = [None] * len(instructions)
        complete_nodes: list[int | None] = [None] * len(instructions)
        exec_detail: dict[int, dict] = {}
        last_issue_node: int | None = None
        last_issue_time = 0.0
        #: Host-rate constraint on the *next* issue, captured when the
        #: previous issue advanced ``host.ready_at`` (widened by
        #: injected-drop back-off windows).
        last_issue_gap = 0.0
        #: Completion the host is blocked on; the next issue gets a
        #: round-trip edge from it.
        pending_unblock: int | None = None
        #: The host was ready but the scoreboard was full; the next
        #: issue gets a slot edge from the freeing completion.
        slot_waiting = False
        last_begin_node: int | None = None
        last_kernel_complete: int | None = None
        last_loader_complete: int | None = None
        last_mem_complete: int | None = None
        last_complete_node: int | None = None

        completions: list[tuple[float, int, int]] = []
        tiebreak = itertools.count()
        now = 0.0
        cluster_busy_until = 0.0
        loader_busy_until = 0.0
        controller_busy_until = 0.0
        next_kernel_pos = 0
        free_ags = list(range(len(self.ags)))
        mem_lanes: dict[int, tuple[int, float]] = {}
        #: Host issues + instruction starts + completions; the
        #: watchdog's progress signal.
        transitions = 0
        #: Recent idle-cause attributions for diagnostics.
        idle_history: deque[tuple[float, str, float]] = deque(maxlen=16)
        checker = (InvariantChecker(name, len(self.ags))
                   if self.strict else None)

        def diagnose(reason: str, stalled: int) -> DiagnosticBundle:
            stuck = []
            for i, state in enumerate(states):
                if state.status == "done":
                    continue
                stuck.append({
                    "index": i,
                    "op": state.instruction.op.value,
                    "tag": state.instruction.tag or None,
                    "status": state.status,
                    "deps": [{"index": dep,
                              "status": states[dep].status,
                              "op": states[dep].instruction.op.value}
                             for dep in state.instruction.deps],
                })
            # Best-effort: attribution must never mask the original
            # diagnosis, so any summarisation failure degrades to
            # critpath=None.
            try:
                from repro.obs.critpath import partial_critpath_summary

                critpath = partial_critpath_summary(graph)
            except Exception:
                critpath = None
            return DiagnosticBundle(
                program=name, reason=reason, cycle=now,
                stalled_events=stalled, scoreboard=scoreboard.dump(),
                stuck=stuck, host=host.dump(),
                idle_causes=list(idle_history), critpath=critpath)

        watchdog = ProgressWatchdog(diagnose)

        def push_completion(time: float, index: int) -> None:
            heapq.heappush(completions, (time, next(tiebreak), index))

        def resource_free(instr: StreamInstruction, t: float) -> bool:
            if instr.op.is_kernel:
                return cluster_busy_until <= t + _EPS
            if instr.op.is_memory:
                return len(server.active()) < machine.num_ags
            if instr.op is StreamOpType.MICROCODE_LOAD:
                return loader_busy_until <= t + _EPS
            return True

        def begin(index: int, t: float) -> None:
            nonlocal cluster_busy_until, loader_busy_until, transitions
            nonlocal last_begin_node
            state = states[index]
            instr = state.instruction
            state.status = "running"
            state.start_time = t
            transitions += 1
            if tracer.enabled:
                tracer.clock = t
            node = graph.add_node("begin", index, t,
                                  instr.tag or instr.op.value)
            begin_nodes[index] = node
            src_issue = issue_nodes[index]
            if src_issue is not None:
                graph.add_edge(src_issue, node, EDGE_RESIDENT,
                               issue_overhead)
            for dep in instr.deps:
                dep_node = complete_nodes[dep]
                if dep_node is not None:
                    graph.add_edge(dep_node, node, EDGE_DATA_DEP,
                                   issue_overhead)
            if last_begin_node is not None:
                graph.add_edge(last_begin_node, node,
                               EDGE_CONTROLLER_ISSUE, issue_overhead)
            if instr.op.is_kernel and last_kernel_complete is not None:
                graph.add_edge(last_kernel_complete, node,
                               EDGE_CLUSTER_BUSY, issue_overhead)
            if (instr.op is StreamOpType.MICROCODE_LOAD
                    and last_loader_complete is not None):
                graph.add_edge(last_loader_complete, node,
                               EDGE_LOADER_BUSY, issue_overhead)
            if (instr.op.is_memory and last_mem_complete is not None
                    and len(server.active()) >= machine.num_ags - 1):
                # Starting this stream (nearly) fills the AG lanes, so
                # the last freeing completion plausibly gated it.
                graph.add_edge(last_mem_complete, node, EDGE_AG_BUSY,
                               issue_overhead)
            last_begin_node = node
            if instr.op.is_kernel:
                # The issue window [decision, t] kept the clusters
                # idle; charge it so cycle accounting stays exact.
                metrics.add_cycles(
                    CycleCategory.STREAM_CONTROLLER_OVERHEAD,
                    issue_overhead)
                kernel = self._lookup_kernel(instr)
                if (self.injector is not None
                        and self.injector.microcode_corrupted(
                            kernel.name, t)):
                    # A corrupted store entry forces a full reload.
                    self.microcontroller.invalidate(kernel.name)
                extra = 0.0
                if not self.microcontroller.is_resident(kernel.name):
                    # Safety net: programs normally carry explicit
                    # MICROCODE_LOAD instructions; charge a serial
                    # load otherwise.
                    extra = self.microcontroller.load(
                        kernel.name, kernel.microcode_words)
                    metrics.add_cycles(
                        CycleCategory.MICROCODE_LOAD_STALL, extra)
                    metrics.microcode_loader_busy_cycles += extra
                self.microcontroller.touch(kernel.name)
                result = self.clusters.run_kernel(
                    kernel, instr.stream_elements)
                if instr.op is StreamOpType.RESTART:
                    result = _restart_adjusted(result)
                state.invocation = result
                finish = t + extra + result.total_cycles
                cluster_busy_until = finish
                exec_detail[index] = {
                    "kernel": kernel.name,
                    "microcode": float(extra),
                    "operations": float(result.timing.operations),
                    "main_loop_overhead": float(
                        result.timing.main_loop_overhead),
                    "non_main_loop": float(
                        result.timing.non_main_loop),
                    "stall": float(result.record.stall_cycles),
                }
                if tracer.enabled:
                    tracer.span(
                        TRACK_CLUSTERS, kernel.name, t, finish,
                        index=index,
                        stream_elements=instr.stream_elements,
                        busy_cycles=result.record.busy_cycles,
                        stall_cycles=result.record.stall_cycles,
                        microcode_load_cycles=extra)
                push_completion(finish, index)
            elif instr.op.is_memory:
                measurement = self.memory.measure(instr.pattern)
                server.start(index, measurement)
                exec_detail[index] = {
                    "kind": instr.pattern.kind,
                    "words": float(measurement.words),
                    "startup": float(measurement.startup_cycles),
                    "dram_cycles": float(
                        measurement.dram_core_cycles),
                    "ag_cycles": float(measurement.ag_core_cycles),
                    "controller_cycles": float(
                        measurement.controller_core_cycles),
                }
                metrics.mem_words += measurement.words
                metrics.memory_stream_words.append(measurement.words)
                for channel, busy in enumerate(
                        measurement.per_channel_core_cycles):
                    metrics.dram_channel_busy[channel] = (
                        metrics.dram_channel_busy.get(channel, 0.0)
                        + busy)
                # Lane assignment is machine state, not reporting: it
                # must not depend on whether a tracer is attached.
                if free_ags:
                    mem_lanes[index] = (free_ags.pop(0), t)
            elif instr.op is StreamOpType.MICROCODE_LOAD:
                kernel = self._lookup_kernel(instr)
                duration = self.microcontroller.load(
                    kernel.name, kernel.microcode_words)
                loader_busy_until = t + max(duration, 1.0)
                metrics.microcode_loader_busy_cycles += max(
                    duration, 1.0)
                exec_detail[index] = {
                    "kernel": kernel.name,
                    "words": float(kernel.microcode_words),
                }
                push_completion(loader_busy_until, index)
            else:
                push_completion(t + 1.0, index)

        def complete(index: int, t: float) -> None:
            nonlocal transitions, pending_unblock, last_complete_node
            nonlocal last_kernel_complete, last_loader_complete
            nonlocal last_mem_complete
            state = states[index]
            state.status = "done"
            state.finish_time = t
            transitions += 1
            if checker is not None:
                checker.lifetime(index, state.resident_time,
                                 state.start_time, t)
            if tracer.enabled:
                tracer.clock = t
            instr = state.instruction
            node = graph.add_node("complete", index, t,
                                  instr.tag or instr.op.value)
            complete_nodes[index] = node
            begin_node = begin_nodes[index]
            if begin_node is not None:
                if instr.op.is_kernel:
                    edge_type = EDGE_KERNEL_EXEC
                elif instr.op.is_memory:
                    edge_type = EDGE_MEM_STREAM
                elif instr.op is StreamOpType.MICROCODE_LOAD:
                    edge_type = EDGE_MICROCODE_LOAD
                else:
                    edge_type = EDGE_HOST_OP
                detail = exec_detail.pop(index, {})
                if index in mem_lanes:
                    detail = {**detail, "lane": mem_lanes[index][0]}
                graph.add_edge(begin_node, node, edge_type,
                               t - state.start_time, **detail)
            if instr.op.is_kernel:
                last_kernel_complete = node
            elif instr.op.is_memory:
                last_mem_complete = node
            elif instr.op is StreamOpType.MICROCODE_LOAD:
                last_loader_complete = node
            last_complete_node = node
            if host.blocked_on == index:
                pending_unblock = node
                metrics.host_round_trips += 1
            scoreboard.complete(index)
            host.notify_completion(index, t)
            if index in mem_lanes:
                lane, started = mem_lanes.pop(index)
                metrics.ag_busy_cycles[lane] = (
                    metrics.ag_busy_cycles.get(lane, 0.0)
                    + (t - started))
                free_ags.append(lane)
                free_ags.sort()
                self.ags[lane].trace_stream(
                    instr.tag or instr.op.value, started, t,
                    index=index, words=instr.pattern.words,
                    kind=instr.pattern.kind)
            if instr.op.is_kernel and state.invocation is not None:
                timing = state.invocation.timing
                record = state.invocation.record
                metrics.add_cycles(CycleCategory.OPERATIONS,
                                   timing.operations)
                metrics.add_cycles(
                    CycleCategory.KERNEL_MAIN_LOOP_OVERHEAD,
                    timing.main_loop_overhead)
                metrics.add_cycles(CycleCategory.KERNEL_NON_MAIN_LOOP,
                                   timing.non_main_loop)
                metrics.add_cycles(CycleCategory.CLUSTER_STALL,
                                   record.stall_cycles)
                metrics.record_invocation(record)

        def idle_cause(t: float) -> CycleCategory:
            # Attribution priority per Section 4.2; next_kernel_pos is
            # advanced past completed kernels by the event loop.
            if next_kernel_pos >= len(kernel_indices):
                if server.active() or any(
                        s.instruction.op.is_memory
                        and s.status in ("pending", "resident")
                        for s in states):
                    return CycleCategory.MEMORY_STALL
                if not host.done:
                    return CycleCategory.HOST_BANDWIDTH_STALL
                return CycleCategory.STREAM_CONTROLLER_OVERHEAD
            index = kernel_indices[next_kernel_pos]
            state = states[index]
            instr = state.instruction
            if state.status == "running":
                return CycleCategory.STREAM_CONTROLLER_OVERHEAD
            # A dependency only counts as a memory / microcode stall
            # if the host has actually issued it; waiting on an
            # instruction the host has not yet delivered is a host
            # bandwidth (or host dependency) stall.
            for dep in instr.deps:
                dep_state = states[dep]
                if (dep_state.status in ("resident", "running")
                        and dep_state.instruction.op
                        is StreamOpType.MICROCODE_LOAD):
                    return CycleCategory.MICROCODE_LOAD_STALL
            for dep in instr.deps:
                dep_state = states[dep]
                if (dep_state.status in ("resident", "running")
                        and dep_state.instruction.op.is_memory):
                    return CycleCategory.MEMORY_STALL
            if state.status == "resident" and scoreboard.deps_met(instr):
                return CycleCategory.STREAM_CONTROLLER_OVERHEAD
            if state.status == "resident":
                unissued = any(states[d].status == "pending"
                               for d in instr.deps)
                if unissued:
                    return CycleCategory.HOST_BANDWIDTH_STALL
                return CycleCategory.STREAM_CONTROLLER_OVERHEAD
            return CycleCategory.HOST_BANDWIDTH_STALL

        # --------------------------------------------------------------
        # Event loop.  The progress watchdog replaces the old blind
        # event budget: iterations that neither advance the clock nor
        # transition an instruction are counted, and a long run of
        # them raises a SimulationError with full diagnostics.
        # --------------------------------------------------------------
        while True:
            watchdog.observe(transitions)
            if self.injector is not None:
                scoreboard.slots_lost = self.injector.slots_lost(now)
            if checker is not None:
                checker.clock(now)
                checker.scoreboard(scoreboard.occupancy,
                                   scoreboard.slots)
                checker.ag_lanes(len(free_ags), len(mem_lanes))
            # Zero-time actions at `now`.
            progressed = True
            while progressed:
                progressed = False
                while host.can_issue(now) and scoreboard.has_free_slot():
                    issued = host.issue(now)
                    if issued is None:
                        # Transfer dropped by an injected fault; the
                        # host backs off and retries later.  The next
                        # host_issue edge absorbs the back-off window.
                        if last_issue_node is not None:
                            last_issue_gap = (host.ready_at
                                              - last_issue_time)
                        break
                    index, instr = issued
                    node = graph.add_node(
                        "issue", index, now,
                        instr.tag or instr.op.value)
                    issue_nodes[index] = node
                    if last_issue_node is None:
                        graph.add_edge(0, node, EDGE_PROGRAM_START,
                                       0.0)
                    else:
                        graph.add_edge(last_issue_node, node,
                                       EDGE_HOST_ISSUE,
                                       last_issue_gap)
                    if pending_unblock is not None:
                        graph.add_edge(pending_unblock, node,
                                       EDGE_HOST_DEPENDENCY,
                                       interface.round_trip_cycles)
                        pending_unblock = None
                    if slot_waiting and last_complete_node is not None:
                        graph.add_edge(last_complete_node, node,
                                       EDGE_SCOREBOARD_SLOT, 0.0)
                    slot_waiting = False
                    last_issue_node = node
                    last_issue_time = now
                    last_issue_gap = host.ready_at - now
                    if tracer.enabled:
                        tracer.instant(
                            TRACK_HOST,
                            f"issue {instr.tag or instr.op.value}",
                            ts=now, index=index)
                    scoreboard.insert(index, instr)
                    states[index].status = "resident"
                    states[index].resident_time = now
                    metrics.host_instructions += 1
                    metrics.host_busy_cycles += interface.issue_cycles
                    transitions += 1
                    progressed = True
                if controller_busy_until <= now + _EPS:
                    for index, instr in scoreboard.resident_instructions():
                        state = states[index]
                        if state.status != "resident":
                            continue
                        if not scoreboard.deps_met(instr):
                            continue
                        if not resource_free(instr, now):
                            continue
                        controller_busy_until = now + issue_overhead
                        if tracer.enabled:
                            tracer.span(
                                TRACK_CONTROLLER,
                                f"issue {instr.tag or instr.op.value}",
                                now, controller_busy_until, index=index)
                        begin(index, now + issue_overhead)
                        progressed = True
                        break

            # Host ready but every scoreboard slot taken: the next
            # issue is gated by the completion that frees a slot.
            ready_at = host.next_event_time()
            if (ready_at is not None and ready_at <= now + _EPS
                    and not scoreboard.has_free_slot()):
                slot_waiting = True

            while (next_kernel_pos < len(kernel_indices)
                   and states[kernel_indices[next_kernel_pos]].status
                   == "done"):
                next_kernel_pos += 1

            all_done = (host.done and all(s.status == "done"
                                          for s in states))
            if all_done:
                break

            # Next event time.
            candidates: list[float] = []
            host_time = host.next_event_time()
            if host_time is not None and scoreboard.has_free_slot():
                candidates.append(max(host_time, now))
            if controller_busy_until > now + _EPS:
                candidates.append(controller_busy_until)
            if completions:
                candidates.append(completions[0][0])
            mem_delta = server.next_completion_delta()
            if mem_delta is not None:
                candidates.append(now + mem_delta)
            if self.injector is not None and not host.done:
                # A slot-loss window ending can unblock the host.
                change = self.injector.next_slot_change(now)
                if change is not None and change > now + _EPS:
                    candidates.append(change)
            if not candidates:
                watchdog.fail("deadlock")
            target = min(candidates)
            target = max(target, now)

            # Attribute idle-cluster time over [now, target].
            idle_start = max(now, cluster_busy_until)
            if target > idle_start + _EPS:
                cause = idle_cause(idle_start)
                metrics.add_cycles(cause, target - idle_start)
                idle_history.append((idle_start, cause.value,
                                     target - idle_start))
                if tracer.enabled:
                    from repro.obs.profile import CATEGORY_LEAF

                    tracer.span(TRACK_ACCOUNTING, cause.value,
                                idle_start, target,
                                leaf=CATEGORY_LEAF[cause])
                    tracer.counter(
                        TRACK_ACCOUNTING, "cycles by category",
                        {cat.value: metrics.cycles.get(cat, 0.0)
                         for cat in CycleCategory},
                        ts=target)
                if next_kernel_pos < len(kernel_indices):
                    blocker = states[kernel_indices[next_kernel_pos]]
                    tag = (f"{cause.value}<-"
                           f"{blocker.instruction.tag or blocker.instruction.op.value}")
                    metrics.idle_blame[tag] = (
                        metrics.idle_blame.get(tag, 0.0)
                        + (target - idle_start))

            # Advance shared memory streams and collect completions.
            for ident in server.advance(target - now):
                complete(ident, target)
            while completions and completions[0][0] <= target + _EPS:
                _, _, index = heapq.heappop(completions)
                complete(index, target)
            now = target
            if tracer.enabled:
                tracer.clock = now

        end_node = graph.add_node("end", -1, now, "end")
        for complete_node in complete_nodes:
            if complete_node is not None:
                graph.add_edge(complete_node, end_node, EDGE_RETIRE,
                               0.0)
        graph.meta["total_cycles"] = now

        metrics.total_cycles = now
        metrics.check_conservation(tolerance=1e-3)
        power = self.energy.report(metrics, dsq_ops=metrics.dsq_ops)
        trace = [
            TraceEvent(
                index=i,
                op=state.instruction.op.value,
                tag=state.instruction.tag,
                kernel=state.instruction.kernel,
                resident_at=state.resident_time,
                started_at=state.start_time,
                finished_at=state.finish_time,
            )
            for i, state in enumerate(states)
        ]
        manifest = build_manifest(
            name, machine, self.board,
            wall_time_s=time.perf_counter() - wall_start)
        return RunResult(
            name=name,
            metrics=metrics,
            power=power,
            instruction_histogram=histogram(instructions),
            board=self.board,
            trace=trace,
            manifest=manifest,
            fault_events=(list(self.injector.events)
                          if self.injector is not None else []),
            host_retries=host.retries,
            event_graph=graph,
        )

    def _lookup_kernel(self, instr: StreamInstruction) -> CompiledKernel:
        if instr.kernel not in self.kernels:
            raise SimulationError(
                f"kernel {instr.kernel!r} not registered with the "
                f"processor")
        return self.kernels[instr.kernel]


def _restart_adjusted(result: InvocationResult) -> InvocationResult:
    """A RESTART continues a running kernel: no prologue/epilogue."""
    from dataclasses import replace

    from repro.isa.vliw import KernelTiming

    timing = KernelTiming(
        iterations=result.timing.iterations,
        operations=result.timing.operations,
        main_loop_overhead=result.timing.main_loop_overhead,
        non_main_loop=_RESTART_OVERHEAD_CYCLES,
    )
    record = replace(
        result.record,
        busy_cycles=timing.busy_cycles,
        stall_cycles=0,
    )
    return InvocationResult(record=record, timing=timing)
