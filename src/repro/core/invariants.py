"""Strict-mode runtime invariants for the event-driven simulator.

Fault injection deliberately pushes the model into corners the happy
path never visits, so under ``strict=True`` the processor checks a
small set of structural invariants at every event and raises
:class:`~repro.core.errors.InvariantViolation` (a typed
:class:`SimulationError`) the moment one breaks -- complementing the
end-of-run cycle-conservation check in
:meth:`repro.core.metrics.Metrics.check_conservation`:

* the simulation clock is monotone;
* scoreboard occupancy never exceeds the slot count;
* AG lanes are conserved (free + in-use == configured AGs);
* no instruction finishes before it starts, starts before it becomes
  resident, or is marked done without a finish time.
"""

from __future__ import annotations

from repro.core.errors import InvariantViolation

_EPS = 1e-6


class InvariantChecker:
    """Per-run invariant state; cheap enough to call at every event."""

    def __init__(self, program: str, num_ags: int) -> None:
        self.program = program
        self.num_ags = num_ags
        self._last_clock = 0.0

    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"{self.program}: invariant violated: {message}")

    def clock(self, now: float) -> None:
        if now + _EPS < self._last_clock:
            self._fail(f"clock moved backwards: {self._last_clock} "
                       f"-> {now}")
        self._last_clock = max(self._last_clock, now)

    def scoreboard(self, occupancy: int, slots: int) -> None:
        if occupancy > slots:
            self._fail(f"scoreboard occupancy {occupancy} exceeds "
                       f"{slots} slots")
        if occupancy < 0:
            self._fail(f"negative scoreboard occupancy {occupancy}")

    def ag_lanes(self, free: int, in_use: int) -> None:
        if free + in_use != self.num_ags:
            self._fail(f"AG lane leak: {free} free + {in_use} in use "
                       f"!= {self.num_ags} configured")

    def lifetime(self, index: int, resident: float, start: float,
                 finish: float) -> None:
        if finish + _EPS < start:
            self._fail(f"instruction #{index} finished at {finish} "
                       f"before starting at {start}")
        if start + _EPS < resident:
            self._fail(f"instruction #{index} started at {start} "
                       f"before becoming resident at {resident}")
